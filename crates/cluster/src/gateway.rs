//! The federation gateway (§VIII).
//!
//! "Using HTTP Redirect, we developed a presto gateway. The gateway will
//! redirect incoming queries to specific presto clusters, based on user name
//! and group information. The user and group to cluster mapping data is
//! stored in MySQL. Presto administrators could play with MySQL to
//! dynamically redirect any traffic to any cluster."
//!
//! Per the §XII.B lesson ("A general gateway is hard" — a proxying gateway
//! became the bottleneck), this gateway only issues *redirects*: clients
//! then talk to the cluster directly. [`PrestoGateway::submit`] models a
//! client that follows the redirect.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use presto_common::metrics::CounterSet;
use presto_common::{PrestoError, Result, Schema, Value};
use presto_connectors::mysql::MySqlConnector;
use presto_core::{QueryResult, Session};

use crate::cluster::PrestoCluster;

/// Schema/table where routes live in MySQL.
const ROUTING_SCHEMA: &str = "presto";
const ROUTING_TABLE: &str = "routing";
/// Route used when a group has no explicit mapping ("A few big clusters are
/// shared by all teams").
pub const DEFAULT_GROUP: &str = "*";

/// An HTTP-redirect-style response: which cluster the client should use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redirect {
    /// Target cluster name (the Location header, morally).
    pub cluster: String,
}

/// The federation gateway.
pub struct PrestoGateway {
    routing: MySqlConnector,
    clusters: RwLock<BTreeMap<String, Arc<PrestoCluster>>>,
    metrics: CounterSet,
}

impl PrestoGateway {
    /// Gateway with a fresh routing table in the given MySQL instance.
    pub fn new(routing: MySqlConnector) -> Result<PrestoGateway> {
        routing.create_table(
            ROUTING_SCHEMA,
            ROUTING_TABLE,
            Schema::new(vec![
                presto_common::Field::new("user_group", presto_common::DataType::Varchar),
                presto_common::Field::new("cluster", presto_common::DataType::Varchar),
            ])?,
        )?;
        Ok(PrestoGateway {
            routing,
            clusters: RwLock::new(BTreeMap::new()),
            metrics: CounterSet::new(),
        })
    }

    /// The counters (`gateway.redirects`, `gateway.rerouted_maintenance`).
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Register a cluster with the gateway.
    pub fn add_cluster(&self, cluster: Arc<PrestoCluster>) {
        self.clusters.write().insert(cluster.name().to_string(), cluster);
    }

    /// Administrator: set (or replace) a group's route — an UPDATE/INSERT
    /// against MySQL, effective for the very next query.
    pub fn set_route(&self, group: &str, cluster: &str) -> Result<()> {
        let changed = self.routing.update_where(
            ROUTING_SCHEMA,
            ROUTING_TABLE,
            "cluster",
            Value::Varchar(cluster.into()),
            "user_group",
            &Value::Varchar(group.into()),
        )?;
        if changed == 0 {
            self.routing.insert(
                ROUTING_SCHEMA,
                ROUTING_TABLE,
                vec![vec![Value::Varchar(group.into()), Value::Varchar(cluster.into())]],
            )?;
        }
        Ok(())
    }

    /// Resolve a redirect for a user group. Routes pointing at clusters in
    /// maintenance fall back to the default (`*`) route, which is what makes
    /// "redirect traffic ... to guarantee no downtime" work (§VIII).
    pub fn route(&self, group: &str) -> Result<Redirect> {
        self.metrics.incr("gateway.redirects");
        let lookup = |g: &str| -> Result<Option<String>> {
            Ok(self
                .routing
                .lookup(ROUTING_SCHEMA, ROUTING_TABLE, "user_group", &Value::Varchar(g.into()))?
                .map(|row| row[1].as_str().unwrap_or_default().to_string()))
        };
        let primary = match lookup(group)? {
            Some(c) => c,
            None => lookup(DEFAULT_GROUP)?.ok_or_else(|| {
                PrestoError::Execution(format!("no route for group '{group}' and no default route"))
            })?,
        };
        let clusters = self.clusters.read();
        let healthy = |name: &str| clusters.get(name).map(|c| !c.in_maintenance()).unwrap_or(false);
        if healthy(&primary) {
            return Ok(Redirect { cluster: primary });
        }
        // primary down/draining: re-route to the shared default
        self.metrics.incr("gateway.rerouted_maintenance");
        let fallback = lookup(DEFAULT_GROUP)?.ok_or_else(|| {
            PrestoError::Execution(format!("cluster '{primary}' unavailable and no default route"))
        })?;
        if fallback != primary && healthy(&fallback) {
            return Ok(Redirect { cluster: fallback });
        }
        Err(PrestoError::Execution(format!("no healthy cluster for group '{group}'")))
    }

    /// Client helper: resolve the redirect, then run the query *directly on
    /// the cluster* (the gateway never proxies data, §XII.B).
    pub fn submit(&self, group: &str, sql: &str, session: &Session) -> Result<QueryResult> {
        let redirect = self.route(group)?;
        let cluster = self.clusters.read().get(&redirect.cluster).cloned().ok_or_else(|| {
            PrestoError::Execution(format!("unknown cluster '{}'", redirect.cluster))
        })?;
        cluster.execute(sql, session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use presto_common::SimClock;
    use presto_core::PrestoEngine;
    use std::time::Duration;

    fn gateway_with_clusters() -> (PrestoGateway, Arc<PrestoCluster>, Arc<PrestoCluster>) {
        let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
        let mk = |name: &str| {
            PrestoCluster::new(
                name,
                PrestoEngine::new(),
                ClusterConfig {
                    initial_workers: 2,
                    grace_period: Duration::from_secs(1),
                    ..ClusterConfig::default()
                },
                SimClock::new(),
            )
        };
        let dedicated = mk("dedicated-1");
        let shared = mk("shared");
        gateway.add_cluster(dedicated.clone());
        gateway.add_cluster(shared.clone());
        gateway.set_route(DEFAULT_GROUP, "shared").unwrap();
        gateway.set_route("ads", "dedicated-1").unwrap();
        (gateway, dedicated, shared)
    }

    #[test]
    fn routes_by_group_with_default_fallback() {
        let (gateway, _, _) = gateway_with_clusters();
        assert_eq!(gateway.route("ads").unwrap().cluster, "dedicated-1");
        assert_eq!(gateway.route("unknown-team").unwrap().cluster, "shared");
    }

    #[test]
    fn dynamic_rerouting_is_immediate() {
        let (gateway, _, _) = gateway_with_clusters();
        gateway.set_route("ads", "shared").unwrap();
        assert_eq!(gateway.route("ads").unwrap().cluster, "shared");
        gateway.set_route("ads", "dedicated-1").unwrap();
        assert_eq!(gateway.route("ads").unwrap().cluster, "dedicated-1");
    }

    #[test]
    fn maintenance_reroutes_with_zero_downtime() {
        let (gateway, dedicated, shared) = gateway_with_clusters();
        // queries flow to the dedicated cluster
        gateway.submit("ads", "SELECT 1", &Session::default()).unwrap();
        assert_eq!(dedicated.queries_started(), 1);

        // drain the dedicated cluster for an upgrade
        dedicated.set_maintenance(true);
        for _ in 0..3 {
            gateway.submit("ads", "SELECT 1", &Session::default()).unwrap();
        }
        assert_eq!(shared.queries_started(), 3, "traffic moved to the shared cluster");
        assert_eq!(gateway.metrics().get("gateway.rerouted_maintenance"), 3);

        // upgrade done
        dedicated.set_maintenance(false);
        gateway.submit("ads", "SELECT 1", &Session::default()).unwrap();
        assert_eq!(dedicated.queries_started(), 2);
    }

    #[test]
    fn no_route_errors() {
        let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
        assert!(gateway.route("anyone").is_err());
    }
}
