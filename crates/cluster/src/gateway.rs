//! The federation gateway (§VIII).
//!
//! "Using HTTP Redirect, we developed a presto gateway. The gateway will
//! redirect incoming queries to specific presto clusters, based on user name
//! and group information. The user and group to cluster mapping data is
//! stored in MySQL. Presto administrators could play with MySQL to
//! dynamically redirect any traffic to any cluster."
//!
//! Per the §XII.B lesson ("A general gateway is hard" — a proxying gateway
//! became the bottleneck), this gateway only issues *redirects*: clients
//! then talk to the cluster directly. [`PrestoGateway::submit`] models a
//! client that follows the redirect.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use presto_common::metrics::{names, CounterSet, HistogramSet};
use presto_common::{PrestoError, Result, Schema, Value};
use presto_connectors::mysql::MySqlConnector;
use presto_core::{QueryResult, Session};

use crate::cluster::PrestoCluster;

/// Schema/table where routes live in MySQL.
const ROUTING_SCHEMA: &str = "presto";
const ROUTING_TABLE: &str = "routing";
/// Route used when a group has no explicit mapping ("A few big clusters are
/// shared by all teams").
pub const DEFAULT_GROUP: &str = "*";

/// An HTTP-redirect-style response: which cluster the client should use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redirect {
    /// Target cluster name (the Location header, morally).
    pub cluster: String,
}

/// The federation gateway.
pub struct PrestoGateway {
    routing: MySqlConnector,
    clusters: RwLock<BTreeMap<String, Arc<PrestoCluster>>>,
    metrics: CounterSet,
    /// End-to-end submit latency as the client saw it
    /// (`gateway.query_latency_us`), failovers included.
    histograms: HistogramSet,
}

impl PrestoGateway {
    /// Gateway with a fresh routing table in the given MySQL instance.
    pub fn new(routing: MySqlConnector) -> Result<PrestoGateway> {
        routing.create_table(
            ROUTING_SCHEMA,
            ROUTING_TABLE,
            Schema::new(vec![
                presto_common::Field::new("user_group", presto_common::DataType::Varchar),
                presto_common::Field::new("cluster", presto_common::DataType::Varchar),
            ])?,
        )?;
        Ok(PrestoGateway {
            routing,
            clusters: RwLock::new(BTreeMap::new()),
            metrics: CounterSet::new(),
            histograms: HistogramSet::new(),
        })
    }

    /// The counters (`gateway.redirects`, `gateway.rerouted_maintenance`,
    /// `gateway.retried_queries`).
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Latency distributions recorded by this gateway.
    pub fn histograms(&self) -> &HistogramSet {
        &self.histograms
    }

    /// Register a cluster with the gateway.
    pub fn add_cluster(&self, cluster: Arc<PrestoCluster>) {
        self.clusters.write().insert(cluster.name().to_string(), cluster);
    }

    /// Administrator: set (or replace) a group's route — an UPDATE/INSERT
    /// against MySQL, effective for the very next query.
    pub fn set_route(&self, group: &str, cluster: &str) -> Result<()> {
        let changed = self.routing.update_where(
            ROUTING_SCHEMA,
            ROUTING_TABLE,
            "cluster",
            Value::Varchar(cluster.into()),
            "user_group",
            &Value::Varchar(group.into()),
        )?;
        if changed == 0 {
            self.routing.insert(
                ROUTING_SCHEMA,
                ROUTING_TABLE,
                vec![vec![Value::Varchar(group.into()), Value::Varchar(cluster.into())]],
            )?;
        }
        Ok(())
    }

    /// Resolve a redirect for a user group. Routes pointing at clusters in
    /// maintenance fall back to the default (`*`) route, which is what makes
    /// "redirect traffic ... to guarantee no downtime" work (§VIII).
    pub fn route(&self, group: &str) -> Result<Redirect> {
        self.metrics.incr(names::GATEWAY_REDIRECTS);
        let primary = match self.lookup_route(group)? {
            Some(c) => c,
            None => self.lookup_route(DEFAULT_GROUP)?.ok_or_else(|| {
                PrestoError::Execution(format!("no route for group '{group}' and no default route"))
            })?,
        };
        let clusters = self.clusters.read();
        let healthy = |name: &str| clusters.get(name).map(|c| !c.in_maintenance()).unwrap_or(false);
        if healthy(&primary) {
            return Ok(Redirect { cluster: primary });
        }
        // primary down/draining (or the route names a cluster that was
        // never registered): re-route to the shared default
        self.metrics.incr(names::GATEWAY_REROUTED_MAINTENANCE);
        let fallback = self.lookup_route(DEFAULT_GROUP)?.ok_or_else(|| {
            PrestoError::Execution(format!("cluster '{primary}' unavailable and no default route"))
        })?;
        if fallback != primary && healthy(&fallback) {
            return Ok(Redirect { cluster: fallback });
        }
        Err(PrestoError::Execution(format!("no healthy cluster for group '{group}'")))
    }

    /// Resolve a redirect for a user group, steering around *load* as well
    /// as maintenance: when the group's mapped cluster cannot start the
    /// query immediately (all run slots busy, or a queue already formed at
    /// its admission controller), the gateway redirects to the registered
    /// healthy cluster with the shallowest admission queue that *can*.
    ///
    /// The depth check costs one lock per cluster and no proxying, so the
    /// §XII.B lesson holds: the gateway still only issues redirects. Every
    /// redirect that steered away from the mapped cluster is counted as
    /// `gateway.load_balanced_routes`.
    ///
    /// When no cluster can start the query immediately, the gateway still
    /// refuses to dead-end a query: a mapped cluster whose admission lane is
    /// **saturated** (the next query would be refused outright) is skipped
    /// in favor of a healthy sibling with queue room, counted as
    /// `gateway.skipped_saturated`.
    pub fn route_balanced(&self, group: &str) -> Result<Redirect> {
        let primary = self.route(group)?;
        let clusters = self.clusters.read();
        let load_of = |c: &Arc<PrestoCluster>| {
            let (running, queued) = c.engine().resources().admission().load();
            // a backlog is worse than busy slots: it means queries are
            // already waiting at that coordinator
            (queued, running)
        };
        if let Some(c) = clusters.get(&primary.cluster) {
            if c.engine().resources().admission().has_free_slot() {
                return Ok(primary);
            }
        }
        // mapped cluster is saturated: shallowest-queue healthy cluster
        // with an immediately free slot, ties broken by name order
        let healthy =
            |c: &Arc<PrestoCluster>| !c.in_maintenance() && !c.active_workers().is_empty();
        let target = clusters
            .iter()
            .filter(|(name, c)| {
                name.as_str() != primary.cluster
                    && healthy(c)
                    && c.engine().resources().admission().has_free_slot()
            })
            .min_by_key(|(name, c)| (load_of(c), name.as_str().to_string()));
        if let Some((name, _)) = target {
            self.metrics.incr(names::GATEWAY_LOAD_BALANCED_ROUTES);
            return Ok(Redirect { cluster: name.clone() });
        }
        // No one has a free slot. Queueing at the mapped cluster is fine —
        // unless its admission lane is *saturated* (the very next query is
        // refused outright). Then any healthy sibling with queue room left
        // beats a guaranteed refusal, even if the query must wait there.
        let primary_saturated = clusters
            .get(&primary.cluster)
            .map(|c| c.engine().resources().admission().is_saturated())
            .unwrap_or(false);
        if primary_saturated {
            let unsaturated = clusters
                .iter()
                .filter(|(name, c)| {
                    name.as_str() != primary.cluster
                        && healthy(c)
                        && !c.engine().resources().admission().is_saturated()
                })
                .min_by_key(|(name, c)| (load_of(c), name.as_str().to_string()));
            if let Some((name, _)) = unsaturated {
                self.metrics.incr(names::GATEWAY_SKIPPED_SATURATED);
                return Ok(Redirect { cluster: name.clone() });
            }
        }
        // everyone is saturated: the mapped cluster's queue is as good
        // a place to wait (or be refused) as any
        Ok(primary)
    }

    /// One routing-table lookup: the cluster mapped to `group`, if any.
    fn lookup_route(&self, group: &str) -> Result<Option<String>> {
        Ok(self
            .routing
            .lookup(ROUTING_SCHEMA, ROUTING_TABLE, "user_group", &Value::Varchar(group.into()))?
            .map(|row| row[1].as_str().unwrap_or_default().to_string()))
    }

    /// Client helper: resolve the redirect, then run the query *directly on
    /// the cluster* (the gateway never proxies data, §XII.B).
    ///
    /// §XII fault tolerance: when the cluster fails the query with a
    /// *retryable* infrastructure error — it lost its last workers mid-query,
    /// a split ran out of attempts, a maintenance drain raced the redirect —
    /// the gateway fails over **once** to a healthy sibling cluster and
    /// counts `gateway.retried_queries`. Non-retryable errors (bad SQL,
    /// resource policy) propagate unchanged: they would fail anywhere.
    pub fn submit(&self, group: &str, sql: &str, session: &Session) -> Result<QueryResult> {
        let redirect = self.route(group)?;
        let cluster = self.cluster_named(&redirect.cluster)?;
        let result = match cluster.execute(sql, session) {
            Err(e) if e.is_retryable() => {
                let Some(fallback) = self.failover_target(&redirect.cluster) else {
                    return Err(e);
                };
                self.metrics.incr(names::GATEWAY_RETRIED_QUERIES);
                fallback.execute(sql, session)
            }
            other => other,
        };
        if let Ok(ok) = &result {
            // failover is part of what the client waited through, so the
            // winning attempt's latency stands in for the whole submit
            self.histograms
                .record(names::HIST_GATEWAY_QUERY_LATENCY_US, ok.info.latency.as_micros() as u64);
        }
        result
    }

    /// [`PrestoGateway::submit`] over [`PrestoGateway::route_balanced`]:
    /// the client follows a depth-aware redirect instead of the static
    /// mapping. An admission refusal (`INSUFFICIENT_RESOURCES`) is *not*
    /// retryable — no failover saves a query the naive route drove into a
    /// full queue — which is exactly why the depth check happens up front.
    pub fn submit_balanced(
        &self,
        group: &str,
        sql: &str,
        session: &Session,
    ) -> Result<QueryResult> {
        let redirect = self.route_balanced(group)?;
        let cluster = self.cluster_named(&redirect.cluster)?;
        let result = match cluster.execute(sql, session) {
            Err(e) if e.is_retryable() => {
                let Some(fallback) = self.failover_target(&redirect.cluster) else {
                    return Err(e);
                };
                self.metrics.incr(names::GATEWAY_RETRIED_QUERIES);
                fallback.execute(sql, session)
            }
            other => other,
        };
        if let Ok(ok) = &result {
            self.histograms
                .record(names::HIST_GATEWAY_QUERY_LATENCY_US, ok.info.latency.as_micros() as u64);
        }
        result
    }

    fn cluster_named(&self, name: &str) -> Result<Arc<PrestoCluster>> {
        self.clusters
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PrestoError::Execution(format!("unknown cluster '{name}'")))
    }

    /// Pick the failover cluster after `failed` lost a query: the default
    /// route's cluster when it is healthy and is not the one that just
    /// failed, otherwise the first healthy other cluster in name order.
    /// Health here is stronger than routing health: a failover target must
    /// have active workers, not merely be out of maintenance.
    fn failover_target(&self, failed: &str) -> Option<Arc<PrestoCluster>> {
        let healthy =
            |c: &Arc<PrestoCluster>| !c.in_maintenance() && !c.active_workers().is_empty();
        let clusters = self.clusters.read();
        if let Ok(Some(default)) = self.lookup_route(DEFAULT_GROUP) {
            if default != failed {
                if let Some(c) = clusters.get(&default).filter(|c| healthy(c)) {
                    return Some(c.clone());
                }
            }
        }
        clusters
            .iter()
            .find(|(name, c)| name.as_str() != failed && healthy(c))
            .map(|(_, c)| c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use presto_common::SimClock;
    use presto_core::PrestoEngine;
    use std::time::Duration;

    fn gateway_with_clusters() -> (PrestoGateway, Arc<PrestoCluster>, Arc<PrestoCluster>) {
        let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
        let mk = |name: &str| {
            let engine = PrestoEngine::new();
            engine
                .register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
            PrestoCluster::new(
                name,
                engine,
                ClusterConfig {
                    initial_workers: 2,
                    grace_period: Duration::from_secs(1),
                    ..ClusterConfig::default()
                },
                SimClock::new(),
            )
        };
        let dedicated = mk("dedicated-1");
        let shared = mk("shared");
        gateway.add_cluster(dedicated.clone());
        gateway.add_cluster(shared.clone());
        gateway.set_route(DEFAULT_GROUP, "shared").unwrap();
        gateway.set_route("ads", "dedicated-1").unwrap();
        (gateway, dedicated, shared)
    }

    #[test]
    fn routes_by_group_with_default_fallback() {
        let (gateway, _, _) = gateway_with_clusters();
        assert_eq!(gateway.route("ads").unwrap().cluster, "dedicated-1");
        assert_eq!(gateway.route("unknown-team").unwrap().cluster, "shared");
    }

    #[test]
    fn dynamic_rerouting_is_immediate() {
        let (gateway, _, _) = gateway_with_clusters();
        gateway.set_route("ads", "shared").unwrap();
        assert_eq!(gateway.route("ads").unwrap().cluster, "shared");
        gateway.set_route("ads", "dedicated-1").unwrap();
        assert_eq!(gateway.route("ads").unwrap().cluster, "dedicated-1");
    }

    #[test]
    fn maintenance_reroutes_with_zero_downtime() {
        let (gateway, dedicated, shared) = gateway_with_clusters();
        // queries flow to the dedicated cluster
        gateway.submit("ads", "SELECT 1", &Session::default()).unwrap();
        assert_eq!(dedicated.queries_started(), 1);

        // drain the dedicated cluster for an upgrade
        dedicated.set_maintenance(true);
        for _ in 0..3 {
            gateway.submit("ads", "SELECT 1", &Session::default()).unwrap();
        }
        assert_eq!(shared.queries_started(), 3, "traffic moved to the shared cluster");
        assert_eq!(gateway.metrics().get("gateway.rerouted_maintenance"), 3);

        // upgrade done
        dedicated.set_maintenance(false);
        gateway.submit("ads", "SELECT 1", &Session::default()).unwrap();
        assert_eq!(dedicated.queries_started(), 2);
    }

    #[test]
    fn no_route_errors() {
        let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
        assert!(gateway.route("anyone").is_err());
    }

    #[test]
    fn route_to_unregistered_cluster_falls_back_to_default() {
        let (gateway, _, _) = gateway_with_clusters();
        // the routing table can point at a cluster the gateway never saw
        // (decommissioned, typo'd by the administrator in MySQL)
        gateway.set_route("x-team", "ghost").unwrap();
        assert_eq!(gateway.route("x-team").unwrap().cluster, "shared");
        assert_eq!(gateway.metrics().get("gateway.rerouted_maintenance"), 1);
    }

    #[test]
    fn all_clusters_draining_is_a_routing_error() {
        let (gateway, dedicated, shared) = gateway_with_clusters();
        dedicated.set_maintenance(true);
        shared.set_maintenance(true);
        let err = gateway.route("ads").unwrap_err();
        assert!(err.message().contains("no healthy cluster"), "{err}");
        assert_eq!(gateway.metrics().get("gateway.rerouted_maintenance"), 1);
        // the default group is just as stuck, and each attempt is counted
        assert!(gateway.route("unknown-team").is_err());
        assert_eq!(gateway.metrics().get("gateway.rerouted_maintenance"), 2);
    }

    #[test]
    fn gateway_fails_over_when_the_cluster_dies_mid_query() {
        let (gateway, dedicated, shared) = gateway_with_clusters();
        // every worker on the dedicated cluster dies abruptly; routing
        // cannot see that (health there is maintenance-only), so the query
        // lands on the dead cluster, fails retryably, and fails over.
        for w in dedicated.workers() {
            w.crash();
        }
        let session = Session::new("tpch", "tiny");
        let result = gateway.submit("ads", "SELECT count(*) FROM lineitem", &session).unwrap();
        assert!(!result.rows().is_empty());
        assert_eq!(gateway.metrics().get("gateway.retried_queries"), 1);
        assert_eq!(shared.queries_started(), 1, "the fallback ran the query");
        assert_eq!(dedicated.metrics().get("cluster.queries_failed"), 1);
        // the routing layer was never involved in the failover
        assert_eq!(gateway.metrics().get("gateway.rerouted_maintenance"), 0);
    }

    #[test]
    fn submit_records_end_to_end_latency() {
        let (gateway, _, _) = gateway_with_clusters();
        let session = Session::new("tpch", "tiny");
        gateway.submit("ads", "SELECT count(*) FROM lineitem", &session).unwrap();
        gateway.submit("ads", "SELECT count(*) FROM lineitem", &session).unwrap();
        let h = gateway.histograms().get(names::HIST_GATEWAY_QUERY_LATENCY_US);
        assert_eq!(h.count(), 2);
        assert!(h.max() > 0);
    }

    #[test]
    fn depth_aware_routing_steers_around_a_saturated_cluster() {
        use presto_resource::{AdmissionConfig, QueryPriority};
        let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
        let mk = |name: &str| {
            let engine = PrestoEngine::new();
            engine
                .register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
            PrestoCluster::new(
                name,
                engine,
                ClusterConfig {
                    initial_workers: 2,
                    admission: AdmissionConfig {
                        max_concurrent: Some(1),
                        max_queued: 0,
                        ..AdmissionConfig::default()
                    },
                    ..ClusterConfig::default()
                },
                SimClock::new(),
            )
        };
        let hot = mk("hot");
        let spare = mk("spare");
        gateway.add_cluster(hot.clone());
        gateway.add_cluster(spare.clone());
        gateway.set_route(DEFAULT_GROUP, "hot").unwrap();

        // an analyst's long-running query holds hot's only run slot
        let metrics = CounterSet::new();
        let slot =
            hot.engine().resources().admission().admit("analyst", QueryPriority::Normal, &metrics);
        assert!(slot.is_ok());

        // naive routing drives the next query into the full admission
        // queue: a hard, non-retryable refusal failover cannot save
        let session = Session::new("tpch", "tiny");
        let err = gateway.submit("etl", "SELECT count(*) FROM lineitem", &session).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
        assert!(!err.is_retryable(), "{err}");
        assert_eq!(hot.metrics().get("cluster.queries_rejected"), 1);
        assert_eq!(spare.queries_started(), 0);

        // the depth-aware route sees the saturation up front and redirects
        // to the idle sibling instead
        let result =
            gateway.submit_balanced("etl", "SELECT count(*) FROM lineitem", &session).unwrap();
        assert!(!result.rows().is_empty());
        assert_eq!(spare.queries_started(), 1, "the idle cluster ran the query");
        assert_eq!(gateway.metrics().get("gateway.load_balanced_routes"), 1);
        assert_eq!(hot.metrics().get("cluster.queries_rejected"), 1, "no further refusals");

        // slot freed: balanced routing goes straight back to the mapped
        // cluster, without counting a steer
        drop(slot);
        gateway.submit_balanced("etl", "SELECT count(*) FROM lineitem", &session).unwrap();
        assert_eq!(hot.queries_started(), 1);
        assert_eq!(gateway.metrics().get("gateway.load_balanced_routes"), 1);
    }

    #[test]
    fn balanced_routing_falls_back_to_the_mapped_cluster_when_everyone_is_full() {
        use presto_resource::{AdmissionConfig, QueryPriority};
        let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
        let mk = |name: &str| {
            let engine = PrestoEngine::new();
            let c = PrestoCluster::new(
                name,
                engine,
                ClusterConfig {
                    initial_workers: 1,
                    admission: AdmissionConfig {
                        max_concurrent: Some(1),
                        max_queued: 0,
                        ..AdmissionConfig::default()
                    },
                    ..ClusterConfig::default()
                },
                SimClock::new(),
            );
            gateway.add_cluster(c.clone());
            c
        };
        let a = mk("a");
        let b = mk("b");
        gateway.set_route(DEFAULT_GROUP, "a").unwrap();
        let metrics = CounterSet::new();
        let _sa = a.engine().resources().admission().admit("x", QueryPriority::Normal, &metrics);
        let _sb = b.engine().resources().admission().admit("y", QueryPriority::Normal, &metrics);
        // nowhere has a free slot: wait (or be refused) at the mapped
        // cluster rather than bouncing between equally full queues
        assert_eq!(gateway.route_balanced("etl").unwrap().cluster, "a");
        assert_eq!(gateway.metrics().get("gateway.load_balanced_routes"), 0);
    }

    #[test]
    fn saturated_cluster_is_skipped_for_a_sibling_with_queue_room() {
        use presto_resource::{AdmissionConfig, QueryPriority};
        let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
        let mk = |name: &str, max_queued: usize| {
            let engine = PrestoEngine::new();
            engine
                .register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
            let c = PrestoCluster::new(
                name,
                engine,
                ClusterConfig {
                    initial_workers: 1,
                    admission: AdmissionConfig {
                        max_concurrent: Some(1),
                        max_queued,
                        ..AdmissionConfig::default()
                    },
                    ..ClusterConfig::default()
                },
                SimClock::new(),
            );
            gateway.add_cluster(c.clone());
            c
        };
        // mapped cluster: slot held and zero queue room → saturated
        let full = mk("full", 0);
        // sibling: slot also held, but its queue can absorb the query
        let roomy = mk("roomy", 8);
        gateway.set_route(DEFAULT_GROUP, "full").unwrap();
        let metrics = CounterSet::new();
        let _sf = full.engine().resources().admission().admit("x", QueryPriority::Normal, &metrics);
        let _sr =
            roomy.engine().resources().admission().admit("y", QueryPriority::Normal, &metrics);

        // neither has a free slot, but only "full" would refuse outright
        let redirect = gateway.route_balanced("etl").unwrap();
        assert_eq!(redirect.cluster, "roomy");
        assert_eq!(gateway.metrics().get("gateway.skipped_saturated"), 1);
        assert_eq!(gateway.metrics().get("gateway.load_balanced_routes"), 0);

        // once the mapped cluster has queue room again it keeps its traffic
        drop(_sf);
        assert_eq!(gateway.route_balanced("etl").unwrap().cluster, "full");
        assert_eq!(gateway.metrics().get("gateway.skipped_saturated"), 1);
    }

    #[test]
    fn non_retryable_errors_do_not_fail_over() {
        let (gateway, _, shared) = gateway_with_clusters();
        let err = gateway.submit("ads", "SELECT count(* FROM", &Session::default()).unwrap_err();
        assert!(!err.is_retryable(), "{err}");
        assert_eq!(gateway.metrics().get("gateway.retried_queries"), 0);
        assert_eq!(shared.queries_started(), 0, "a doomed query is not re-run elsewhere");
    }
}
