//! One Presto cluster: a coordinator and N workers (§III), with graceful
//! expansion and shrink (§IX) and crash recovery (§XII).
//!
//! Distributed execution model: the coordinator plans and fragments the
//! query; each leaf (scan) fragment's connector splits are assigned
//! round-robin (or by §VII affinity) to ACTIVE workers and executed on real
//! threads; intermediate pages flow back as exchanges; the root fragment
//! runs on the coordinator.
//!
//! Fault tolerance: every task start consults the cluster's
//! [`FaultInjector`]; when a task fails with a *retryable* error (worker
//! crash, injected fault, transient-retry exhaustion in storage) the
//! coordinator reassigns only the unfinished splits to surviving workers —
//! re-running the affinity hash over the shrunken fleet — under a per-split
//! attempt cap and virtual-time exponential backoff. Flaky-but-alive
//! workers are quarantined by the consecutive-failure blacklist.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use std::collections::HashMap;

use parking_lot::RwLock;
use presto_cache::fragment::{affinity_worker, fingerprint, FragmentKey, FragmentResultCache};
use presto_common::clock::SimStopwatch;
use presto_common::metrics::{names, CounterSet, HistogramSet};
use presto_common::trace::{SpanId, SpanKind, Trace};
use presto_common::{FaultDecision, FaultInjector, Page, PrestoError, Result, SimClock};
use presto_connectors::{Connector, ConnectorSplit, ScanRequest, SplitPayload};
use presto_core::{PrestoEngine, QueryInfo, QueryResult, Session};
use presto_plan::{LogicalPlan, PlanFragment};
use presto_resource::{AdmissionConfig, ResourceConfig, ResourceManager};

use crate::worker::{Worker, WorkerState, DEFAULT_GRACE_PERIOD};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Workers started at launch.
    pub initial_workers: u32,
    /// `shutdown.grace-period` (§IX; the paper's default is 2 minutes).
    pub grace_period: Duration,
    /// §VII affinity scheduler: route each split to the same worker via
    /// rendezvous hashing (instead of round-robin), so worker-side caches
    /// stay hot across queries and fleet changes.
    pub affinity_scheduling: bool,
    /// §VII fragment result cache: per-worker entries (0 = disabled). Only
    /// immutable splits (warehouse files, generated data) are cached.
    pub fragment_cache_entries: usize,
    /// Cluster-wide memory pool in bytes (`None` = unbounded).
    pub cluster_memory_bytes: Option<usize>,
    /// Coordinator admission control (defaults admit everything at once).
    pub admission: AdmissionConfig,
    /// Deterministic fault harness consulted at every task start
    /// (disabled by default — no faults, no lock contention).
    pub fault_injector: Arc<FaultInjector>,
    /// Recover from retryable task failures by reassigning the unfinished
    /// splits to surviving workers (on by default). With recovery off, the
    /// first task failure fails the whole query — the pre-§XII behaviour
    /// the chaos experiment compares against.
    pub fault_recovery: bool,
    /// Times one split may be attempted before the query fails.
    pub max_split_attempts: u32,
    /// First retry backoff; doubles per retry round. Waits advance the
    /// virtual [`SimClock`], never the wall clock.
    pub retry_backoff_base: Duration,
    /// Quarantine a worker after this many *consecutive* task failures
    /// (0 = never blacklist).
    pub blacklist_after: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            initial_workers: 4,
            grace_period: DEFAULT_GRACE_PERIOD,
            affinity_scheduling: false,
            fragment_cache_entries: 0,
            cluster_memory_bytes: None,
            admission: AdmissionConfig::default(),
            fault_injector: FaultInjector::disabled(),
            fault_recovery: true,
            max_split_attempts: 4,
            retry_backoff_base: Duration::from_millis(50),
            blacklist_after: 3,
        }
    }
}

/// A cluster: coordinator state + worker pool.
///
/// Counters: `cluster.queries`, `cluster.tasks`, `cluster.queries_failed`
/// (the query *started* and then died), `cluster.queries_rejected` (refused
/// at the door — maintenance drain or admission queue full),
/// `cluster.worker_failures`, `cluster.split_retries`, and
/// `cluster.blacklisted_workers`.
pub struct PrestoCluster {
    name: String,
    engine: PrestoEngine,
    workers: RwLock<Vec<Arc<Worker>>>,
    next_worker_id: AtomicU32,
    clock: SimClock,
    config: ClusterConfig,
    metrics: CounterSet,
    /// Latency/backoff distributions (`cluster.query_latency_us`,
    /// `cluster.retry_backoff_us`).
    histograms: HistogramSet,
    /// Administrators drain whole clusters for maintenance (§VIII); a
    /// draining cluster refuses new queries so the gateway re-routes.
    maintenance: RwLock<bool>,
    queries_started: AtomicU64,
    /// Per-worker fragment result caches (die with their worker, like any
    /// worker-side memory cache).
    fragment_caches: RwLock<HashMap<u32, FragmentResultCache>>,
}

impl PrestoCluster {
    /// Launch a cluster.
    pub fn new(
        name: impl Into<String>,
        engine: PrestoEngine,
        config: ClusterConfig,
        clock: SimClock,
    ) -> Arc<PrestoCluster> {
        // The coordinator owns the cluster-wide resource manager: one
        // memory pool and one admission queue shared by every query this
        // cluster runs. The engine's fragments account against it.
        let engine = engine.with_resources(ResourceManager::new(
            ResourceConfig {
                cluster_memory_bytes: config.cluster_memory_bytes,
                admission: config.admission.clone(),
            },
            clock.clone(),
        ));
        let cluster = PrestoCluster {
            name: name.into(),
            engine,
            workers: RwLock::new(Vec::new()),
            next_worker_id: AtomicU32::new(0),
            clock,
            config,
            metrics: CounterSet::new(),
            histograms: HistogramSet::new(),
            maintenance: RwLock::new(false),
            queries_started: AtomicU64::new(0),
            fragment_caches: RwLock::new(HashMap::new()),
        };
        let cluster = Arc::new(cluster);
        cluster.expand(cluster.config.initial_workers);
        cluster
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine (catalog registration etc.).
    pub fn engine(&self) -> &PrestoEngine {
        &self.engine
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Latency and backoff distributions recorded by this cluster.
    pub fn histograms(&self) -> &HistogramSet {
        &self.histograms
    }

    /// §IX expansion: "we could simply add more workers, configured with
    /// the same coordinator. New workers are automatically added to the
    /// existing cluster."
    pub fn expand(&self, count: u32) {
        let mut workers = self.workers.write();
        let mut caches = self.fragment_caches.write();
        for _ in 0..count {
            let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
            workers.push(Worker::new(id, self.clock.clone(), self.config.grace_period));
            if self.config.fragment_cache_entries > 0 {
                caches.insert(
                    id,
                    FragmentResultCache::new(
                        self.config.fragment_cache_entries,
                        self.metrics.clone(),
                    ),
                );
            }
        }
    }

    /// All workers (any state).
    pub fn workers(&self) -> Vec<Arc<Worker>> {
        self.workers.read().clone()
    }

    /// Workers currently accepting tasks.
    pub fn active_workers(&self) -> Vec<Arc<Worker>> {
        self.workers.read().iter().filter(|w| w.accepts_tasks()).cloned().collect()
    }

    /// §IX shrink: send the shutdown command to one worker.
    pub fn request_worker_shutdown(&self, worker_id: u32) -> Result<()> {
        let workers = self.workers.read();
        let worker = workers
            .iter()
            .find(|w| w.id == worker_id)
            .ok_or_else(|| PrestoError::Execution(format!("no worker {worker_id}")))?;
        worker.request_shutdown();
        Ok(())
    }

    /// Advance worker state machines; reap terminated workers. Returns the
    /// number of live workers remaining.
    pub fn tick(&self) -> usize {
        let mut workers = self.workers.write();
        for w in workers.iter() {
            w.tick();
        }
        let mut caches = self.fragment_caches.write();
        workers.retain(|w| {
            let live = w.state() != WorkerState::Terminated;
            if !live {
                // a terminated worker takes its in-memory caches with it
                caches.remove(&w.id);
            }
            live
        });
        workers.len()
    }

    /// Enter/exit maintenance (drain) mode.
    pub fn set_maintenance(&self, on: bool) {
        *self.maintenance.write() = on;
    }

    /// Is the cluster refusing new queries?
    pub fn in_maintenance(&self) -> bool {
        *self.maintenance.read()
    }

    /// Queries executed so far.
    pub fn queries_started(&self) -> u64 {
        self.queries_started.load(Ordering::Relaxed)
    }

    /// Execute a query with distributed scan fragments.
    ///
    /// Queries pass the coordinator's admission queue first; the RAII
    /// permit is held for the query's whole distributed run.
    ///
    /// Refusals are not failures: a maintenance drain or a full admission
    /// queue turns the query away *before it starts* and counts as
    /// `cluster.queries_rejected`, so `cluster.queries_failed` is reserved
    /// for queries that actually ran and died. The maintenance refusal is
    /// [`PrestoError::ClusterUnavailable`] — retryable, so a gateway that
    /// raced the drain can fail the query over to a healthy cluster.
    pub fn execute(&self, sql: &str, session: &Session) -> Result<QueryResult> {
        if self.in_maintenance() {
            self.metrics.incr(names::CLUSTER_QUERIES_REJECTED);
            return Err(PrestoError::ClusterUnavailable(format!(
                "cluster {} is in maintenance",
                self.name
            )));
        }
        let query_metrics = CounterSet::new();
        let permit = match self.engine.resources().admission().admit(
            &session.user,
            session.priority,
            &query_metrics,
        ) {
            Ok(permit) => permit,
            Err(e) => {
                self.metrics.incr(names::CLUSTER_QUERIES_REJECTED);
                return Err(e);
            }
        };
        self.queries_started.fetch_add(1, Ordering::Relaxed);
        self.metrics.incr(names::CLUSTER_QUERIES);
        // The query trace runs on the cluster's shared virtual clock, so
        // span timestamps line up with admission waits and retry backoffs.
        let trace = Trace::new(self.clock.clone());
        let root = trace.begin(SpanKind::Query, "query", None);
        let watch = SimStopwatch::start(&self.clock);
        let result = self.execute_inner(sql, session, &query_metrics, &trace, root);
        drop(permit);
        let latency = watch.elapsed();
        trace.end(root);
        match result {
            Ok(mut ok) => {
                self.histograms
                    .record(names::HIST_CLUSTER_QUERY_LATENCY_US, latency.as_micros() as u64);
                let peak_memory = query_metrics.get(names::MEMORY_RESERVED_PEAK) as usize;
                ok.info = QueryInfo { trace, latency, peak_memory };
                Ok(ok)
            }
            Err(e) => {
                self.metrics.incr(names::CLUSTER_QUERIES_FAILED);
                trace.set_attr(root, "error", 1);
                Err(e)
            }
        }
    }

    fn execute_inner(
        &self,
        sql: &str,
        session: &Session,
        query_metrics: &CounterSet,
        trace: &Trace,
        root: SpanId,
    ) -> Result<QueryResult> {
        let fragments = self.engine.fragment(sql, session)?;
        let schema = fragments[0].plan.output_schema()?;

        // Execute leaf (scan) fragments with splits spread across workers.
        let mut exchanges: Vec<(u32, Vec<Page>)> = Vec::new();
        for fragment in &fragments[1..] {
            let stage =
                trace.begin(SpanKind::Stage, format!("fragment[{}]", fragment.id), Some(root));
            let LogicalPlan::TableScan { catalog, schema: sch, table, request, .. } =
                &fragment.plan
            else {
                // non-scan fragment (not produced by the current fragmenter)
                let pages = self.engine.execute_fragment_traced(
                    fragment,
                    vec![],
                    session,
                    query_metrics,
                    trace,
                    Some(stage),
                )?;
                trace.end(stage);
                exchanges.push((fragment.id, pages));
                continue;
            };
            let connector = self.engine.catalogs().get(catalog)?;
            let splits = match connector.splits(sch, table, request) {
                Ok(splits) => splits,
                Err(e) => {
                    trace.end(stage);
                    return Err(e);
                }
            };
            // distinct splits, not attempts: retries do not inflate the tally
            self.metrics.add(names::CLUSTER_TASKS, splits.len() as u64);
            let pages =
                self.run_scan_fragment(fragment, &splits, &connector, request, trace, stage);
            trace.end(stage);
            exchanges.push((fragment.id, pages?));
        }

        // Root fragment runs on the coordinator.
        let stage =
            trace.begin(SpanKind::Stage, format!("fragment[{}]", fragments[0].id), Some(root));
        let pages = self.engine.execute_fragment_traced(
            &fragments[0],
            exchanges,
            session,
            query_metrics,
            trace,
            Some(stage),
        );
        trace.end(stage);
        Ok(QueryResult {
            schema,
            pages: pages?,
            metrics: query_metrics.clone(),
            info: QueryInfo::empty(),
        })
    }

    /// Run one scan fragment's splits across the active workers, recovering
    /// from retryable task failures (§XII).
    ///
    /// Split assignment: affinity scheduling (§VII) routes each split to a
    /// stable worker via rendezvous hashing; otherwise splits round-robin.
    /// Scan tasks run on real threads, one per worker (a worker's splits run
    /// serially on it). After each round, splits that failed with a
    /// *retryable* error are reassigned to the surviving fleet — the
    /// affinity hash re-runs over the shrunken worker set — under a
    /// per-split attempt cap, with exponential backoff on the virtual clock
    /// between rounds. A worker that crashed or got blacklisted also loses
    /// its fragment result cache, like any worker-side memory.
    #[allow(clippy::too_many_arguments)]
    fn run_scan_fragment(
        &self,
        fragment: &PlanFragment,
        splits: &[ConnectorSplit],
        connector: &Arc<dyn Connector>,
        request: &ScanRequest,
        trace: &Trace,
        stage: SpanId,
    ) -> Result<Vec<Page>> {
        // Pushdowns are part of the fragment identity: two queries only
        // share cached results when their pushed-down scans agree.
        let plan_fingerprint = fingerprint(&format!("{:?}", fragment.plan));
        let mut results: Vec<Option<Vec<Page>>> = splits.iter().map(|_| None).collect();
        let mut attempts = vec![0u32; splits.len()];
        let mut pending: Vec<usize> = (0..splits.len()).collect();
        let mut backoff = self.config.retry_backoff_base;

        while !pending.is_empty() {
            let workers = self.active_workers();
            if workers.is_empty() {
                return Err(PrestoError::ClusterUnavailable(format!(
                    "cluster {} has no active workers",
                    self.name
                )));
            }
            let worker_ids: Vec<u32> = workers.iter().map(|w| w.id).collect();
            let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); workers.len()];
            for (k, &i) in pending.iter().enumerate() {
                let w = if self.config.affinity_scheduling {
                    // `workers` was checked non-empty above; fall back to
                    // round-robin rather than panicking if that ever breaks.
                    affinity_worker(&split_identity(&splits[i].payload), &worker_ids)
                        .unwrap_or(k % workers.len())
                } else {
                    k % workers.len()
                };
                per_worker[w].push(i);
            }
            let assignments: Vec<(Arc<Worker>, Vec<usize>)> =
                workers.iter().cloned().zip(per_worker).collect();
            // Shared cancellation: once any task fails terminally, sibling
            // workers stop picking up splits for the doomed query.
            let cancel = AtomicBool::new(false);
            type TaskOutcomes = Vec<(usize, Result<Vec<Page>>)>;
            let round: Vec<(Arc<Worker>, TaskOutcomes)> = std::thread::scope(|scope| {
                let handles: Vec<_> = assignments
                    .iter()
                    .map(|(worker, split_ids)| {
                        let connector = connector.clone();
                        let cache = self.fragment_caches.read().get(&worker.id).cloned();
                        let cancel = &cancel;
                        scope.spawn(move || {
                            self.run_worker_tasks(
                                worker,
                                split_ids,
                                splits,
                                &connector,
                                request,
                                plan_fingerprint,
                                cache,
                                cancel,
                                trace,
                                stage,
                            )
                        })
                    })
                    .collect();
                assignments
                    .iter()
                    .zip(handles)
                    .map(|((worker, split_ids), h)| {
                        // A panicking scan task must fail its query, not the
                        // whole coordinator loop.
                        let outcomes = h.join().unwrap_or_else(|_| {
                            split_ids
                                .iter()
                                .map(|&i| {
                                    (
                                        i,
                                        Err(PrestoError::Internal(format!(
                                            "scan task panicked on cluster {} (fragment {})",
                                            self.name, fragment.id
                                        ))),
                                    )
                                })
                                .collect()
                        });
                        (worker.clone(), outcomes)
                    })
                    .collect()
            });

            let mut retry_now: Vec<usize> = Vec::new();
            let mut terminal: Option<PrestoError> = None;
            for (worker, outcomes) in round {
                let mut worker_failed_here = false;
                for (i, outcome) in outcomes {
                    match outcome {
                        Ok(pages) => results[i] = Some(pages),
                        Err(e) if self.config.fault_recovery && e.is_retryable() => {
                            worker_failed_here = true;
                            attempts[i] += 1;
                            if attempts[i] >= self.config.max_split_attempts {
                                terminal.get_or_insert_with(|| {
                                    attempts_exhausted(i, self.config.max_split_attempts, &e)
                                });
                            } else {
                                self.metrics.incr(names::CLUSTER_SPLIT_RETRIES);
                                retry_now.push(i);
                            }
                        }
                        Err(e) => {
                            worker_failed_here |= e.is_retryable();
                            terminal.get_or_insert(e);
                        }
                    }
                }
                if worker_failed_here {
                    self.metrics.incr(names::CLUSTER_WORKER_FAILURES);
                }
                if worker.state() == WorkerState::Crashed || worker.is_blacklisted() {
                    // a dead or quarantined worker takes its in-memory
                    // fragment cache with it
                    self.fragment_caches.write().remove(&worker.id);
                }
            }
            if let Some(e) = terminal {
                return Err(e);
            }
            pending = retry_now;
            if !pending.is_empty() {
                // exponential backoff on the virtual clock before the next
                // reassignment round
                self.histograms
                    .record(names::HIST_CLUSTER_RETRY_BACKOFF_US, backoff.as_micros() as u64);
                self.clock.advance(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }

        // splits stay ordered so results are deterministic
        let mut pages = Vec::new();
        for (i, slot) in results.into_iter().enumerate() {
            match slot {
                Some(p) => pages.extend(p),
                None => {
                    return Err(PrestoError::Internal(format!(
                        "split {i} never produced a result on cluster {}",
                        self.name
                    )))
                }
            }
        }
        Ok(pages)
    }

    /// Serial task loop for one worker in one scheduling round. Every task
    /// start consults the fault injector *before* touching the worker or
    /// the cache, so the fault schedule is a pure function of (seed,
    /// worker, per-worker task ordinal). An injected crash kills the worker
    /// for good — its remaining splits in this round are lost in flight —
    /// while an injected task fault fails just that split.
    #[allow(clippy::too_many_arguments)]
    fn run_worker_tasks(
        &self,
        worker: &Arc<Worker>,
        split_ids: &[usize],
        splits: &[ConnectorSplit],
        connector: &Arc<dyn Connector>,
        request: &ScanRequest,
        plan_fingerprint: u64,
        cache: Option<FragmentResultCache>,
        cancel: &AtomicBool,
        trace: &Trace,
        stage: SpanId,
    ) -> Vec<(usize, Result<Vec<Page>>)> {
        let mut out = Vec::new();
        let mut crashed = false;
        for &i in split_ids {
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            // Task spans are safe to record from worker threads: workers
            // never advance the shared clock, so every span in a round
            // carries the same timestamps and the digest's canonical
            // (start, name) ordering removes thread interleaving.
            let span = trace.begin(SpanKind::Task, format!("split[{i}]"), Some(stage));
            trace.set_attr(span, "worker", u64::from(worker.id));
            if crashed {
                // the node is gone; everything still queued on it is lost
                trace.set_attr(span, "error", 1);
                trace.end(span);
                out.push((i, Err(worker_failed(worker.id, "crashed"))));
                continue;
            }
            match self.config.fault_injector.on_task_start(worker.id, self.clock.now()) {
                FaultDecision::CrashWorker => {
                    worker.crash();
                    crashed = true;
                    let err = worker_failed(worker.id, "crashed (injected)");
                    self.note_task_failure(worker, &err, cancel);
                    trace.set_attr(span, "error", 1);
                    trace.end(span);
                    out.push((i, Err(err)));
                    continue;
                }
                FaultDecision::FailTask => {
                    let err = worker_failed(worker.id, "dropped the task (injected fault)");
                    self.note_task_failure(worker, &err, cancel);
                    trace.set_attr(span, "error", 1);
                    trace.end(span);
                    out.push((i, Err(err)));
                    continue;
                }
                FaultDecision::None => {}
            }
            let outcome = self.execute_one_split(
                worker,
                &splits[i],
                connector,
                request,
                plan_fingerprint,
                cache.as_ref(),
            );
            match &outcome {
                Ok(pages) => {
                    worker.record_task_success();
                    let rows: usize = pages.iter().map(|p| p.positions()).sum();
                    trace.set_attr(span, "rows_out", rows as u64);
                }
                Err(e) => {
                    self.note_task_failure(worker, e, cancel);
                    trace.set_attr(span, "error", 1);
                }
            }
            trace.end(span);
            out.push((i, outcome));
        }
        out
    }

    /// One split on one worker: task guard, fragment-cache lookup, connector
    /// scan. Output from a worker that crashed while the task was in flight
    /// is discarded — a dead node's partial results cannot be trusted.
    fn execute_one_split(
        &self,
        worker: &Arc<Worker>,
        split: &ConnectorSplit,
        connector: &Arc<dyn Connector>,
        request: &ScanRequest,
        plan_fingerprint: u64,
        cache: Option<&FragmentResultCache>,
    ) -> Result<Vec<Page>> {
        let _task = worker.begin_task()?;
        let key = FragmentKey { plan_fingerprint, split_identity: split_identity(&split.payload) };
        let cacheable = cache.is_some() && is_immutable_split(&split.payload);
        if cacheable {
            if let Some(hit) = cache.and_then(|c| c.get(&key)) {
                return Ok(hit.as_ref().clone());
            }
        }
        let pages = connector.scan_split(split, request)?;
        if worker.state() == WorkerState::Crashed {
            return Err(worker_failed(worker.id, "crashed while the task was in flight"));
        }
        if cacheable {
            if let Some(c) = cache {
                c.put(key, pages.clone());
            }
        }
        Ok(pages)
    }

    /// Blacklist bookkeeping + cancellation for one failed task. Runs on
    /// the worker's own thread (a worker's tasks are serial, so the
    /// consecutive-failure streak is deterministic). Terminal failures —
    /// non-retryable, or any failure while recovery is disabled — flip the
    /// shared cancel flag so sibling workers stop scanning for a query that
    /// is already doomed.
    fn note_task_failure(&self, worker: &Arc<Worker>, e: &PrestoError, cancel: &AtomicBool) {
        if worker.record_task_failure(self.config.blacklist_after) {
            self.metrics.incr(names::CLUSTER_BLACKLISTED_WORKERS);
        }
        if !(self.config.fault_recovery && e.is_retryable()) {
            cancel.store(true, Ordering::Relaxed);
        }
    }
}

/// A retryable infrastructure failure attributed to one worker.
fn worker_failed(worker_id: u32, what: &str) -> PrestoError {
    PrestoError::WorkerFailed { worker_id, message: format!("worker {worker_id} {what}") }
}

/// Wrap the last retryable error once a split's attempt budget is spent.
/// The wrapper keeps the retryable *class*: this coordinator is giving up,
/// but the gateway may still fail the whole query over to another cluster,
/// where the split gets a fresh budget.
fn attempts_exhausted(split: usize, cap: u32, last: &PrestoError) -> PrestoError {
    let context = format!("split {split} failed {cap} attempts, giving up: {last}");
    match last {
        PrestoError::WorkerFailed { worker_id, .. } => {
            PrestoError::WorkerFailed { worker_id: *worker_id, message: context }
        }
        _ => PrestoError::ClusterUnavailable(context),
    }
}

/// Stable identity of a split, for affinity hashing and cache keys.
fn split_identity(payload: &SplitPayload) -> String {
    match payload {
        SplitPayload::HiveFile { path, .. } => format!("hive:{path}"),
        SplitPayload::Memory { chunk } => format!("memory:{chunk}"),
        SplitPayload::MySql => "mysql".to_string(),
        SplitPayload::Segments { start, end } => format!("segments:{start}-{end}"),
        SplitPayload::Tpch { start, count } => format!("tpch:{start}+{count}"),
    }
}

/// Only splits over immutable data may be result-cached: warehouse files
/// never change in place, generated TPC-H data is deterministic. Memory and
/// MySQL tables mutate; real-time segments keep arriving.
fn is_immutable_split(payload: &SplitPayload) -> bool {
    matches!(payload, SplitPayload::HiveFile { .. } | SplitPayload::Tpch { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Block, DataType, Field, Schema, Value};
    use presto_connectors::memory::MemoryConnector;

    fn cluster_with(config: ClusterConfig) -> Arc<PrestoCluster> {
        let engine = PrestoEngine::new();
        let memory = MemoryConnector::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("city", DataType::Varchar),
        ])
        .unwrap();
        // several pages → several splits → distributed scan
        let pages: Vec<Page> = (0..8)
            .map(|p| {
                Page::new(vec![
                    Block::bigint((p * 10..p * 10 + 10).collect()),
                    Block::varchar(&["sf"; 10]),
                ])
                .unwrap()
            })
            .collect();
        memory.create_table("default", "t", schema, pages).unwrap();
        engine.register_catalog("memory", Arc::new(memory));
        PrestoCluster::new("test", engine, config, SimClock::new())
    }

    fn cluster() -> Arc<PrestoCluster> {
        cluster_with(ClusterConfig {
            initial_workers: 3,
            grace_period: Duration::from_secs(2),
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn distributed_query_spreads_tasks_over_workers() {
        let c = cluster();
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
        assert_eq!(c.metrics().get("cluster.tasks"), 8);
        // every worker did some splits
        let done: Vec<usize> = c.workers().iter().map(|w| w.completed_tasks()).collect();
        assert!(done.iter().all(|&d| d > 0), "{done:?}");
        assert_eq!(done.iter().sum::<usize>(), 8);
    }

    #[test]
    fn expansion_adds_capacity() {
        let c = cluster();
        assert_eq!(c.active_workers().len(), 3);
        c.expand(2);
        assert_eq!(c.active_workers().len(), 5);
        // new workers participate immediately
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert!(c.workers().iter().any(|w| w.id >= 3 && w.completed_tasks() > 0));
    }

    #[test]
    fn graceful_shrink_never_fails_queries() {
        let c = cluster();
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        // drain worker 0
        c.request_worker_shutdown(0).unwrap();
        // queries keep running while the worker drains
        for _ in 0..5 {
            c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
            c.clock().advance(Duration::from_secs(1));
            c.tick();
        }
        // finish both grace periods
        c.clock().advance(Duration::from_secs(5));
        c.tick();
        c.clock().advance(Duration::from_secs(5));
        let remaining = c.tick();
        assert_eq!(remaining, 2, "worker 0 terminated");
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        // and the cluster still works
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
    }

    #[test]
    fn fragment_result_cache_serves_repeat_queries() {
        let engine = PrestoEngine::new();
        engine.register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
        let c = PrestoCluster::new(
            "cached",
            engine,
            ClusterConfig {
                initial_workers: 3,
                affinity_scheduling: true,
                fragment_cache_entries: 64,
                ..ClusterConfig::default()
            },
            SimClock::new(),
        );
        let session = Session::new("tpch", "tiny");
        let sql = "SELECT returnflag, count(*) FROM lineitem GROUP BY 1";
        let first = c.execute(sql, &session).unwrap();
        assert_eq!(c.metrics().get("frc.hits"), 0);
        let misses_after_first = c.metrics().get("frc.misses");
        assert!(misses_after_first > 0, "first run populates the cache");

        // the dashboard refreshes: identical query, all splits served from
        // worker memory
        let second = c.execute(sql, &session).unwrap();
        assert_eq!(first.rows(), second.rows());
        assert_eq!(c.metrics().get("frc.misses"), misses_after_first);
        assert_eq!(c.metrics().get("frc.hits"), misses_after_first);

        // a different pushdown shape must not share results
        let other = "SELECT returnflag, count(*) FROM lineitem \
                     WHERE linestatus = 'O' GROUP BY 1";
        c.execute(other, &session).unwrap();
        assert!(c.metrics().get("frc.misses") > misses_after_first);
    }

    #[test]
    fn affinity_keeps_caches_warm_through_expansion() {
        let engine = PrestoEngine::new();
        engine.register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
        let mk = |affinity: bool| {
            let c = PrestoCluster::new(
                "t",
                engine.clone(),
                ClusterConfig {
                    initial_workers: 4,
                    affinity_scheduling: affinity,
                    fragment_cache_entries: 64,
                    ..ClusterConfig::default()
                },
                SimClock::new(),
            );
            let session = Session::new("tpch", "small");
            let sql = "SELECT count(*) FROM lineitem";
            c.execute(sql, &session).unwrap(); // warm caches
            c.metrics().reset();
            c.expand(1); // fleet change
            c.execute(sql, &session).unwrap();
            (c.metrics().get("frc.hits"), c.metrics().get("frc.misses"))
        };
        // with affinity, most splits still land on their warm worker
        let (affinity_hits, affinity_misses) = mk(true);
        assert!(
            affinity_hits > affinity_misses,
            "affinity should keep most splits warm: {affinity_hits} hits vs {affinity_misses} misses"
        );
        // round-robin reshuffles on expansion, losing most of the cache
        let (rr_hits, _) = mk(false);
        assert!(
            affinity_hits > rr_hits,
            "affinity ({affinity_hits}) must beat round-robin ({rr_hits})"
        );
    }

    #[test]
    fn maintenance_refuses_queries() {
        let c = cluster();
        c.set_maintenance(true);
        assert!(c.execute("SELECT 1", &Session::default()).is_err());
        c.set_maintenance(false);
        assert!(c.execute("SELECT 1", &Session::default()).is_ok());
    }

    #[test]
    fn refusals_are_rejected_not_failed() {
        let c = cluster();
        c.set_maintenance(true);
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert_eq!(err.code(), "CLUSTER_UNAVAILABLE");
        assert!(err.is_retryable(), "a gateway that raced the drain may re-route");
        assert_eq!(c.metrics().get("cluster.queries_rejected"), 1);
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        assert_eq!(c.queries_started(), 0, "the query never started");
    }

    #[test]
    fn admission_overflow_is_rejected_not_failed() {
        let c = cluster_with(ClusterConfig {
            initial_workers: 1,
            admission: AdmissionConfig {
                max_concurrent: Some(0),
                max_queued: 0,
                ..AdmissionConfig::default()
            },
            ..ClusterConfig::default()
        });
        let err = c.execute("SELECT 1", &Session::default()).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
        assert_eq!(c.metrics().get("cluster.queries_rejected"), 1);
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        assert_eq!(c.queries_started(), 0);
    }

    #[test]
    fn injected_crash_recovers_via_split_reassignment() {
        use presto_common::{FaultInjector, FaultPlan};
        // worker 1 dies when it starts its second task; its unfinished
        // splits move to the two survivors and the query still answers
        // correctly.
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            fault_injector: FaultInjector::new(7, FaultPlan::new().crash_on_task(1, 2)),
            ..ClusterConfig::default()
        });
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
        assert!(c.metrics().get("cluster.split_retries") >= 1);
        assert_eq!(c.metrics().get("cluster.worker_failures"), 1);
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        let crashed: Vec<u32> = c
            .workers()
            .iter()
            .filter(|w| w.state() == WorkerState::Crashed)
            .map(|w| w.id)
            .collect();
        assert_eq!(crashed, vec![1]);
    }

    #[test]
    fn recovery_off_fails_the_query_on_the_same_schedule() {
        use presto_common::{FaultInjector, FaultPlan};
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            fault_injector: FaultInjector::new(7, FaultPlan::new().crash_on_task(1, 2)),
            fault_recovery: false,
            ..ClusterConfig::default()
        });
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert_eq!(err.code(), "WORKER_FAILED");
        assert_eq!(c.metrics().get("cluster.split_retries"), 0);
        assert_eq!(c.metrics().get("cluster.queries_failed"), 1);
    }

    #[test]
    fn attempt_cap_gives_up_with_a_retryable_error() {
        use presto_common::{FaultInjector, FaultPlan};
        // one worker that drops every task: the only candidate for every
        // reattempt keeps failing until the per-split budget runs out
        let c = cluster_with(ClusterConfig {
            initial_workers: 1,
            fault_injector: FaultInjector::new(3, FaultPlan::new().fail_rate(1.0)),
            max_split_attempts: 3,
            blacklist_after: 0, // keep the flaky worker schedulable
            ..ClusterConfig::default()
        });
        let before = c.clock().now();
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert!(err.is_retryable(), "the gateway may still fail over: {err}");
        assert!(err.message().contains("giving up"), "{err}");
        assert_eq!(c.metrics().get("cluster.queries_failed"), 1);
        // two retry rounds happened, with backoff on the virtual clock
        assert!(c.metrics().get("cluster.split_retries") >= 2);
        assert!(c.clock().now() > before, "backoff advances virtual time");
    }

    #[test]
    fn flaky_worker_is_blacklisted_and_quarantined() {
        use presto_common::{FaultInjector, FaultPlan};
        // worker 0 drops its first three tasks, then would behave — but by
        // then the consecutive-failure blacklist has quarantined it, so the
        // retries (and every later query) run on workers 1 and 2.
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            fault_injector: FaultInjector::new(
                5,
                FaultPlan::new().fail_task(0, 1).fail_task(0, 2).fail_task(0, 3),
            ),
            blacklist_after: 3,
            ..ClusterConfig::default()
        });
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
        assert_eq!(c.metrics().get("cluster.blacklisted_workers"), 1);
        let w0 = &c.workers()[0];
        assert!(w0.is_blacklisted());
        assert_eq!(w0.state(), WorkerState::Active, "quarantined, not dead");
        assert!(!w0.accepts_tasks());
        // later queries never touch the quarantined worker
        let done_before = w0.completed_tasks();
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(w0.completed_tasks(), done_before);
    }

    #[test]
    fn queries_record_traces_and_latency_histograms() {
        let c = cluster();
        let r = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        let spans = r.info.trace.spans();
        assert!(spans.iter().any(|s| s.kind == SpanKind::Query));
        assert!(spans.iter().any(|s| s.kind == SpanKind::Stage));
        // one task span per split, parented under the scan stage
        assert_eq!(spans.iter().filter(|s| s.kind == SpanKind::Task).count(), 8);
        assert!(r.info.latency > Duration::ZERO, "the cost model advances virtual time");
        let h = c.histograms().get(names::HIST_CLUSTER_QUERY_LATENCY_US);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), r.info.latency.as_micros() as u64);
    }

    #[test]
    fn retry_backoff_lands_in_the_histogram() {
        use presto_common::{FaultInjector, FaultPlan};
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            fault_injector: FaultInjector::new(7, FaultPlan::new().crash_on_task(1, 2)),
            ..ClusterConfig::default()
        });
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        let h = c.histograms().get(names::HIST_CLUSTER_RETRY_BACKOFF_US);
        assert!(h.count() >= 1, "at least one backoff round ran");
        assert!(h.min() >= c.config.retry_backoff_base.as_micros() as u64);
    }

    #[test]
    fn same_seed_chaos_runs_produce_identical_trace_digests() {
        use presto_common::{FaultInjector, FaultPlan};
        let digest_of = || {
            let c = cluster_with(ClusterConfig {
                initial_workers: 3,
                fault_injector: FaultInjector::new(
                    7,
                    FaultPlan::new().crash_on_task(1, 2).fail_task(0, 3),
                ),
                ..ClusterConfig::default()
            });
            let r = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
            r.info.trace.digest()
        };
        assert_eq!(digest_of(), digest_of(), "trace digests must be bit-identical");
    }

    #[test]
    fn no_active_workers_is_an_error() {
        let c = cluster();
        for w in c.workers() {
            w.request_shutdown();
        }
        c.clock().advance(Duration::from_secs(3));
        c.tick();
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert!(err.message().contains("no active workers"));
    }
}
