//! One Presto cluster: a coordinator and N workers (§III), with graceful
//! expansion and shrink (§IX) and crash recovery (§XII).
//!
//! Distributed execution model: the coordinator plans and fragments the
//! query; each leaf (scan) fragment's connector splits are assigned
//! round-robin (or by §VII affinity) to ACTIVE workers and executed on real
//! threads; intermediate pages flow back as exchanges; the root fragment
//! runs on the coordinator.
//!
//! Fault tolerance: every task start consults the cluster's
//! [`FaultInjector`]; when a task fails with a *retryable* error (worker
//! crash, injected fault, mid-stream scan tear, transient-retry exhaustion
//! in storage) the coordinator reassigns only the unfinished splits to
//! surviving workers under a per-split attempt cap and virtual-time
//! exponential backoff. Flaky-but-alive workers are quarantined by the
//! consecutive-failure blacklist and re-admitted through a half-open
//! probation window ([`crate::worker::WorkerHealth`]).
//!
//! Scheduling is a serial discrete-event simulation on the coordinator
//! thread: every task attempt gets a virtual duration (fixed overhead +
//! per-row cost + injected stalls) and completes at a virtual timestamp
//! drawn from an event heap, so task interleaving, retries, and
//! speculation are all pure functions of (seed, plan, cluster config).
//!
//! Speculative execution (straggler mitigation): once enough siblings of a
//! scan fragment have completed, any running attempt whose elapsed virtual
//! time exceeds a configurable quantile of the completed sibling runtimes
//! gets a duplicate attempt on a different idle worker. First result wins;
//! the loser is cancelled. Every decision is recorded —
//! `cluster.speculative_launches` / `_wins` / `_wasted` counters and a
//! `Speculate` trace span per launch.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use presto_cache::fragment::{fingerprint, FragmentKey, FragmentResultCache};
use presto_cache::{DistributedCache, DistributedCacheConfig};
use presto_common::clock::SimStopwatch;
use presto_common::metrics::{names, CounterSet, Fnv, Histogram, HistogramSet};
use presto_common::ring::{DEFAULT_RING_SEED, DEFAULT_VNODES};
use presto_common::telemetry::{QueryRow, TaskRow, TelemetryRegistry, WorkerRow};
use presto_common::trace::{SpanId, SpanKind, Trace};
use presto_common::HashRing;
use presto_common::{FaultDecision, FaultInjector, Page, PrestoError, Result, SimClock};
use presto_connectors::{
    Connector, ConnectorSplit, ScanHooks, ScanRequest, SplitPayload, SystemConnector,
};
use presto_core::{PrestoEngine, QueryInfo, QueryResult, Session};
use presto_plan::{LogicalPlan, PlanFragment};
use presto_resource::{AdmissionConfig, QueryPriority, ResourceConfig, ResourceManager};

use crate::worker::{
    Worker, WorkerLifecycle, WorkerState, DEFAULT_GRACE_PERIOD, DEFAULT_PROBATION_WINDOW,
    DEFAULT_QUARANTINE_PERIOD, DEFAULT_WORKER_CLASS,
};

/// Fixed virtual cost of one scan task (queueing, setup, page handoff).
const SCAN_TASK_BASE: Duration = Duration::from_micros(100);

/// Virtual per-row scan cost in nanoseconds.
const SCAN_ROW_NANOS: u64 = 100;

/// Scheduler estimate of the worker memory one in-flight split occupies.
/// Reservations made with it are a *placement score* input, not
/// enforcement — the cluster-wide [`presto_resource::MemoryPool`] enforces.
const SPLIT_MEMORY_ESTIMATE: u64 = 1 << 20;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Workers started at launch.
    pub initial_workers: u32,
    /// `shutdown.grace-period` (§IX; the paper's default is 2 minutes).
    pub grace_period: Duration,
    /// §VII affinity scheduler: route each split to the same worker via
    /// rendezvous hashing (instead of round-robin), so worker-side caches
    /// stay hot across queries and fleet changes.
    pub affinity_scheduling: bool,
    /// §VII fragment result cache: per-worker entries (0 = disabled). Only
    /// immutable splits (warehouse files, generated data) are cached.
    pub fragment_cache_entries: usize,
    /// Cluster-wide memory pool in bytes (`None` = unbounded).
    pub cluster_memory_bytes: Option<usize>,
    /// Coordinator admission control (defaults admit everything at once).
    pub admission: AdmissionConfig,
    /// Deterministic fault harness consulted at every task start
    /// (disabled by default — no faults, no lock contention).
    pub fault_injector: Arc<FaultInjector>,
    /// Recover from retryable task failures by reassigning the unfinished
    /// splits to surviving workers (on by default). With recovery off, the
    /// first task failure fails the whole query — the pre-§XII behaviour
    /// the chaos experiment compares against.
    pub fault_recovery: bool,
    /// Times one split may be attempted before the query fails.
    pub max_split_attempts: u32,
    /// First retry backoff; doubles per retry round. Waits advance the
    /// virtual [`SimClock`], never the wall clock.
    pub retry_backoff_base: Duration,
    /// Quarantine a worker after this many *consecutive* task failures
    /// (0 = never blacklist).
    pub blacklist_after: u32,
    /// How long a blacklisted worker sits in quarantine before probation.
    pub quarantine_period: Duration,
    /// Half-open probation window after quarantine: the worker serves only
    /// low-priority splits; one failure re-quarantines it.
    pub probation_window: Duration,
    /// Straggler mitigation via speculative duplicate attempts.
    pub speculation: SpeculationConfig,
    /// Seed of the consistent-hash ring both the affinity scheduler and
    /// the distributed cache consult. Override on both sides together or
    /// not at all — sharing one ring is what makes placement and cache
    /// ownership agree by construction.
    pub ring_seed: u64,
    /// Virtual nodes per worker on the ring.
    pub ring_vnodes: u32,
    /// Cluster-wide tiered cache (`None` = disabled). Shares the
    /// scheduler's ring; its shards follow worker lifecycle (graceful
    /// drains migrate entries to ring successors, revocations drop them).
    pub distributed_cache: Option<DistributedCacheConfig>,
    /// Per-worker memory budget the affinity placement score respects
    /// (`None` = headroom ignored): an owner whose headroom cannot fit
    /// the next split is skipped in favour of its ring successor.
    pub worker_memory_bytes: Option<u64>,
}

/// Speculative execution of straggler splits.
///
/// When a running attempt's elapsed virtual time exceeds `quantile` of the
/// completed sibling runtimes in the same scan fragment, the coordinator
/// launches one duplicate attempt on a different idle worker; the first
/// result wins and the loser is cancelled. At most one duplicate is live
/// per split, and nothing is judged until `min_completed` siblings have
/// finished (small fragments have no statistics worth trusting).
#[derive(Debug, Clone)]
pub struct SpeculationConfig {
    /// Launch duplicates at all (on by default).
    pub enabled: bool,
    /// Sibling-runtime quantile a running attempt must *strictly* exceed.
    pub quantile: f64,
    /// Completed siblings required before stragglers can be judged.
    pub min_completed: u64,
    /// Seed the sibling-runtime yardstick from the previous run of the
    /// same plan fingerprint (on by default). A fragment with too few
    /// splits to ever reach `min_completed` siblings — a single wave, or a
    /// single split — can then speculate *in-wave* on its very first
    /// straggler, using the runtimes the last identical fragment recorded.
    pub seed_from_history: bool,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: true,
            quantile: 0.99,
            min_completed: 3,
            seed_from_history: true,
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            initial_workers: 4,
            grace_period: DEFAULT_GRACE_PERIOD,
            affinity_scheduling: false,
            fragment_cache_entries: 0,
            cluster_memory_bytes: None,
            admission: AdmissionConfig::default(),
            fault_injector: FaultInjector::disabled(),
            fault_recovery: true,
            max_split_attempts: 4,
            retry_backoff_base: Duration::from_millis(50),
            blacklist_after: 3,
            quarantine_period: DEFAULT_QUARANTINE_PERIOD,
            probation_window: DEFAULT_PROBATION_WINDOW,
            speculation: SpeculationConfig::default(),
            ring_seed: DEFAULT_RING_SEED,
            ring_vnodes: DEFAULT_VNODES,
            distributed_cache: None,
            worker_memory_bytes: None,
        }
    }
}

/// A cluster: coordinator state + worker pool.
///
/// Counters: `cluster.queries`, `cluster.tasks`, `cluster.queries_failed`
/// (the query *started* and then died), `cluster.queries_rejected` (refused
/// at the door — maintenance drain or admission queue full),
/// `cluster.worker_failures`, `cluster.split_retries`, and
/// `cluster.blacklisted_workers`.
pub struct PrestoCluster {
    name: String,
    engine: PrestoEngine,
    workers: RwLock<Vec<Arc<Worker>>>,
    next_worker_id: AtomicU32,
    clock: SimClock,
    config: ClusterConfig,
    metrics: CounterSet,
    /// Latency/backoff distributions (`cluster.query_latency_us`,
    /// `cluster.retry_backoff_us`).
    histograms: HistogramSet,
    /// Administrators drain whole clusters for maintenance (§VIII); a
    /// draining cluster refuses new queries so the gateway re-routes.
    /// A single flag — an atomic, not a lock, so it never shows up in the
    /// lock-order analysis.
    maintenance: AtomicBool,
    queries_started: AtomicU64,
    /// Graceful decommissions scheduled for a future virtual instant,
    /// fired by [`PrestoCluster::poll_lifecycle`] — the scan scheduler
    /// polls mid-query, so a drain can land while splits are queued.
    pending_drains: Mutex<Vec<(Duration, u32)>>,
    /// Per-worker fragment result caches (die with their worker, like any
    /// worker-side memory cache). A `BTreeMap`, not a `HashMap`: cache
    /// digests and migrations walk it, and same-seed runs must walk it in
    /// the same order.
    fragment_caches: RwLock<BTreeMap<u32, FragmentResultCache>>,
    /// The consistent-hash ring over `Active` worker ids — the one source
    /// of placement truth, shared with the distributed cache. Updated by
    /// lifecycle events (expand, drain, revoke, probation recovery) while
    /// holding no other cluster lock.
    ring: Arc<RwLock<HashRing>>,
    /// The cluster-wide tiered cache, when configured. Its shards follow
    /// the ring through every lifecycle event.
    dist_cache: Option<DistributedCache>,
    /// Completed task runtimes per plan fingerprint, merged in after every
    /// successful scan fragment. Seeds the next identical fragment's
    /// straggler yardstick so single-wave fragments can speculate in-wave.
    runtime_history: RwLock<HashMap<u64, Histogram>>,
    /// Cluster-wide telemetry: per-worker busy-fraction series, queue/
    /// memory/cache samples, and the row sets the `system` catalog exposes.
    /// Shared with the engine (EXPLAIN ANALYZE footer) and the `system`
    /// connector.
    telemetry: Arc<TelemetryRegistry>,
    /// Per-worker cumulative-busy baselines from the previous telemetry
    /// snapshot, so each snapshot attributes only the delta.
    sampler: Mutex<TelemetrySampler>,
    /// Monotone task sequence feeding `system.runtime.tasks`.
    next_task_id: AtomicU64,
}

#[derive(Default)]
struct TelemetrySampler {
    last_at_us: u64,
    last_busy: BTreeMap<u32, u64>,
}

/// The lowercase lifecycle strings `system.runtime.workers` exposes.
fn lifecycle_str(lifecycle: WorkerLifecycle) -> &'static str {
    match lifecycle {
        WorkerLifecycle::Active => "active",
        WorkerLifecycle::Draining => "draining",
        WorkerLifecycle::Decommissioned => "decommissioned",
        WorkerLifecycle::Revoked => "revoked",
    }
}

impl PrestoCluster {
    /// Launch a cluster.
    pub fn new(
        name: impl Into<String>,
        engine: PrestoEngine,
        config: ClusterConfig,
        clock: SimClock,
    ) -> Arc<PrestoCluster> {
        // The coordinator owns the cluster-wide resource manager: one
        // memory pool and one admission queue shared by every query this
        // cluster runs. The engine's fragments account against it.
        let engine = engine.with_resources(ResourceManager::new(
            ResourceConfig {
                cluster_memory_bytes: config.cluster_memory_bytes,
                admission: config.admission.clone(),
            },
            clock.clone(),
        ));
        // The telemetry registry is shared three ways: the cluster writes
        // snapshots into it, the engine reads it for the EXPLAIN ANALYZE
        // footer, and the `system` catalog exposes it back through SQL.
        let telemetry = Arc::new(TelemetryRegistry::new());
        let engine = engine.with_telemetry(telemetry.clone());
        engine.register_catalog("system", Arc::new(SystemConnector::new(telemetry.clone())));
        // One ring serves both the affinity scheduler and the distributed
        // cache — membership flows in via the same lifecycle events, so
        // placement and cache ownership cannot disagree.
        let metrics = CounterSet::new();
        let ring = Arc::new(RwLock::new(HashRing::new(config.ring_seed, config.ring_vnodes)));
        let dist_cache = config.distributed_cache.clone().map(|dist_config| {
            DistributedCache::new(dist_config, ring.clone(), clock.clone(), metrics.clone())
        });
        let cluster = PrestoCluster {
            name: name.into(),
            engine,
            workers: RwLock::new(Vec::new()),
            next_worker_id: AtomicU32::new(0),
            clock,
            config,
            metrics,
            histograms: HistogramSet::new(),
            maintenance: AtomicBool::new(false),
            queries_started: AtomicU64::new(0),
            pending_drains: Mutex::new(Vec::new()),
            fragment_caches: RwLock::new(BTreeMap::new()),
            ring,
            dist_cache,
            runtime_history: RwLock::new(HashMap::new()),
            telemetry,
            sampler: Mutex::new(TelemetrySampler::default()),
            next_task_id: AtomicU64::new(0),
        };
        let cluster = Arc::new(cluster);
        cluster.expand(cluster.config.initial_workers);
        cluster
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine (catalog registration etc.).
    pub fn engine(&self) -> &PrestoEngine {
        &self.engine
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Latency and backoff distributions recorded by this cluster.
    pub fn histograms(&self) -> &HistogramSet {
        &self.histograms
    }

    /// The cluster's telemetry registry — the store behind the `system`
    /// catalog's tables.
    pub fn telemetry(&self) -> &Arc<TelemetryRegistry> {
        &self.telemetry
    }

    /// §IX expansion: "we could simply add more workers, configured with
    /// the same coordinator. New workers are automatically added to the
    /// existing cluster."
    pub fn expand(&self, count: u32) {
        self.expand_class(count, DEFAULT_WORKER_CLASS);
    }

    /// [`PrestoCluster::expand`] with an explicit capacity class — e.g.
    /// `"spot"` workers that a [`FaultSpec::RevokeClass`] storm can take
    /// out en masse.
    ///
    /// [`FaultSpec::RevokeClass`]: presto_common::fault::FaultSpec::RevokeClass
    pub fn expand_class(&self, count: u32, class: &str) {
        // lock order: fragment_caches before workers, matching the scan
        // path (which reads a worker's cache before dispatching to it)
        let mut caches = self.fragment_caches.write();
        let mut workers = self.workers.write();
        let mut joined = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
            workers.push(Worker::with_class(
                id,
                self.clock.clone(),
                self.config.grace_period,
                self.config.quarantine_period,
                self.config.probation_window,
                class,
            ));
            joined.push(id);
            if self.config.fragment_cache_entries > 0 {
                caches.insert(
                    id,
                    FragmentResultCache::new(
                        self.config.fragment_cache_entries,
                        self.metrics.clone(),
                    ),
                );
            }
        }
        drop(workers);
        drop(caches);
        // Ring membership follows — with the cluster guards already
        // released, so ring edges never overlap fragment_caches/workers in
        // the lock graph.
        for id in joined {
            self.ring.write().insert(id);
            if let Some(dist) = &self.dist_cache {
                dist.worker_joined(id);
            }
        }
    }

    /// All workers (any state).
    pub fn workers(&self) -> Vec<Arc<Worker>> {
        self.workers.read().clone()
    }

    /// Workers currently accepting tasks (at normal priority).
    pub fn active_workers(&self) -> Vec<Arc<Worker>> {
        self.workers.read().iter().filter(|w| w.accepts_tasks()).cloned().collect()
    }

    /// Workers eligible for a query at the given priority: probation
    /// (half-open) workers only count for low-priority work.
    fn eligible_workers(&self, priority: QueryPriority) -> Vec<Arc<Worker>> {
        self.workers.read().iter().filter(|w| w.accepts_tasks_for(priority)).cloned().collect()
    }

    /// §IX shrink: send the shutdown command to one worker. Equivalent to
    /// [`PrestoCluster::decommission_worker`] — the graceful path always
    /// migrates the departing worker's cache entries.
    pub fn request_worker_shutdown(&self, worker_id: u32) -> Result<()> {
        self.decommission_worker(worker_id)
    }

    /// Gracefully decommission one worker (`Active → Draining →
    /// Decommissioned`): migrate its fragment-cache entries to each entry's
    /// consistent successor (counted as `cluster.cache_entries_migrated`),
    /// then start the §IX shutdown state machine. The draining worker
    /// accepts no new splits; its queued splits are handed off by the scan
    /// scheduler (`cluster.splits_handed_off`). A worker that is not
    /// `Active` is left alone — its drain is already underway or it is
    /// gone. Errors only for an unknown worker id.
    pub fn decommission_worker(&self, worker_id: u32) -> Result<()> {
        let workers = self.workers.read();
        let worker = workers
            .iter()
            .find(|w| w.id == worker_id)
            .ok_or_else(|| PrestoError::Execution(format!("no worker {worker_id}")))?;
        if worker.state() != WorkerState::Active {
            return Ok(());
        }
        // Successor set for cache migration: every *other* worker still in
        // Active state — the fleet the rendezvous hash will see once this
        // worker is gone.
        let survivors: Vec<u32> = workers
            .iter()
            .filter(|w| w.id != worker_id && w.state() == WorkerState::Active)
            .map(|w| w.id)
            .collect();
        worker.request_shutdown();
        drop(workers);
        // Ring first, then the distributed cache (which migrates the
        // departing shard to each key's post-removal owner), then the
        // fragment caches. All with the workers guard released.
        self.ring.write().remove(worker_id);
        if let Some(dist) = &self.dist_cache {
            dist.worker_removed(worker_id, true);
        }
        self.migrate_caches(worker_id, &survivors);
        Ok(())
    }

    /// Schedule a graceful decommission of `worker_id` at virtual time
    /// `at`, fired by [`PrestoCluster::poll_lifecycle`]. Because the scan
    /// scheduler polls as its event loop advances, a scheduled drain lands
    /// mid-query and exercises the queued-split handoff path.
    pub fn schedule_decommission(&self, worker_id: u32, at: Duration) {
        self.pending_drains.lock().push((at, worker_id));
    }

    /// Abruptly lose every worker of `class` that is still in the fleet —
    /// the spot revocation storm. In-flight tasks on those workers are
    /// lost, their queued splits get reassigned to survivors by the scan
    /// scheduler's retry machinery, and their worker-side caches die with
    /// them. Returns how many workers were revoked (counted as
    /// `cluster.workers_revoked`).
    pub fn revoke_class(&self, class: &str) -> usize {
        let workers = self.workers.read();
        let mut revoked: Vec<u32> = Vec::new();
        for w in workers.iter() {
            if w.class() == class
                && !matches!(w.state(), WorkerState::Crashed | WorkerState::Terminated)
            {
                w.crash();
                revoked.push(w.id);
            }
        }
        drop(workers);
        if !revoked.is_empty() {
            self.metrics.add(names::CLUSTER_WORKERS_REVOKED, revoked.len() as u64);
            let mut caches = self.fragment_caches.write();
            for id in &revoked {
                caches.remove(id);
            }
            drop(caches);
            // A revoked worker's distributed shard dies with it — nothing
            // to migrate, the entries are simply gone (dist.dropped_entries).
            for id in &revoked {
                self.ring.write().remove(*id);
                if let Some(dist) = &self.dist_cache {
                    dist.worker_removed(*id, false);
                }
            }
        }
        revoked.len()
    }

    /// Any revocation specs or scheduled drains that could fire as virtual
    /// time advances? Cheap guard so the scan scheduler's hot loop skips
    /// the poll entirely in the common (no-elasticity) case.
    pub fn has_lifecycle_events(&self) -> bool {
        self.config.fault_injector.has_revocations() || !self.pending_drains.lock().is_empty()
    }

    /// Fire every lifecycle event due by virtual time `now`: revocation
    /// storms declared in the fault plan and scheduled graceful
    /// decommissions. Called by [`PrestoCluster::tick`] on the master
    /// clock and by the scan scheduler on the query clock, so storms and
    /// drains land mid-query too. Each event fires exactly once.
    pub fn poll_lifecycle(&self, now: Duration) {
        let injector = &self.config.fault_injector;
        if injector.has_revocations() {
            for class in injector.revocations_due(now) {
                self.revoke_class(&class);
            }
        }
        let due: Vec<u32> = {
            let mut drains = self.pending_drains.lock();
            if drains.is_empty() {
                Vec::new()
            } else {
                let mut due = Vec::new();
                drains.retain(|&(at, id)| {
                    let fire = now >= at;
                    if fire {
                        due.push(id);
                    }
                    !fire
                });
                due
            }
        };
        for id in due {
            // the worker may already be gone (revoked, reaped) — fine
            let _ = self.decommission_worker(id);
        }
    }

    /// Copy a departing worker's fragment-cache entries to each entry's
    /// consistent-hash successor among `survivors` — the owner a
    /// survivors-only ring assigns, i.e. exactly where the affinity
    /// scheduler will send the split next. Entries iterate in key order,
    /// so any LRU evictions the copies cause downstream are deterministic.
    /// The source cache stays in place — the draining worker may still
    /// serve grace-period tasks from it — and dies with the worker at reap
    /// time.
    fn migrate_caches(&self, from: u32, survivors: &[u32]) {
        if survivors.is_empty() {
            return;
        }
        let ring = HashRing::with_workers(
            self.config.ring_seed,
            self.config.ring_vnodes,
            survivors.iter().copied(),
        );
        let caches = self.fragment_caches.read();
        let Some(source) = caches.get(&from) else { return };
        let mut migrated = 0u64;
        for (key, pages) in source.entries() {
            let Some(owner) = ring.owner(&key.split_identity) else { continue };
            if let Some(successor) = caches.get(&owner) {
                successor.put_shared(key, pages);
                migrated += 1;
            }
        }
        drop(caches);
        if migrated > 0 {
            self.metrics.add(names::CLUSTER_CACHE_ENTRIES_MIGRATED, migrated);
        }
    }

    /// Advance worker state machines; reap terminated workers (counted as
    /// `cluster.workers_decommissioned` — only the polite path reaches
    /// `Terminated`). Fires due lifecycle events first. Returns the number
    /// of live workers remaining.
    pub fn tick(&self) -> usize {
        self.poll_lifecycle(self.clock.now());
        // lock order: fragment_caches before workers (see expand_class)
        let mut caches = self.fragment_caches.write();
        let mut workers = self.workers.write();
        for w in workers.iter() {
            w.tick();
        }
        let mut decommissioned = 0u64;
        let mut reaped: Vec<Arc<Worker>> = Vec::new();
        workers.retain(|w| {
            let live = w.state() != WorkerState::Terminated;
            if !live {
                // a terminated worker takes its in-memory caches with it;
                // anything worth keeping was migrated when the drain began
                caches.remove(&w.id);
                decommissioned += 1;
                reaped.push(w.clone());
            }
            live
        });
        drop(caches);
        let remaining = workers.len();
        let ring_should_hold: Vec<u32> =
            workers.iter().filter(|w| w.state() == WorkerState::Active).map(|w| w.id).collect();
        drop(workers);
        self.reconcile_ring(&ring_should_hold);
        if decommissioned > 0 {
            self.metrics.add(names::CLUSTER_WORKERS_DECOMMISSIONED, decommissioned);
        }
        // reaped workers keep a terminal row in system.runtime.workers
        for w in reaped {
            self.telemetry.record_worker(WorkerRow {
                worker_id: w.id,
                class: w.class().to_string(),
                lifecycle: lifecycle_str(WorkerLifecycle::Decommissioned).to_string(),
                active_tasks: 0,
                completed_tasks: w.completed_tasks() as u64,
                busy_pct: 0,
            });
        }
        self.sample_telemetry();
        remaining
    }

    /// Reconcile ring membership with the set of workers that should hold
    /// ring positions (state `Active`). The lifecycle hooks (expand, drain,
    /// revoke) update the ring eagerly; this catches the paths that bypass
    /// them — a crashed worker detected mid-query, a revoked worker
    /// rejoining through probation. Called with no other cluster lock held.
    fn reconcile_ring(&self, should_hold: &[u32]) {
        let current = self.ring.read().workers();
        for id in &current {
            if !should_hold.contains(id) {
                self.ring.write().remove(*id);
                if let Some(dist) = &self.dist_cache {
                    // bypassed the graceful path ⇒ its shard is gone
                    dist.worker_removed(*id, false);
                }
            }
        }
        for id in should_hold {
            if !current.contains(id) {
                self.ring.write().insert(*id);
                if let Some(dist) = &self.dist_cache {
                    dist.worker_joined(*id);
                }
            }
        }
    }

    /// The shared consistent-hash ring (scheduler + distributed cache).
    pub fn ring(&self) -> &Arc<RwLock<HashRing>> {
        &self.ring
    }

    /// The cluster-wide tiered cache, when configured.
    pub fn distributed_cache(&self) -> Option<&DistributedCache> {
        self.dist_cache.as_ref()
    }

    /// Canonical FNV fold of every cache layer: per-worker fragment caches
    /// (in worker-id order) and the distributed tiers. Bit-identical across
    /// same-seed runs — the revocation-storm determinism check folds this
    /// into the run digest.
    pub fn cache_digest(&self) -> u64 {
        let mut h = Fnv::new();
        let caches = self.fragment_caches.read();
        h.write(caches.len() as u64);
        for (worker, cache) in caches.iter() {
            h.write(u64::from(*worker));
            h.write(cache.digest());
        }
        drop(caches);
        if let Some(dist) = &self.dist_cache {
            h.write(dist.digest());
        }
        h.finish()
    }

    /// Take one cluster-wide telemetry snapshot at the current virtual
    /// instant: per-worker busy fraction over the window since the last
    /// snapshot, queue depth, memory-pool utilization, fragment-cache hit
    /// rate, and one `system.runtime.workers` row per live worker.
    fn sample_telemetry(&self) {
        let now = self.clock.now();
        let now_us = u64::try_from(now.as_micros()).unwrap_or(u64::MAX);
        let workers = self.workers();
        let mut sampler = self.sampler.lock();
        let elapsed = now_us.saturating_sub(sampler.last_at_us);
        if elapsed == 0 {
            // same virtual instant as the last snapshot: there is no
            // window to attribute busy time to, so resampling would only
            // duplicate buckets
            return;
        }
        sampler.last_at_us = now_us;
        let mut fleet_sum = 0u64;
        let mut active = 0u64;
        let mut rows = Vec::with_capacity(workers.len());
        for w in &workers {
            let total = w.busy_micros();
            let prev = sampler.last_busy.insert(w.id, total).unwrap_or(0);
            let busy_pct = (total.saturating_sub(prev).saturating_mul(100) / elapsed).min(100);
            let lifecycle = w.lifecycle();
            if lifecycle == WorkerLifecycle::Active {
                fleet_sum += busy_pct;
                active += 1;
            }
            rows.push(WorkerRow {
                worker_id: w.id,
                class: w.class().to_string(),
                lifecycle: lifecycle_str(lifecycle).to_string(),
                active_tasks: w.active_tasks() as u64,
                completed_tasks: w.completed_tasks() as u64,
                busy_pct,
            });
        }
        sampler.last_busy.retain(|id, _| workers.iter().any(|w| w.id == *id));
        drop(sampler);
        for row in rows {
            self.telemetry.sample_for(names::TS_WORKER_BUSY_PCT, row.worker_id, now, row.busy_pct);
            self.telemetry.record_worker(row);
        }
        let fleet_busy = fleet_sum.checked_div(active).unwrap_or(0);
        self.telemetry.sample(names::TS_FLEET_BUSY_PCT, now, fleet_busy);
        self.telemetry.set_gauge(names::GAUGE_FLEET_BUSY_PCT, fleet_busy);
        self.telemetry.set_gauge(names::GAUGE_ACTIVE_WORKERS, active);
        let resources = self.engine.resources();
        let depth = resources.admission().queued() as u64;
        self.telemetry.sample(names::TS_QUEUE_DEPTH, now, depth);
        let pool = resources.pool();
        let mem_pct = match pool.budget() {
            Some(budget) if budget > 0 => {
                ((pool.used() as u64).saturating_mul(100) / budget as u64).min(100)
            }
            _ => 0,
        };
        self.telemetry.sample(names::TS_MEMORY_UTIL_PCT, now, mem_pct);
        let hits = self.metrics.get(names::FRC_HITS);
        let lookups = hits + self.metrics.get(names::FRC_MISSES);
        let hit_pct = hits.saturating_mul(100).checked_div(lookups).unwrap_or(0);
        self.telemetry.sample(names::TS_CACHE_HIT_PCT, now, hit_pct);
        if let Some(dist) = &self.dist_cache {
            let dist_hits = self.metrics.get(names::DIST_DATA_HITS);
            let dist_lookups = dist_hits + self.metrics.get(names::DIST_DATA_MISSES);
            let dist_pct = dist_hits.saturating_mul(100).checked_div(dist_lookups).unwrap_or(0);
            self.telemetry.sample(names::TS_DIST_CACHE_HIT_PCT, now, dist_pct);
            self.telemetry.set_gauge(names::GAUGE_DIST_CACHE_ENTRIES, dist.len() as u64);
        }
        self.telemetry.note_snapshot();
    }

    /// Enter/exit maintenance (drain) mode.
    pub fn set_maintenance(&self, on: bool) {
        self.maintenance.store(on, Ordering::Relaxed);
    }

    /// Is the cluster refusing new queries?
    pub fn in_maintenance(&self) -> bool {
        self.maintenance.load(Ordering::Relaxed)
    }

    /// Queries executed so far.
    pub fn queries_started(&self) -> u64 {
        self.queries_started.load(Ordering::Relaxed)
    }

    /// Execute a query with distributed scan fragments.
    ///
    /// Queries pass the coordinator's admission queue first; the RAII
    /// permit is held for the query's whole distributed run.
    ///
    /// Refusals are not failures: a maintenance drain or a full admission
    /// queue turns the query away *before it starts* and counts as
    /// `cluster.queries_rejected`, so `cluster.queries_failed` is reserved
    /// for queries that actually ran and died. The maintenance refusal is
    /// [`PrestoError::ClusterUnavailable`] — retryable, so a gateway that
    /// raced the drain can fail the query over to a healthy cluster.
    pub fn execute(&self, sql: &str, session: &Session) -> Result<QueryResult> {
        let clock = self.clock.clone();
        self.execute_clocked(sql, session, &clock)
    }

    /// [`PrestoCluster::execute`] on an explicit virtual clock.
    ///
    /// A multi-query simulator interleaves queries in virtual time by
    /// giving each in-flight query a [`SimClock::fork`] of its master
    /// timeline: the query's task waits and retry backoffs advance the
    /// fork only, so two overlapping queries no longer serialize each
    /// other's virtual costs through the cluster-wide clock. Admission
    /// accounting still runs on the cluster clock; service time is a pure
    /// function of the plan, so forked runs stay deterministic.
    pub fn execute_clocked(
        &self,
        sql: &str,
        session: &Session,
        clock: &SimClock,
    ) -> Result<QueryResult> {
        if self.in_maintenance() {
            self.metrics.incr(names::CLUSTER_QUERIES_REJECTED);
            return Err(PrestoError::ClusterUnavailable(format!(
                "cluster {} is in maintenance",
                self.name
            )));
        }
        let query_metrics = CounterSet::new();
        let permit = match self.engine.resources().admission().admit(
            &session.user,
            session.priority,
            &query_metrics,
        ) {
            Ok(permit) => permit,
            Err(e) => {
                self.metrics.incr(names::CLUSTER_QUERIES_REJECTED);
                return Err(e);
            }
        };
        let query_id = self.queries_started.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.incr(names::CLUSTER_QUERIES);
        // The query trace runs on the query's virtual clock, so span
        // timestamps line up with task waits and retry backoffs.
        let trace = Trace::new(clock.clone());
        let root = trace.begin(SpanKind::Query, "query", None);
        let watch = SimStopwatch::start(clock);
        let result =
            self.execute_inner(sql, session, query_id, &query_metrics, &trace, root, clock);
        drop(permit);
        let latency = watch.elapsed();
        trace.end(root);
        let failed = result.is_err();
        let peak_memory = query_metrics.get(names::MEMORY_RESERVED_PEAK) as usize;
        self.telemetry.record_query(QueryRow {
            query_id,
            state: if failed { "failed" } else { "finished" }.to_string(),
            latency_us: u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
            peak_memory_bytes: peak_memory as u64,
            peak_busy_pct: self.telemetry.series().get(names::TS_FLEET_BUSY_PCT).peak(),
            snapshots: self.telemetry.snapshots(),
        });
        match result {
            Ok(mut ok) => {
                self.histograms
                    .record(names::HIST_CLUSTER_QUERY_LATENCY_US, latency.as_micros() as u64);
                ok.info = QueryInfo { trace, latency, peak_memory };
                Ok(ok)
            }
            Err(e) => {
                self.metrics.incr(names::CLUSTER_QUERIES_FAILED);
                trace.set_attr(root, "error", 1);
                Err(e)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_inner(
        &self,
        sql: &str,
        session: &Session,
        query_id: u64,
        query_metrics: &CounterSet,
        trace: &Trace,
        root: SpanId,
        clock: &SimClock,
    ) -> Result<QueryResult> {
        let fragments = self.engine.fragment(sql, session)?;
        let schema = fragments[0].plan.output_schema()?;

        // Execute leaf (scan) fragments with splits spread across workers.
        let mut exchanges: Vec<(u32, Vec<Page>)> = Vec::new();
        for fragment in &fragments[1..] {
            let stage =
                trace.begin(SpanKind::Stage, format!("fragment[{}]", fragment.id), Some(root));
            let LogicalPlan::TableScan { catalog, schema: sch, table, request, .. } =
                &fragment.plan
            else {
                // non-scan fragment (not produced by the current fragmenter)
                let pages = self.engine.execute_fragment_traced(
                    fragment,
                    vec![],
                    session,
                    query_metrics,
                    trace,
                    Some(stage),
                )?;
                trace.end(stage);
                exchanges.push((fragment.id, pages));
                continue;
            };
            let connector = self.engine.catalogs().get(catalog)?;
            let splits = match connector.splits(sch, table, request) {
                Ok(splits) => splits,
                Err(e) => {
                    trace.end(stage);
                    return Err(e);
                }
            };
            // distinct splits, not attempts: retries do not inflate the tally
            self.metrics.add(names::CLUSTER_TASKS, splits.len() as u64);
            let pages = self.run_scan_fragment(
                fragment,
                &splits,
                &connector,
                request,
                session.priority,
                query_id,
                trace,
                stage,
                clock,
            );
            trace.end(stage);
            let pages = self.deliver_exchange(fragment.id, pages?, clock)?;
            exchanges.push((fragment.id, pages));
        }

        // Root fragment runs on the coordinator.
        let stage =
            trace.begin(SpanKind::Stage, format!("fragment[{}]", fragments[0].id), Some(root));
        let pages = self.engine.execute_fragment_traced(
            &fragments[0],
            exchanges,
            session,
            query_metrics,
            trace,
            Some(stage),
        );
        trace.end(stage);
        Ok(QueryResult {
            schema,
            pages: pages?,
            metrics: query_metrics.clone(),
            info: QueryInfo::empty(),
        })
    }

    /// Run one scan fragment's splits across the eligible workers as a
    /// serial discrete-event simulation, recovering from retryable task
    /// failures (§XII) and speculating on stragglers.
    ///
    /// Split assignment: affinity scheduling (§VII) routes each split to a
    /// stable worker via rendezvous hashing; otherwise splits round-robin.
    /// Each worker drains its queue serially in virtual time; attempt
    /// completions come off an event heap ordered by (virtual time, launch
    /// sequence), so every schedule — retries with exponential backoff,
    /// straggler duplicates, first-result-wins races — is deterministic. A
    /// worker that crashed or got blacklisted loses its fragment result
    /// cache, like any worker-side memory.
    #[allow(clippy::too_many_arguments)]
    fn run_scan_fragment(
        &self,
        fragment: &PlanFragment,
        splits: &[ConnectorSplit],
        connector: &Arc<dyn Connector>,
        request: &ScanRequest,
        priority: QueryPriority,
        query_id: u64,
        trace: &Trace,
        stage: SpanId,
        clock: &SimClock,
    ) -> Result<Vec<Page>> {
        let workers = self.eligible_workers(priority);
        if workers.is_empty() {
            return Err(self.no_active_workers());
        }
        // Pushdowns are part of the fragment identity: two queries only
        // share cached results when their pushed-down scans agree.
        let plan_fingerprint = fingerprint(&format!("{:?}", fragment.plan));
        // Seed the straggler yardstick from the last run of this exact
        // fragment, so a single-wave fragment (fewer splits than
        // `min_completed`) can still judge its very first straggler. The
        // seed is `min_completed` copies of the *median* historical
        // runtime, not the raw histogram: a straggler that completed last
        // run would otherwise drag the p99 yardstick up to its own runtime
        // and grant every future straggler amnesty.
        let spec = &self.config.speculation;
        let sibling_us = if spec.enabled && spec.seed_from_history {
            match self.runtime_history.read().get(&plan_fingerprint) {
                Some(history) if history.count() > 0 => {
                    let typical = history.quantile(0.5);
                    let mut seeded = Histogram::new();
                    for _ in 0..spec.min_completed.max(1) {
                        seeded.record(typical);
                    }
                    seeded
                }
                _ => Histogram::new(),
            }
        } else {
            Histogram::new()
        };
        if sibling_us.count() > 0 {
            self.metrics.incr(names::CLUSTER_SPECULATION_SEEDED);
            trace.set_attr(stage, "seeded_runtimes", sibling_us.count());
        }
        let mut sched = ScanScheduler {
            cluster: self,
            clock,
            fragment,
            splits,
            connector,
            request,
            priority,
            query_id,
            trace,
            stage,
            plan_fingerprint,
            queues: vec![VecDeque::new(); workers.len()],
            busy: vec![None; workers.len()],
            workers,
            attempts: Vec::new(),
            live: vec![Vec::new(); splits.len()],
            results: vec![None; splits.len()],
            failures: vec![0; splits.len()],
            done: 0,
            heap: BinaryHeap::new(),
            seq: 0,
            sibling_us,
            fresh_us: Histogram::new(),
        };
        sched.run()?;
        if sched.fresh_us.count() > 0 {
            // Only *observed* runtimes feed the history — seeded values
            // never re-enter, so stale estimates age out after one run.
            self.runtime_history.write().insert(plan_fingerprint, sched.fresh_us.clone());
        }

        // splits stay ordered so results are deterministic
        let mut pages = Vec::new();
        for (i, slot) in sched.results.into_iter().enumerate() {
            match slot {
                Some(p) => pages.extend(p),
                None => {
                    return Err(PrestoError::Internal(format!(
                        "split {i} never produced a result on cluster {}",
                        self.name
                    )))
                }
            }
        }
        Ok(pages)
    }

    fn no_active_workers(&self) -> PrestoError {
        PrestoError::ClusterUnavailable(format!("cluster {} has no active workers", self.name))
    }

    /// Deliver a finished scan fragment's pages across the simulated
    /// exchange channel. A mid-stream tear fails the transfer with a
    /// retryable error; the producer still buffers the pages, so the
    /// coordinator retries the whole delivery (counted as
    /// `cluster.exchange_retries`) under the split attempt cap with
    /// virtual-time backoff. With recovery off the first tear is fatal.
    fn deliver_exchange(
        &self,
        fragment: u32,
        pages: Vec<Page>,
        clock: &SimClock,
    ) -> Result<Vec<Page>> {
        let injector = &self.config.fault_injector;
        if !injector.is_enabled() {
            return Ok(pages);
        }
        let mut backoff = self.config.retry_backoff_base;
        let mut attempt = 1u64;
        loop {
            match presto_exec::exchange::deliver(injector, clock, fragment, &pages, attempt) {
                Ok(_stalled) => return Ok(pages),
                Err(e)
                    if self.config.fault_recovery
                        && e.is_retryable()
                        && attempt < u64::from(self.config.max_split_attempts.max(1)) =>
                {
                    self.metrics.incr(names::CLUSTER_EXCHANGE_RETRIES);
                    self.histograms
                        .record(names::HIST_CLUSTER_RETRY_BACKOFF_US, backoff.as_micros() as u64);
                    clock.advance(backoff);
                    backoff = backoff.saturating_mul(2);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One split on one worker: task guard, fragment-cache lookup, connector
    /// scan with mid-stream fault hooks. Output from a worker that crashed
    /// while the task was in flight is discarded — a dead node's partial
    /// results cannot be trusted. Cache hits skip the connector entirely,
    /// so mid-stream scan faults never fire for them.
    #[allow(clippy::too_many_arguments)]
    fn execute_one_split(
        &self,
        worker: &Arc<Worker>,
        split: &ConnectorSplit,
        connector: &Arc<dyn Connector>,
        request: &ScanRequest,
        plan_fingerprint: u64,
        cache: Option<&FragmentResultCache>,
        hooks: &ScanHooks,
    ) -> Result<Vec<Page>> {
        let _task = worker.begin_task()?;
        let key = FragmentKey { plan_fingerprint, split_identity: split_identity(&split.payload) };
        let cacheable = cache.is_some() && is_immutable_split(&split.payload);
        if cacheable {
            if let Some(hit) = cache.and_then(|c| c.get(&key)) {
                return Ok(hit.as_ref().clone());
            }
        }
        let pages = connector.scan_split(split, request, hooks)?;
        if worker.state() == WorkerState::Crashed {
            return Err(worker_failed(worker.id, "crashed while the task was in flight"));
        }
        if cacheable {
            if let Some(c) = cache {
                c.put(key, pages.clone());
            }
        }
        Ok(pages)
    }
}

/// Scheduler event: an attempt reaching the end of its virtual duration,
/// or a wake-up to re-run dispatch once a retry backoff deadline arrives.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum SchedEvent {
    /// Attempt `.0` completes.
    Complete(usize),
    /// Nothing completes; just dispatch queued work.
    Wake,
}

/// One launched task attempt (original or speculative duplicate). The
/// outcome is computed eagerly at launch — legal because workers never
/// advance the shared clock — and consumed when the completion event fires,
/// so a cancelled loser's outcome is simply discarded.
struct Attempt {
    split: usize,
    /// Index into the scheduler's worker snapshot.
    worker: usize,
    speculative: bool,
    start: Duration,
    duration: Duration,
    span: SpanId,
    outcome: Option<Result<Vec<Page>>>,
    cancelled: bool,
}

/// A split waiting in a worker's queue; retries carry a backoff deadline.
#[derive(Clone)]
struct QueuedSplit {
    split: usize,
    not_before: Duration,
}

/// Serial discrete-event scheduler for one scan fragment: per-worker split
/// queues, an event heap keyed by (virtual time, launch sequence), local
/// sibling-runtime statistics for straggler detection, and
/// first-result-wins races between originals and speculative duplicates.
struct ScanScheduler<'a> {
    cluster: &'a PrestoCluster,
    /// The query's virtual timeline (a fork of the master clock when the
    /// cluster runs under a multi-query simulator).
    clock: &'a SimClock,
    fragment: &'a PlanFragment,
    splits: &'a [ConnectorSplit],
    connector: &'a Arc<dyn Connector>,
    request: &'a ScanRequest,
    priority: QueryPriority,
    /// Cluster-assigned query sequence, stamped onto telemetry task rows.
    query_id: u64,
    trace: &'a Trace,
    stage: SpanId,
    plan_fingerprint: u64,
    workers: Vec<Arc<Worker>>,
    queues: Vec<VecDeque<QueuedSplit>>,
    /// Per worker: the attempt currently running on it.
    busy: Vec<Option<usize>>,
    attempts: Vec<Attempt>,
    /// Per split: ids of attempts still in flight.
    live: Vec<Vec<usize>>,
    results: Vec<Option<Vec<Page>>>,
    /// Per split: failed attempts so far (the retry budget).
    failures: Vec<u32>,
    done: usize,
    heap: BinaryHeap<Reverse<(Duration, u64, SchedEvent)>>,
    seq: u64,
    /// Completed sibling runtimes (µs) — the straggler yardstick. May be
    /// pre-seeded from the cluster's per-fingerprint runtime history.
    sibling_us: Histogram,
    /// Runtimes observed *this* run only; merged back into the history so
    /// seeded estimates never compound across runs.
    fresh_us: Histogram,
}

impl ScanScheduler<'_> {
    fn run(&mut self) -> Result<()> {
        // Initial assignment: affinity or round-robin over the eligible
        // snapshot, same as the pre-speculation scheduler. The affinity
        // path builds one ring for the whole fragment — same seed, vnodes,
        // and membership rule as the cluster ring the distributed cache
        // consults, so placement and cache ownership agree by construction.
        let ring = self.cluster.config.affinity_scheduling.then(|| {
            HashRing::with_workers(
                self.cluster.config.ring_seed,
                self.cluster.config.ring_vnodes,
                self.workers.iter().map(|w| w.id),
            )
        });
        // Bytes this placement pass has already promised per worker, so a
        // burst of same-owner splits spills to successors instead of
        // stacking on one worker before any attempt starts.
        let mut assigned = vec![0u64; self.workers.len()];
        for i in 0..self.splits.len() {
            let w = match &ring {
                Some(ring) => {
                    // `workers` was checked non-empty by the caller; fall
                    // back to round-robin rather than panicking if that
                    // ever breaks.
                    let identity = split_identity(&self.splits[i].payload);
                    self.place_split(ring, &identity, &assigned).unwrap_or(i % self.workers.len())
                }
                None => i % self.workers.len(),
            };
            assigned[w] = assigned[w].saturating_add(SPLIT_MEMORY_ESTIMATE);
            self.queues[w].push_back(QueuedSplit { split: i, not_before: Duration::ZERO });
        }
        // Lifecycle events (revocation storms, scheduled drains) that are
        // already due must fire before the first wave launches.
        let poll_lifecycle = self.cluster.has_lifecycle_events();
        if poll_lifecycle {
            self.cluster.poll_lifecycle(self.clock.now());
        }
        self.dispatch(self.clock.now())?;
        while let Some(Reverse((at, _seq, event))) = self.heap.pop() {
            if self.done == self.splits.len() {
                break;
            }
            let now = self.clock.now();
            if at > now {
                self.clock.advance(at - now);
            }
            let now = self.clock.now();
            if poll_lifecycle {
                // a storm or drain whose instant just passed lands *inside*
                // this query: dispatch below reassigns the victims' queues
                self.cluster.poll_lifecycle(now);
            }
            if let SchedEvent::Complete(id) = event {
                self.complete(id, now)?;
            }
            self.dispatch(now)?;
            self.check_stragglers(now);
        }
        Ok(())
    }

    /// Start one attempt on an idle worker. The fault injector is consulted
    /// *before* touching the worker or the cache, so the task-level fault
    /// schedule stays a pure function of (seed, worker, per-worker task
    /// ordinal); injected task faults take zero virtual time, real scans
    /// cost base + per-row work + whatever mid-stream stalls were injected.
    fn start_attempt(&mut self, wi: usize, split: usize, speculative: bool, now: Duration) {
        let cluster = self.cluster;
        let worker = self.workers[wi].clone();
        // headroom accounting: held for the attempt's lifetime, released
        // exactly once on completion or cancellation
        worker.reserve_memory(SPLIT_MEMORY_ESTIMATE);
        let span = self.trace.begin(SpanKind::Task, format!("split[{split}]"), Some(self.stage));
        self.trace.set_attr(span, "worker", u64::from(worker.id));
        if speculative {
            self.trace.set_attr(span, "speculative", 1);
        }
        let injector = &cluster.config.fault_injector;
        let task = injector.begin_task(worker.id, self.clock.now());
        let (outcome, duration) = match task.decision {
            FaultDecision::CrashWorker => {
                // abrupt node death: this attempt is lost instantly and the
                // worker's still-queued splits get reassigned by dispatch
                worker.crash();
                (Err(worker_failed(worker.id, "crashed (injected)")), Duration::ZERO)
            }
            FaultDecision::FailTask => {
                (Err(worker_failed(worker.id, "dropped the task (injected fault)")), Duration::ZERO)
            }
            FaultDecision::None => {
                let cache = cluster.fragment_caches.read().get(&worker.id).cloned();
                let hooks = ScanHooks::for_task(injector.clone(), worker.id, task.seq);
                let splits = self.splits;
                let connector = self.connector;
                let request = self.request;
                let plan_fingerprint = self.plan_fingerprint;
                let fragment_id = self.fragment.id;
                // a panicking scan task must fail its query, not the whole
                // coordinator loop
                let result = catch_unwind(AssertUnwindSafe(|| {
                    cluster.execute_one_split(
                        &worker,
                        &splits[split],
                        connector,
                        request,
                        plan_fingerprint,
                        cache.as_ref(),
                        &hooks,
                    )
                }))
                .unwrap_or_else(|_| {
                    Err(PrestoError::Internal(format!(
                        "scan task panicked on cluster {} (fragment {})",
                        cluster.name, fragment_id
                    )))
                });
                let rows: u64 = result
                    .as_ref()
                    .map(|pages| pages.iter().map(|p| p.positions() as u64).sum())
                    .unwrap_or(0);
                let duration =
                    SCAN_TASK_BASE + Duration::from_nanos(rows * SCAN_ROW_NANOS) + hooks.stalled();
                (result, duration)
            }
        };
        let id = self.attempts.len();
        self.attempts.push(Attempt {
            split,
            worker: wi,
            speculative,
            start: now,
            duration,
            span,
            outcome: Some(outcome),
            cancelled: false,
        });
        self.busy[wi] = Some(id);
        self.live[split].push(id);
        self.push_event(now + duration, SchedEvent::Complete(id));
    }

    /// Process one attempt completion: the first successful attempt per
    /// split wins and cancels any live duplicate; a retryable failure burns
    /// one unit of the split's attempt budget and schedules a backoff
    /// retry (unless a duplicate is still running); a terminal failure —
    /// non-retryable, recovery off, or budget exhausted — cancels every
    /// live attempt and fails the fragment.
    fn complete(&mut self, id: usize, now: Duration) -> Result<()> {
        if self.attempts[id].cancelled {
            return Ok(());
        }
        let Some(outcome) = self.attempts[id].outcome.take() else {
            return Ok(());
        };
        let (split, wi, speculative, duration, span) = {
            let a = &self.attempts[id];
            (a.split, a.worker, a.speculative, a.duration, a.span)
        };
        self.busy[wi] = None;
        self.live[split].retain(|&x| x != id);
        let worker = self.workers[wi].clone();
        worker.release_memory(SPLIT_MEMORY_ESTIMATE);
        // The outcome was computed eagerly at launch; if the worker was
        // revoked while the attempt was notionally in flight, its result
        // cannot be trusted — convert to the retryable infrastructure
        // failure so the split re-runs on a survivor.
        let outcome = match outcome {
            Ok(_) if worker.state() == WorkerState::Crashed => {
                Err(worker_failed(worker.id, "was revoked while the task was in flight"))
            }
            other => other,
        };
        match outcome {
            Ok(pages) => {
                worker.record_task_success();
                // the attempt occupied the worker's virtual timeline whether
                // or not it wins the race below — busy time accrues here
                worker.add_busy_micros(duration.as_micros() as u64);
                let rows: u64 = pages.iter().map(|p| p.positions() as u64).sum();
                self.trace.set_attr(span, "rows_out", rows);
                self.trace.end(span);
                if self.results[split].is_some() {
                    // the race was already decided (defensive: losers are
                    // normally cancelled before their event fires)
                    if speculative {
                        self.cluster.metrics.incr(names::CLUSTER_SPECULATIVE_WASTED);
                    }
                    return Ok(());
                }
                let us = duration.as_micros() as u64;
                self.sibling_us.record(us);
                self.fresh_us.record(us);
                self.cluster.histograms.record(names::HIST_CLUSTER_TASK_RUNTIME_US, us);
                let task_id = self.cluster.next_task_id.fetch_add(1, Ordering::Relaxed) + 1;
                self.cluster.telemetry.record_task(TaskRow {
                    task_id,
                    query_id: self.query_id,
                    worker_id: worker.id,
                    state: "finished".to_string(),
                    runtime_us: us,
                });
                if speculative {
                    self.cluster.metrics.incr(names::CLUSTER_SPECULATIVE_WINS);
                }
                self.results[split] = Some(pages);
                self.done += 1;
                // first result wins: cancel the live loser(s) of the race
                for loser in self.live[split].clone() {
                    self.cancel_attempt(loser);
                }
                Ok(())
            }
            Err(e) => {
                self.trace.set_attr(span, "error", 1);
                self.trace.end(span);
                if e.is_retryable() {
                    self.cluster.metrics.incr(names::CLUSTER_WORKER_FAILURES);
                }
                if worker.record_task_failure(self.cluster.config.blacklist_after) {
                    self.cluster.metrics.incr(names::CLUSTER_BLACKLISTED_WORKERS);
                }
                if worker.state() == WorkerState::Crashed || worker.is_blacklisted() {
                    // a dead or quarantined worker takes its in-memory
                    // fragment cache with it — and leaves the ring, so the
                    // distributed cache drops (not migrates) its shard
                    self.cluster.fragment_caches.write().remove(&worker.id);
                    self.cluster.ring.write().remove(worker.id);
                    if let Some(dist) = &self.cluster.dist_cache {
                        dist.worker_removed(worker.id, false);
                    }
                }
                if !(self.cluster.config.fault_recovery && e.is_retryable()) {
                    self.fail_all();
                    return Err(e);
                }
                if speculative {
                    self.cluster.metrics.incr(names::CLUSTER_SPECULATIVE_WASTED);
                }
                if self.results[split].is_some() {
                    return Ok(());
                }
                self.failures[split] += 1;
                if !self.live[split].is_empty() {
                    // a duplicate of this split is still running; it will
                    // schedule the retry itself if it also fails
                    return Ok(());
                }
                if self.failures[split] >= self.cluster.config.max_split_attempts {
                    let err = attempts_exhausted(split, self.cluster.config.max_split_attempts, &e);
                    self.fail_all();
                    return Err(err);
                }
                self.cluster.metrics.incr(names::CLUSTER_SPLIT_RETRIES);
                let backoff = self
                    .cluster
                    .config
                    .retry_backoff_base
                    .saturating_mul(2u32.saturating_pow(self.failures[split] - 1));
                self.cluster
                    .histograms
                    .record(names::HIST_CLUSTER_RETRY_BACKOFF_US, backoff.as_micros() as u64);
                let target = self.choose_worker()?;
                self.queues[target].push_back(QueuedSplit { split, not_before: now + backoff });
                self.push_event(now + backoff, SchedEvent::Wake);
                Ok(())
            }
        }
    }

    /// Start queued work on every idle eligible worker. A worker that can
    /// no longer serve this query (crashed, draining, quarantined) loses
    /// its queue: the never-started splits move silently to eligible
    /// workers — they are reassignments, not retries.
    fn dispatch(&mut self, now: Duration) -> Result<()> {
        let mut displaced: Vec<QueuedSplit> = Vec::new();
        for wi in 0..self.workers.len() {
            if !self.workers[wi].accepts_tasks_for(self.priority) && !self.queues[wi].is_empty() {
                if self.workers[wi].lifecycle() == WorkerLifecycle::Draining {
                    // a polite handoff, not a crash reassignment
                    self.cluster
                        .metrics
                        .add(names::CLUSTER_SPLITS_HANDED_OFF, self.queues[wi].len() as u64);
                }
                displaced.extend(self.queues[wi].drain(..));
            }
        }
        for q in displaced {
            if self.results[q.split].is_some() {
                continue;
            }
            let target = self.choose_worker()?;
            self.queues[target].push_back(q);
        }
        for wi in 0..self.workers.len() {
            while self.busy[wi].is_none() && self.workers[wi].accepts_tasks_for(self.priority) {
                let Some(front) = self.queues[wi].front() else { break };
                if front.not_before > now {
                    // backoff deadline in the future: wake up then
                    let at = front.not_before;
                    self.push_event(at, SchedEvent::Wake);
                    break;
                }
                let Some(q) = self.queues[wi].pop_front() else { break };
                if self.results[q.split].is_some() {
                    continue;
                }
                self.start_attempt(wi, q.split, false, now);
            }
        }
        Ok(())
    }

    /// Straggler detection: once `min_completed` siblings have finished,
    /// any sole live non-speculative attempt whose elapsed virtual time
    /// *strictly* exceeds the configured quantile of completed sibling
    /// runtimes gets one duplicate on a different idle eligible worker.
    /// Every launch is recorded as a `Speculate` span and counted.
    fn check_stragglers(&mut self, now: Duration) {
        let spec = &self.cluster.config.speculation;
        if !spec.enabled
            || self.done == self.splits.len()
            || self.sibling_us.count() < spec.min_completed.max(1)
        {
            return;
        }
        let threshold_us = self.sibling_us.quantile(spec.quantile);
        for split in 0..self.splits.len() {
            // one live original and no duplicate yet
            if self.results[split].is_some() || self.live[split].len() != 1 {
                continue;
            }
            let id = self.live[split][0];
            if self.attempts[id].speculative {
                continue;
            }
            let from = self.attempts[id].worker;
            let elapsed_us = now.saturating_sub(self.attempts[id].start).as_micros() as u64;
            if elapsed_us <= threshold_us {
                // Not a straggler *yet*: revisit at the instant it would
                // cross the yardstick. Without this wake-up a quiet tail is
                // never re-judged — a two-split fragment has exactly one
                // sibling completion to piggyback on, and it lands before
                // the straggler's elapsed time exceeds the threshold.
                self.push_event(
                    self.attempts[id].start + Duration::from_micros(threshold_us + 1),
                    SchedEvent::Wake,
                );
                continue;
            }
            // an idle eligible worker that is not the straggler's own
            let Some(to) = (0..self.workers.len())
                .filter(|&w| {
                    w != from
                        && self.busy[w].is_none()
                        && self.queues[w].is_empty()
                        && self.workers[w].accepts_tasks_for(self.priority)
                })
                .min_by_key(|&w| self.workers[w].id)
            else {
                continue;
            };
            self.cluster.metrics.incr(names::CLUSTER_SPECULATIVE_LAUNCHES);
            let span =
                self.trace.begin(SpanKind::Speculate, format!("split[{split}]"), Some(self.stage));
            self.trace.set_attr(span, "from_worker", u64::from(self.workers[from].id));
            self.trace.set_attr(span, "to_worker", u64::from(self.workers[to].id));
            self.trace.set_attr(span, "elapsed_us", elapsed_us);
            self.trace.set_attr(span, "threshold_us", threshold_us);
            self.trace.end(span);
            self.start_attempt(to, split, true, now);
        }
    }

    /// Cancel a live attempt: close its span, free its worker, and discard
    /// its eagerly-computed outcome. Cancelled duplicates count as wasted
    /// speculative work.
    fn cancel_attempt(&mut self, id: usize) {
        if self.attempts[id].cancelled || self.attempts[id].outcome.is_none() {
            return;
        }
        self.attempts[id].cancelled = true;
        self.attempts[id].outcome = None;
        self.workers[self.attempts[id].worker].release_memory(SPLIT_MEMORY_ESTIMATE);
        self.trace.set_attr(self.attempts[id].span, "cancelled", 1);
        self.trace.end(self.attempts[id].span);
        if self.attempts[id].speculative {
            self.cluster.metrics.incr(names::CLUSTER_SPECULATIVE_WASTED);
        }
        let wi = self.attempts[id].worker;
        if self.busy[wi] == Some(id) {
            self.busy[wi] = None;
        }
        let split = self.attempts[id].split;
        self.live[split].retain(|&x| x != id);
    }

    /// Terminal failure: cancel everything still in flight so their spans
    /// close before the fragment's error propagates.
    fn fail_all(&mut self) {
        let ids: Vec<usize> = self.live.iter().flatten().copied().collect();
        for id in ids {
            self.cancel_attempt(id);
        }
    }

    /// Affinity placement with the memory-headroom score folded in: the
    /// split goes to its ring owner unless the owner's headroom (per-worker
    /// budget minus live reservations minus what this pass already
    /// promised) cannot fit another split — then the ring successors are
    /// walked in order and the first with room wins (counted as
    /// `cluster.splits_diverted`). With no budget configured, or when no
    /// worker has room, the primary owner gets the split anyway: headroom
    /// shapes placement, the cluster-wide memory pool enforces.
    fn place_split(&self, ring: &HashRing, identity: &str, assigned: &[u64]) -> Option<usize> {
        let owners = ring.successors(identity, self.workers.len());
        let index_of = |id: u32| self.workers.iter().position(|w| w.id == id);
        let Some(budget) = self.cluster.config.worker_memory_bytes else {
            return owners.first().copied().and_then(index_of);
        };
        let mut primary = None;
        for owner in owners {
            let Some(wi) = index_of(owner) else { continue };
            if primary.is_none() {
                primary = Some(wi);
            }
            let promised = self.workers[wi]
                .memory_reserved()
                .saturating_add(assigned[wi])
                .saturating_add(SPLIT_MEMORY_ESTIMATE);
            if promised <= budget {
                if primary != Some(wi) {
                    self.cluster.metrics.incr(names::CLUSTER_SPLITS_DIVERTED);
                }
                return Some(wi);
            }
        }
        primary
    }

    /// Deterministic target for a retried or displaced split: the eligible
    /// worker with the least pending work, ties broken by lowest id.
    fn choose_worker(&self) -> Result<usize> {
        (0..self.workers.len())
            .filter(|&w| self.workers[w].accepts_tasks_for(self.priority))
            .min_by_key(|&w| {
                (self.queues[w].len() + usize::from(self.busy[w].is_some()), self.workers[w].id)
            })
            .ok_or_else(|| self.cluster.no_active_workers())
    }

    fn push_event(&mut self, at: Duration, event: SchedEvent) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, event)));
    }
}

/// A retryable infrastructure failure attributed to one worker.
fn worker_failed(worker_id: u32, what: &str) -> PrestoError {
    PrestoError::WorkerFailed { worker_id, message: format!("worker {worker_id} {what}") }
}

/// Wrap the last retryable error once a split's attempt budget is spent.
/// The wrapper keeps the retryable *class*: this coordinator is giving up,
/// but the gateway may still fail the whole query over to another cluster,
/// where the split gets a fresh budget.
fn attempts_exhausted(split: usize, cap: u32, last: &PrestoError) -> PrestoError {
    let context = format!("split {split} failed {cap} attempts, giving up: {last}");
    match last {
        PrestoError::WorkerFailed { worker_id, .. } => {
            PrestoError::WorkerFailed { worker_id: *worker_id, message: context }
        }
        _ => PrestoError::ClusterUnavailable(context),
    }
}

/// Stable identity of a split, for affinity hashing and cache keys.
fn split_identity(payload: &SplitPayload) -> String {
    match payload {
        SplitPayload::HiveFile { path, .. } => format!("hive:{path}"),
        SplitPayload::Memory { chunk } => format!("memory:{chunk}"),
        SplitPayload::MySql => "mysql".to_string(),
        SplitPayload::Segments { start, end } => format!("segments:{start}-{end}"),
        SplitPayload::Tpch { start, count } => format!("tpch:{start}+{count}"),
        SplitPayload::System => "system".to_string(),
    }
}

/// Only splits over immutable data may be result-cached: warehouse files
/// never change in place, generated TPC-H data is deterministic. Memory and
/// MySQL tables mutate; real-time segments keep arriving — and `system`
/// tables are live telemetry, different on every snapshot.
fn is_immutable_split(payload: &SplitPayload) -> bool {
    matches!(payload, SplitPayload::HiveFile { .. } | SplitPayload::Tpch { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Block, DataType, Field, Schema, Value};
    use presto_connectors::memory::MemoryConnector;

    fn cluster_with(config: ClusterConfig) -> Arc<PrestoCluster> {
        let engine = PrestoEngine::new();
        let memory = MemoryConnector::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("city", DataType::Varchar),
        ])
        .unwrap();
        // several pages → several splits → distributed scan
        let pages: Vec<Page> = (0..8)
            .map(|p| {
                Page::new(vec![
                    Block::bigint((p * 10..p * 10 + 10).collect()),
                    Block::varchar(&["sf"; 10]),
                ])
                .unwrap()
            })
            .collect();
        memory.create_table("default", "t", schema, pages).unwrap();
        engine.register_catalog("memory", Arc::new(memory));
        PrestoCluster::new("test", engine, config, SimClock::new())
    }

    fn cluster() -> Arc<PrestoCluster> {
        cluster_with(ClusterConfig {
            initial_workers: 3,
            grace_period: Duration::from_secs(2),
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn distributed_query_spreads_tasks_over_workers() {
        let c = cluster();
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
        assert_eq!(c.metrics().get("cluster.tasks"), 8);
        // every worker did some splits
        let done: Vec<usize> = c.workers().iter().map(|w| w.completed_tasks()).collect();
        assert!(done.iter().all(|&d| d > 0), "{done:?}");
        assert_eq!(done.iter().sum::<usize>(), 8);
    }

    #[test]
    fn expansion_adds_capacity() {
        let c = cluster();
        assert_eq!(c.active_workers().len(), 3);
        c.expand(2);
        assert_eq!(c.active_workers().len(), 5);
        // new workers participate immediately
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert!(c.workers().iter().any(|w| w.id >= 3 && w.completed_tasks() > 0));
    }

    #[test]
    fn graceful_shrink_never_fails_queries() {
        let c = cluster();
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        // drain worker 0
        c.request_worker_shutdown(0).unwrap();
        // queries keep running while the worker drains
        for _ in 0..5 {
            c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
            c.clock().advance(Duration::from_secs(1));
            c.tick();
        }
        // finish both grace periods
        c.clock().advance(Duration::from_secs(5));
        c.tick();
        c.clock().advance(Duration::from_secs(5));
        let remaining = c.tick();
        assert_eq!(remaining, 2, "worker 0 terminated");
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        // and the cluster still works
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
    }

    #[test]
    fn fragment_result_cache_serves_repeat_queries() {
        let engine = PrestoEngine::new();
        engine.register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
        let c = PrestoCluster::new(
            "cached",
            engine,
            ClusterConfig {
                initial_workers: 3,
                affinity_scheduling: true,
                fragment_cache_entries: 64,
                ..ClusterConfig::default()
            },
            SimClock::new(),
        );
        let session = Session::new("tpch", "tiny");
        let sql = "SELECT returnflag, count(*) FROM lineitem GROUP BY 1";
        let first = c.execute(sql, &session).unwrap();
        assert_eq!(c.metrics().get("frc.hits"), 0);
        let misses_after_first = c.metrics().get("frc.misses");
        assert!(misses_after_first > 0, "first run populates the cache");

        // the dashboard refreshes: identical query, all splits served from
        // worker memory
        let second = c.execute(sql, &session).unwrap();
        assert_eq!(first.rows(), second.rows());
        assert_eq!(c.metrics().get("frc.misses"), misses_after_first);
        assert_eq!(c.metrics().get("frc.hits"), misses_after_first);

        // a different pushdown shape must not share results
        let other = "SELECT returnflag, count(*) FROM lineitem \
                     WHERE linestatus = 'O' GROUP BY 1";
        c.execute(other, &session).unwrap();
        assert!(c.metrics().get("frc.misses") > misses_after_first);
    }

    #[test]
    fn affinity_keeps_caches_warm_through_expansion() {
        let engine = PrestoEngine::new();
        engine.register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
        let mk = |affinity: bool| {
            let c = PrestoCluster::new(
                "t",
                engine.clone(),
                ClusterConfig {
                    initial_workers: 4,
                    affinity_scheduling: affinity,
                    fragment_cache_entries: 64,
                    ..ClusterConfig::default()
                },
                SimClock::new(),
            );
            let session = Session::new("tpch", "small");
            let sql = "SELECT count(*) FROM lineitem";
            c.execute(sql, &session).unwrap(); // warm caches
            c.metrics().reset();
            c.expand(1); // fleet change
            c.execute(sql, &session).unwrap();
            (c.metrics().get("frc.hits"), c.metrics().get("frc.misses"))
        };
        // with affinity, most splits still land on their warm worker
        let (affinity_hits, affinity_misses) = mk(true);
        assert!(
            affinity_hits > affinity_misses,
            "affinity should keep most splits warm: {affinity_hits} hits vs {affinity_misses} misses"
        );
        // round-robin reshuffles on expansion, losing most of the cache
        let (rr_hits, _) = mk(false);
        assert!(
            affinity_hits > rr_hits,
            "affinity ({affinity_hits}) must beat round-robin ({rr_hits})"
        );
    }

    #[test]
    fn headroom_diverts_splits_off_saturated_owners() {
        // A budget of one split per worker: the first split a placement
        // pass promises each owner fits, every later same-owner split must
        // walk the ring to a successor — and the query still succeeds.
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            affinity_scheduling: true,
            worker_memory_bytes: Some(SPLIT_MEMORY_ESTIMATE),
            ..ClusterConfig::default()
        });
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
        // 8 splits over 3 single-split budgets cannot avoid diverting
        assert!(c.metrics().get(names::CLUSTER_SPLITS_DIVERTED) > 0);
        // reservations drain once the query finishes
        for w in c.workers() {
            assert_eq!(w.memory_reserved(), 0, "worker {} leaked a reservation", w.id);
        }
    }

    #[test]
    fn memory_reservations_release_even_with_faults() {
        use presto_common::fault::FaultPlan;
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            affinity_scheduling: true,
            worker_memory_bytes: Some(4 * SPLIT_MEMORY_ESTIMATE),
            fault_injector: FaultInjector::new(7, FaultPlan::new().fail_rate(0.3)),
            ..ClusterConfig::default()
        });
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        for w in c.workers() {
            assert_eq!(w.memory_reserved(), 0, "worker {} leaked a reservation", w.id);
        }
    }

    #[test]
    fn distributed_cache_follows_the_lifecycle() {
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            grace_period: Duration::from_secs(2),
            affinity_scheduling: true,
            distributed_cache: Some(DistributedCacheConfig::default()),
            ..ClusterConfig::default()
        });
        let dist = c.distributed_cache().expect("configured").clone();
        assert_eq!(c.ring().read().len(), 3, "initial workers join the ring");
        // fill each key at its owner
        for i in 0..48u32 {
            let key = presto_cache::ChunkKey {
                file: format!("/warehouse/t/part-{}", i % 12),
                row_group: i % 4,
                column: 0,
            };
            let owner = dist.owner(&key).expect("ring is non-empty");
            assert!(dist.put(owner, key, vec![i as u8]));
        }
        let before = dist.len();

        // a graceful decommission migrates the departing shard
        c.decommission_worker(0).unwrap();
        assert!(!c.ring().read().contains(0));
        assert_eq!(dist.len(), before, "graceful drain loses nothing");
        assert!(c.metrics().get(names::DIST_REMAPPED) > 0);
        for w in [1u32, 2] {
            for key in dist.shard_keys(w) {
                assert_eq!(dist.owner(&key), Some(w), "{key:?} on the wrong shard");
            }
        }

        // scale-out rebalances moved ownership onto the new worker
        c.expand(1);
        let new_id = 3u32;
        assert!(c.ring().read().contains(new_id));
        assert_eq!(dist.len(), before, "rebalance moves, never drops");
        for key in dist.shard_keys(new_id) {
            assert_eq!(dist.owner(&key), Some(new_id));
        }
    }

    #[test]
    fn revocation_drops_the_distributed_shard() {
        let c = cluster_with(ClusterConfig {
            initial_workers: 2,
            distributed_cache: Some(DistributedCacheConfig::default()),
            ..ClusterConfig::default()
        });
        c.expand_class(1, "spot");
        let spot_id = 2u32;
        let dist = c.distributed_cache().expect("configured").clone();
        for i in 0..60u32 {
            let key = presto_cache::ChunkKey {
                file: format!("/warehouse/t/part-{i}"),
                row_group: 0,
                column: 0,
            };
            let owner = dist.owner(&key).expect("ring is non-empty");
            dist.put(owner, key, vec![1]);
        }
        let spot_entries = dist.shard_keys(spot_id).len() as u64;
        assert!(spot_entries > 0, "the spot worker should own some keys");
        let before = dist.len() as u64;
        assert_eq!(c.revoke_class("spot"), 1);
        assert!(!c.ring().read().contains(spot_id));
        assert_eq!(c.metrics().get(names::DIST_DROPPED), spot_entries);
        assert_eq!(dist.len() as u64, before - spot_entries, "revoked entries are gone");
    }

    #[test]
    fn cache_digest_is_identical_across_same_seed_runs() {
        let run = || {
            let c = cluster_with(ClusterConfig {
                initial_workers: 3,
                grace_period: Duration::from_secs(2),
                affinity_scheduling: true,
                fragment_cache_entries: 64,
                distributed_cache: Some(DistributedCacheConfig::default()),
                ..ClusterConfig::default()
            });
            let dist = c.distributed_cache().expect("configured").clone();
            for i in 0..40u32 {
                let key = presto_cache::ChunkKey {
                    file: format!("/warehouse/t/part-{}", i % 10),
                    row_group: i % 2,
                    column: i % 3,
                };
                let owner = dist.owner(&key).expect("ring is non-empty");
                if dist.get(owner, &key).is_none() {
                    dist.put(owner, key, vec![i as u8]);
                }
            }
            c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
            c.decommission_worker(1).unwrap();
            c.cache_digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn maintenance_refuses_queries() {
        let c = cluster();
        c.set_maintenance(true);
        assert!(c.execute("SELECT 1", &Session::default()).is_err());
        c.set_maintenance(false);
        assert!(c.execute("SELECT 1", &Session::default()).is_ok());
    }

    #[test]
    fn refusals_are_rejected_not_failed() {
        let c = cluster();
        c.set_maintenance(true);
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert_eq!(err.code(), "CLUSTER_UNAVAILABLE");
        assert!(err.is_retryable(), "a gateway that raced the drain may re-route");
        assert_eq!(c.metrics().get("cluster.queries_rejected"), 1);
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        assert_eq!(c.queries_started(), 0, "the query never started");
    }

    #[test]
    fn admission_overflow_is_rejected_not_failed() {
        let c = cluster_with(ClusterConfig {
            initial_workers: 1,
            admission: AdmissionConfig {
                max_concurrent: Some(0),
                max_queued: 0,
                ..AdmissionConfig::default()
            },
            ..ClusterConfig::default()
        });
        let err = c.execute("SELECT 1", &Session::default()).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
        assert_eq!(c.metrics().get("cluster.queries_rejected"), 1);
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        assert_eq!(c.queries_started(), 0);
    }

    #[test]
    fn injected_crash_recovers_via_split_reassignment() {
        use presto_common::{FaultInjector, FaultPlan};
        // worker 1 dies when it starts its second task; its unfinished
        // splits move to the two survivors and the query still answers
        // correctly.
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            fault_injector: FaultInjector::new(7, FaultPlan::new().crash_on_task(1, 2)),
            ..ClusterConfig::default()
        });
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
        assert!(c.metrics().get("cluster.split_retries") >= 1);
        assert_eq!(c.metrics().get("cluster.worker_failures"), 1);
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        let crashed: Vec<u32> = c
            .workers()
            .iter()
            .filter(|w| w.state() == WorkerState::Crashed)
            .map(|w| w.id)
            .collect();
        assert_eq!(crashed, vec![1]);
    }

    #[test]
    fn recovery_off_fails_the_query_on_the_same_schedule() {
        use presto_common::{FaultInjector, FaultPlan};
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            fault_injector: FaultInjector::new(7, FaultPlan::new().crash_on_task(1, 2)),
            fault_recovery: false,
            ..ClusterConfig::default()
        });
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert_eq!(err.code(), "WORKER_FAILED");
        assert_eq!(c.metrics().get("cluster.split_retries"), 0);
        assert_eq!(c.metrics().get("cluster.queries_failed"), 1);
    }

    #[test]
    fn attempt_cap_gives_up_with_a_retryable_error() {
        use presto_common::{FaultInjector, FaultPlan};
        // one worker that drops every task: the only candidate for every
        // reattempt keeps failing until the per-split budget runs out
        let c = cluster_with(ClusterConfig {
            initial_workers: 1,
            fault_injector: FaultInjector::new(3, FaultPlan::new().fail_rate(1.0)),
            max_split_attempts: 3,
            blacklist_after: 0, // keep the flaky worker schedulable
            ..ClusterConfig::default()
        });
        let before = c.clock().now();
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert!(err.is_retryable(), "the gateway may still fail over: {err}");
        assert!(err.message().contains("giving up"), "{err}");
        assert_eq!(c.metrics().get("cluster.queries_failed"), 1);
        // two retry rounds happened, with backoff on the virtual clock
        assert!(c.metrics().get("cluster.split_retries") >= 2);
        assert!(c.clock().now() > before, "backoff advances virtual time");
    }

    #[test]
    fn flaky_worker_is_blacklisted_and_quarantined() {
        use presto_common::{FaultInjector, FaultPlan};
        // worker 0 drops its first three tasks, then would behave — but by
        // then the consecutive-failure blacklist has quarantined it, so the
        // retries (and every later query) run on workers 1 and 2.
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            fault_injector: FaultInjector::new(
                5,
                FaultPlan::new().fail_task(0, 1).fail_task(0, 2).fail_task(0, 3),
            ),
            blacklist_after: 3,
            ..ClusterConfig::default()
        });
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
        assert_eq!(c.metrics().get("cluster.blacklisted_workers"), 1);
        let w0 = &c.workers()[0];
        assert!(w0.is_blacklisted());
        assert_eq!(w0.state(), WorkerState::Active, "quarantined, not dead");
        assert!(!w0.accepts_tasks());
        // later queries never touch the quarantined worker
        let done_before = w0.completed_tasks();
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(w0.completed_tasks(), done_before);
    }

    #[test]
    fn queries_record_traces_and_latency_histograms() {
        let c = cluster();
        let r = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        let spans = r.info.trace.spans();
        assert!(spans.iter().any(|s| s.kind == SpanKind::Query));
        assert!(spans.iter().any(|s| s.kind == SpanKind::Stage));
        // one task span per split, parented under the scan stage
        assert_eq!(spans.iter().filter(|s| s.kind == SpanKind::Task).count(), 8);
        assert!(r.info.latency > Duration::ZERO, "the cost model advances virtual time");
        let h = c.histograms().get(names::HIST_CLUSTER_QUERY_LATENCY_US);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), r.info.latency.as_micros() as u64);
    }

    #[test]
    fn retry_backoff_lands_in_the_histogram() {
        use presto_common::{FaultInjector, FaultPlan};
        let c = cluster_with(ClusterConfig {
            initial_workers: 3,
            fault_injector: FaultInjector::new(7, FaultPlan::new().crash_on_task(1, 2)),
            ..ClusterConfig::default()
        });
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        let h = c.histograms().get(names::HIST_CLUSTER_RETRY_BACKOFF_US);
        assert!(h.count() >= 1, "at least one backoff round ran");
        assert!(h.min() >= c.config.retry_backoff_base.as_micros() as u64);
    }

    #[test]
    fn same_seed_chaos_runs_produce_identical_trace_digests() {
        use presto_common::{FaultInjector, FaultPlan};
        let digest_of = || {
            let c = cluster_with(ClusterConfig {
                initial_workers: 3,
                fault_injector: FaultInjector::new(
                    7,
                    FaultPlan::new().crash_on_task(1, 2).fail_task(0, 3),
                ),
                ..ClusterConfig::default()
            });
            let r = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
            r.info.trace.digest()
        };
        assert_eq!(digest_of(), digest_of(), "trace digests must be bit-identical");
    }

    #[test]
    fn no_active_workers_is_an_error() {
        let c = cluster();
        for w in c.workers() {
            w.request_shutdown();
        }
        c.clock().advance(Duration::from_secs(3));
        c.tick();
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert!(err.message().contains("no active workers"));
    }
}
