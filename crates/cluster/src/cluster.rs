//! One Presto cluster: a coordinator and N workers (§III), with graceful
//! expansion and shrink (§IX).
//!
//! Distributed execution model: the coordinator plans and fragments the
//! query; each leaf (scan) fragment's connector splits are assigned
//! round-robin to ACTIVE workers and executed on real threads; intermediate
//! pages flow back as exchanges; the root fragment runs on the coordinator.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use std::collections::HashMap;

use parking_lot::RwLock;
use presto_cache::fragment::{affinity_worker, fingerprint, FragmentKey, FragmentResultCache};
use presto_common::metrics::CounterSet;
use presto_common::{Page, PrestoError, Result, SimClock};
use presto_connectors::SplitPayload;
use presto_core::{PrestoEngine, QueryResult, Session};
use presto_plan::LogicalPlan;
use presto_resource::{AdmissionConfig, ResourceConfig, ResourceManager};

use crate::worker::{Worker, WorkerState, DEFAULT_GRACE_PERIOD};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Workers started at launch.
    pub initial_workers: u32,
    /// `shutdown.grace-period` (§IX; the paper's default is 2 minutes).
    pub grace_period: Duration,
    /// §VII affinity scheduler: route each split to the same worker via
    /// rendezvous hashing (instead of round-robin), so worker-side caches
    /// stay hot across queries and fleet changes.
    pub affinity_scheduling: bool,
    /// §VII fragment result cache: per-worker entries (0 = disabled). Only
    /// immutable splits (warehouse files, generated data) are cached.
    pub fragment_cache_entries: usize,
    /// Cluster-wide memory pool in bytes (`None` = unbounded).
    pub cluster_memory_bytes: Option<usize>,
    /// Coordinator admission control (defaults admit everything at once).
    pub admission: AdmissionConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            initial_workers: 4,
            grace_period: DEFAULT_GRACE_PERIOD,
            affinity_scheduling: false,
            fragment_cache_entries: 0,
            cluster_memory_bytes: None,
            admission: AdmissionConfig::default(),
        }
    }
}

/// A cluster: coordinator state + worker pool.
///
/// Counters: `cluster.queries`, `cluster.tasks`, `cluster.queries_failed`.
pub struct PrestoCluster {
    name: String,
    engine: PrestoEngine,
    workers: RwLock<Vec<Arc<Worker>>>,
    next_worker_id: AtomicU32,
    clock: SimClock,
    config: ClusterConfig,
    metrics: CounterSet,
    /// Administrators drain whole clusters for maintenance (§VIII); a
    /// draining cluster refuses new queries so the gateway re-routes.
    maintenance: RwLock<bool>,
    queries_started: AtomicU64,
    /// Per-worker fragment result caches (die with their worker, like any
    /// worker-side memory cache).
    fragment_caches: RwLock<HashMap<u32, FragmentResultCache>>,
}

impl PrestoCluster {
    /// Launch a cluster.
    pub fn new(
        name: impl Into<String>,
        engine: PrestoEngine,
        config: ClusterConfig,
        clock: SimClock,
    ) -> Arc<PrestoCluster> {
        // The coordinator owns the cluster-wide resource manager: one
        // memory pool and one admission queue shared by every query this
        // cluster runs. The engine's fragments account against it.
        let engine = engine.with_resources(ResourceManager::new(
            ResourceConfig {
                cluster_memory_bytes: config.cluster_memory_bytes,
                admission: config.admission.clone(),
            },
            clock.clone(),
        ));
        let cluster = PrestoCluster {
            name: name.into(),
            engine,
            workers: RwLock::new(Vec::new()),
            next_worker_id: AtomicU32::new(0),
            clock,
            config,
            metrics: CounterSet::new(),
            maintenance: RwLock::new(false),
            queries_started: AtomicU64::new(0),
            fragment_caches: RwLock::new(HashMap::new()),
        };
        let cluster = Arc::new(cluster);
        cluster.expand(cluster.config.initial_workers);
        cluster
    }

    /// Cluster name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine (catalog registration etc.).
    pub fn engine(&self) -> &PrestoEngine {
        &self.engine
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// §IX expansion: "we could simply add more workers, configured with
    /// the same coordinator. New workers are automatically added to the
    /// existing cluster."
    pub fn expand(&self, count: u32) {
        let mut workers = self.workers.write();
        let mut caches = self.fragment_caches.write();
        for _ in 0..count {
            let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
            workers.push(Worker::new(id, self.clock.clone(), self.config.grace_period));
            if self.config.fragment_cache_entries > 0 {
                caches.insert(
                    id,
                    FragmentResultCache::new(
                        self.config.fragment_cache_entries,
                        self.metrics.clone(),
                    ),
                );
            }
        }
    }

    /// All workers (any state).
    pub fn workers(&self) -> Vec<Arc<Worker>> {
        self.workers.read().clone()
    }

    /// Workers currently accepting tasks.
    pub fn active_workers(&self) -> Vec<Arc<Worker>> {
        self.workers.read().iter().filter(|w| w.accepts_tasks()).cloned().collect()
    }

    /// §IX shrink: send the shutdown command to one worker.
    pub fn request_worker_shutdown(&self, worker_id: u32) -> Result<()> {
        let workers = self.workers.read();
        let worker = workers
            .iter()
            .find(|w| w.id == worker_id)
            .ok_or_else(|| PrestoError::Execution(format!("no worker {worker_id}")))?;
        worker.request_shutdown();
        Ok(())
    }

    /// Advance worker state machines; reap terminated workers. Returns the
    /// number of live workers remaining.
    pub fn tick(&self) -> usize {
        let mut workers = self.workers.write();
        for w in workers.iter() {
            w.tick();
        }
        let mut caches = self.fragment_caches.write();
        workers.retain(|w| {
            let live = w.state() != WorkerState::Terminated;
            if !live {
                // a terminated worker takes its in-memory caches with it
                caches.remove(&w.id);
            }
            live
        });
        workers.len()
    }

    /// Enter/exit maintenance (drain) mode.
    pub fn set_maintenance(&self, on: bool) {
        *self.maintenance.write() = on;
    }

    /// Is the cluster refusing new queries?
    pub fn in_maintenance(&self) -> bool {
        *self.maintenance.read()
    }

    /// Queries executed so far.
    pub fn queries_started(&self) -> u64 {
        self.queries_started.load(Ordering::Relaxed)
    }

    /// Execute a query with distributed scan fragments.
    ///
    /// Queries pass the coordinator's admission queue first; the RAII
    /// permit is held for the query's whole distributed run.
    pub fn execute(&self, sql: &str, session: &Session) -> Result<QueryResult> {
        if self.in_maintenance() {
            return Err(PrestoError::Execution(format!("cluster {} is in maintenance", self.name)));
        }
        self.queries_started.fetch_add(1, Ordering::Relaxed);
        self.metrics.incr("cluster.queries");
        let query_metrics = CounterSet::new();
        let result = self
            .engine
            .resources()
            .admission()
            .admit(&session.user, session.priority, &query_metrics)
            .and_then(|_permit| self.execute_inner(sql, session, &query_metrics));
        if result.is_err() {
            self.metrics.incr("cluster.queries_failed");
        }
        result
    }

    fn execute_inner(
        &self,
        sql: &str,
        session: &Session,
        query_metrics: &CounterSet,
    ) -> Result<QueryResult> {
        let fragments = self.engine.fragment(sql, session)?;
        let schema = fragments[0].plan.output_schema()?;

        // Execute leaf (scan) fragments with splits spread across workers.
        let mut exchanges: Vec<(u32, Vec<Page>)> = Vec::new();
        for fragment in &fragments[1..] {
            let LogicalPlan::TableScan { catalog, schema: sch, table, request, .. } =
                &fragment.plan
            else {
                // non-scan fragment (not produced by the current fragmenter)
                let pages = self.engine.execute_fragment_with_metrics(
                    fragment,
                    vec![],
                    session,
                    query_metrics,
                )?;
                exchanges.push((fragment.id, pages));
                continue;
            };
            let connector = self.engine.catalogs().get(catalog)?;
            let splits = connector.splits(sch, table, request)?;
            self.metrics.add("cluster.tasks", splits.len() as u64);

            let workers = self.active_workers();
            if workers.is_empty() {
                return Err(PrestoError::Execution(format!(
                    "cluster {} has no active workers",
                    self.name
                )));
            }
            // Split assignment: affinity scheduling (§VII) routes each split
            // to a stable worker via rendezvous hashing; otherwise splits
            // round-robin. Scan tasks run on real threads, one per worker (a
            // worker's splits run serially on it).
            let worker_ids: Vec<u32> = workers.iter().map(|w| w.id).collect();
            let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); workers.len()];
            for (i, split) in splits.iter().enumerate() {
                let w = if self.config.affinity_scheduling {
                    // `workers` was checked non-empty above; fall back to
                    // round-robin rather than panicking if that ever breaks.
                    affinity_worker(&split_identity(&split.payload), &worker_ids)
                        .unwrap_or(i % workers.len())
                } else {
                    i % workers.len()
                };
                per_worker[w].push(i);
            }
            let assignments: Vec<(Arc<Worker>, Vec<usize>)> =
                workers.iter().cloned().zip(per_worker).collect();
            // Pushdowns are part of the fragment identity: two queries only
            // share cached results when their pushed-down scans agree.
            let plan_fingerprint = fingerprint(&format!("{:?}", fragment.plan));
            type SplitResults = Vec<Result<Vec<(usize, Vec<Page>)>>>;
            let results: SplitResults = std::thread::scope(|scope| {
                let handles: Vec<_> = assignments
                    .iter()
                    .map(|(worker, split_ids)| {
                        let connector = connector.clone();
                        let splits = &splits;
                        let cache = self.fragment_caches.read().get(&worker.id).cloned();
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for &i in split_ids {
                                let _task = worker.begin_task()?;
                                let key = FragmentKey {
                                    plan_fingerprint,
                                    split_identity: split_identity(&splits[i].payload),
                                };
                                let cacheable =
                                    cache.is_some() && is_immutable_split(&splits[i].payload);
                                if cacheable {
                                    if let Some(hit) = cache.as_ref().and_then(|c| c.get(&key)) {
                                        out.push((i, hit.as_ref().clone()));
                                        continue;
                                    }
                                }
                                let pages = connector.scan_split(&splits[i], request)?;
                                if cacheable {
                                    if let Some(c) = &cache {
                                        c.put(key, pages.clone());
                                    }
                                }
                                out.push((i, pages));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // A panicking scan task must fail its query, not the
                        // whole coordinator loop.
                        h.join().unwrap_or_else(|_| {
                            Err(PrestoError::Internal(format!(
                                "scan task panicked on cluster {} (fragment {})",
                                self.name, fragment.id
                            )))
                        })
                    })
                    .collect()
            });
            // splits stay ordered so results are deterministic
            let mut indexed: Vec<(usize, Vec<Page>)> = Vec::new();
            for r in results {
                indexed.extend(r?);
            }
            indexed.sort_by_key(|(i, _)| *i);
            let pages: Vec<Page> = indexed.into_iter().flat_map(|(_, pages)| pages).collect();
            exchanges.push((fragment.id, pages));
        }

        // Root fragment runs on the coordinator.
        let pages = self.engine.execute_fragment_with_metrics(
            &fragments[0],
            exchanges,
            session,
            query_metrics,
        )?;
        Ok(QueryResult { schema, pages, metrics: query_metrics.clone() })
    }
}

/// Stable identity of a split, for affinity hashing and cache keys.
fn split_identity(payload: &SplitPayload) -> String {
    match payload {
        SplitPayload::HiveFile { path, .. } => format!("hive:{path}"),
        SplitPayload::Memory { chunk } => format!("memory:{chunk}"),
        SplitPayload::MySql => "mysql".to_string(),
        SplitPayload::Segments { start, end } => format!("segments:{start}-{end}"),
        SplitPayload::Tpch { start, count } => format!("tpch:{start}+{count}"),
    }
}

/// Only splits over immutable data may be result-cached: warehouse files
/// never change in place, generated TPC-H data is deterministic. Memory and
/// MySQL tables mutate; real-time segments keep arriving.
fn is_immutable_split(payload: &SplitPayload) -> bool {
    matches!(payload, SplitPayload::HiveFile { .. } | SplitPayload::Tpch { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Block, DataType, Field, Schema, Value};
    use presto_connectors::memory::MemoryConnector;

    fn cluster() -> Arc<PrestoCluster> {
        let engine = PrestoEngine::new();
        let memory = MemoryConnector::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("city", DataType::Varchar),
        ])
        .unwrap();
        // several pages → several splits → distributed scan
        let pages: Vec<Page> = (0..8)
            .map(|p| {
                Page::new(vec![
                    Block::bigint((p * 10..p * 10 + 10).collect()),
                    Block::varchar(&["sf"; 10]),
                ])
                .unwrap()
            })
            .collect();
        memory.create_table("default", "t", schema, pages).unwrap();
        engine.register_catalog("memory", Arc::new(memory));
        PrestoCluster::new(
            "test",
            engine,
            ClusterConfig {
                initial_workers: 3,
                grace_period: Duration::from_secs(2),
                ..ClusterConfig::default()
            },
            SimClock::new(),
        )
    }

    #[test]
    fn distributed_query_spreads_tasks_over_workers() {
        let c = cluster();
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
        assert_eq!(c.metrics().get("cluster.tasks"), 8);
        // every worker did some splits
        let done: Vec<usize> = c.workers().iter().map(|w| w.completed_tasks()).collect();
        assert!(done.iter().all(|&d| d > 0), "{done:?}");
        assert_eq!(done.iter().sum::<usize>(), 8);
    }

    #[test]
    fn expansion_adds_capacity() {
        let c = cluster();
        assert_eq!(c.active_workers().len(), 3);
        c.expand(2);
        assert_eq!(c.active_workers().len(), 5);
        // new workers participate immediately
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert!(c.workers().iter().any(|w| w.id >= 3 && w.completed_tasks() > 0));
    }

    #[test]
    fn graceful_shrink_never_fails_queries() {
        let c = cluster();
        c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        // drain worker 0
        c.request_worker_shutdown(0).unwrap();
        // queries keep running while the worker drains
        for _ in 0..5 {
            c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
            c.clock().advance(Duration::from_secs(1));
            c.tick();
        }
        // finish both grace periods
        c.clock().advance(Duration::from_secs(5));
        c.tick();
        c.clock().advance(Duration::from_secs(5));
        let remaining = c.tick();
        assert_eq!(remaining, 2, "worker 0 terminated");
        assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
        // and the cluster still works
        let result = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(80)]]);
    }

    #[test]
    fn fragment_result_cache_serves_repeat_queries() {
        let engine = PrestoEngine::new();
        engine.register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
        let c = PrestoCluster::new(
            "cached",
            engine,
            ClusterConfig {
                initial_workers: 3,
                affinity_scheduling: true,
                fragment_cache_entries: 64,
                ..ClusterConfig::default()
            },
            SimClock::new(),
        );
        let session = Session::new("tpch", "tiny");
        let sql = "SELECT returnflag, count(*) FROM lineitem GROUP BY 1";
        let first = c.execute(sql, &session).unwrap();
        assert_eq!(c.metrics().get("frc.hits"), 0);
        let misses_after_first = c.metrics().get("frc.misses");
        assert!(misses_after_first > 0, "first run populates the cache");

        // the dashboard refreshes: identical query, all splits served from
        // worker memory
        let second = c.execute(sql, &session).unwrap();
        assert_eq!(first.rows(), second.rows());
        assert_eq!(c.metrics().get("frc.misses"), misses_after_first);
        assert_eq!(c.metrics().get("frc.hits"), misses_after_first);

        // a different pushdown shape must not share results
        let other = "SELECT returnflag, count(*) FROM lineitem \
                     WHERE linestatus = 'O' GROUP BY 1";
        c.execute(other, &session).unwrap();
        assert!(c.metrics().get("frc.misses") > misses_after_first);
    }

    #[test]
    fn affinity_keeps_caches_warm_through_expansion() {
        let engine = PrestoEngine::new();
        engine.register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
        let mk = |affinity: bool| {
            let c = PrestoCluster::new(
                "t",
                engine.clone(),
                ClusterConfig {
                    initial_workers: 4,
                    affinity_scheduling: affinity,
                    fragment_cache_entries: 64,
                    ..ClusterConfig::default()
                },
                SimClock::new(),
            );
            let session = Session::new("tpch", "small");
            let sql = "SELECT count(*) FROM lineitem";
            c.execute(sql, &session).unwrap(); // warm caches
            c.metrics().reset();
            c.expand(1); // fleet change
            c.execute(sql, &session).unwrap();
            (c.metrics().get("frc.hits"), c.metrics().get("frc.misses"))
        };
        // with affinity, most splits still land on their warm worker
        let (affinity_hits, affinity_misses) = mk(true);
        assert!(
            affinity_hits > affinity_misses,
            "affinity should keep most splits warm: {affinity_hits} hits vs {affinity_misses} misses"
        );
        // round-robin reshuffles on expansion, losing most of the cache
        let (rr_hits, _) = mk(false);
        assert!(
            affinity_hits > rr_hits,
            "affinity ({affinity_hits}) must beat round-robin ({rr_hits})"
        );
    }

    #[test]
    fn maintenance_refuses_queries() {
        let c = cluster();
        c.set_maintenance(true);
        assert!(c.execute("SELECT 1", &Session::default()).is_err());
        c.set_maintenance(false);
        assert!(c.execute("SELECT 1", &Session::default()).is_ok());
    }

    #[test]
    fn no_active_workers_is_an_error() {
        let c = cluster();
        for w in c.workers() {
            w.request_shutdown();
        }
        c.clock().advance(Duration::from_secs(3));
        c.tick();
        let err = c.execute("SELECT count(*) FROM t", &Session::default()).unwrap_err();
        assert!(err.message().contains("no active workers"));
    }
}
