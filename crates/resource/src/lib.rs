#![warn(missing_docs)]

//! Resource management for the engine (§XII.C of the paper).
//!
//! Interactive Presto at scale runs many queries against a fixed memory
//! fleet; this crate supplies the three mechanisms that make that safe:
//!
//! - [`pool`] — a cluster-level [`MemoryPool`] parceled into per-query
//!   [`QueryPool`]s with RAII [`Reservation`] guards and an OOM arbiter
//!   that revokes spillable memory first and kills the largest query last;
//! - [`admission`] — a bounded run queue with priority lanes and per-user
//!   concurrency caps, accounting queue wait in deterministic virtual time;
//! - [`wfq`] — virtual-time weighted fair queuing across tenants inside a
//!   lane (plus the naive FIFO counterfactual), the dispatch discipline the
//!   workload simulator drives;
//! - [`spill`] — partition serialization for blocking operators through the
//!   native Parquet writer onto any [`presto_storage::FileSystem`].
//!
//! [`ResourceManager`] bundles the three for the engine facade.

pub mod admission;
pub mod pool;
pub mod spill;
pub mod wfq;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionPermit, QueryPriority};
pub use pool::{MemoryPool, QueryPool, Reservation, ReservationKind};
pub use spill::{SpillFile, SpillManager};
pub use wfq::{FifoQueue, QueuedQuery, WfqScheduler};

use std::sync::Arc;

use presto_common::metrics::CounterSet;
use presto_common::SimClock;
use presto_storage::{FileSystem, InMemoryFileSystem};

/// Knobs for a [`ResourceManager`].
#[derive(Debug, Clone, Default)]
pub struct ResourceConfig {
    /// Cluster-wide memory budget in bytes (`None` = unbounded).
    pub cluster_memory_bytes: Option<usize>,
    /// Admission control knobs.
    pub admission: AdmissionConfig,
}

/// The engine-facing bundle: one cluster memory pool, one admission
/// controller, one spill filesystem. Cloning shares all three.
#[derive(Clone)]
pub struct ResourceManager {
    pool: MemoryPool,
    admission: AdmissionController,
    spill_fs: Arc<dyn FileSystem>,
    clock: SimClock,
}

impl ResourceManager {
    /// Manager over `config`, spilling to an in-memory filesystem.
    pub fn new(config: ResourceConfig, clock: SimClock) -> ResourceManager {
        ResourceManager::with_spill_fs(config, clock, Arc::new(InMemoryFileSystem::new()))
    }

    /// Manager spilling to an explicit filesystem (benches use a local
    /// tempdir-backed one).
    pub fn with_spill_fs(
        config: ResourceConfig,
        clock: SimClock,
        spill_fs: Arc<dyn FileSystem>,
    ) -> ResourceManager {
        ResourceManager {
            pool: MemoryPool::new(config.cluster_memory_bytes),
            admission: AdmissionController::new(config.admission, clock.clone()),
            spill_fs,
            clock,
        }
    }

    /// An unbounded manager (the default engine configuration).
    pub fn unbounded() -> ResourceManager {
        ResourceManager::new(ResourceConfig::default(), SimClock::new())
    }

    /// The cluster memory pool.
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// The admission controller.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The shared virtual clock (queue-wait accounting).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// A spill manager for one query, writing under a per-query directory
    /// and accounting into that query's `metrics`.
    pub fn spill_manager(&self, query_id: u64, metrics: CounterSet) -> SpillManager {
        SpillManager::new(self.spill_fs.clone(), format!("/spill/q{query_id}"), metrics)
    }
}

impl std::fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceManager")
            .field("pool", &self.pool)
            .field("admission", &self.admission)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manager_wires_the_three_subsystems() {
        let manager = ResourceManager::new(
            ResourceConfig {
                cluster_memory_bytes: Some(1 << 20),
                admission: AdmissionConfig {
                    max_concurrent: Some(4),
                    ..AdmissionConfig::default()
                },
            },
            SimClock::new(),
        );
        let metrics = CounterSet::new();
        let _permit = manager.admission().admit("alice", QueryPriority::Normal, &metrics).unwrap();
        let query = manager.pool().register_query(Some(1024));
        let _res = query.reserve(512, ReservationKind::User).unwrap();
        assert_eq!(manager.pool().used(), 512);

        let spill = manager.spill_manager(query.query_id(), metrics.clone());
        let schema = presto_common::Schema::new(vec![presto_common::Field::new(
            "x",
            presto_common::DataType::Bigint,
        )])
        .unwrap();
        let page =
            presto_common::Page::new(vec![presto_common::Block::bigint(vec![1, 2, 3])]).unwrap();
        let file = spill.spill_pages(&schema, &[page]).unwrap();
        assert_eq!(spill.read(&file).unwrap()[0].positions(), 3);
        assert!(metrics.get("spill.bytes_written") > 0);
    }
}
