//! Admission control: a bounded run queue in front of the engine.
//!
//! §XII of the paper: at Uber's scale the cluster cannot start every query
//! the moment it arrives — queries queue at the coordinator, subject to
//! per-user concurrency limits, and dashboards (interactive traffic) jump
//! the line ahead of batch scheduled queries. This module reproduces that
//! as two FIFO lanes ([`QueryPriority::High`] drains first) with a bounded
//! queue and per-user caps.
//!
//! Queue **wait time is virtual**: every wait round advances the shared
//! [`SimClock`] by one millisecond, so `admission.wait_virtual_ms` is
//! deterministic in magnitude regardless of host scheduling.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use presto_common::metrics::{names, CounterSet, Histogram, HistogramSet};
use presto_common::{PrestoError, Result, SimClock};

/// Scheduling lane for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryPriority {
    /// Scheduled / batch work: waits behind interactive traffic.
    #[default]
    Normal,
    /// Interactive traffic (dashboards): drains first.
    High,
    /// Best-effort background work: drains last, and the only lane a
    /// blacklisted worker on probation is allowed to serve.
    Low,
}

/// Admission knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queries allowed to run concurrently (`None` = unlimited).
    pub max_concurrent: Option<usize>,
    /// Queries allowed to *wait*; beyond this, admission fails fast.
    pub max_queued: usize,
    /// Per-user (session principal) concurrency cap.
    pub per_user_max_concurrent: Option<usize>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_concurrent: None, max_queued: 1024, per_user_max_concurrent: None }
    }
}

#[derive(Debug)]
struct Waiting {
    seq: u64,
    priority: QueryPriority,
    user: String,
}

#[derive(Default)]
struct AdmState {
    running: usize,
    per_user: HashMap<String, usize>,
    queue: Vec<Waiting>,
    next_seq: u64,
}

struct AdmInner {
    config: AdmissionConfig,
    state: Mutex<AdmState>,
    released: Condvar,
    clock: SimClock,
    histograms: HistogramSet,
}

/// Real wait granularity per round (virtual time advances 1 ms per round).
const ROUND: Duration = Duration::from_millis(2);

/// The admission controller. Cloning shares it.
#[derive(Clone)]
pub struct AdmissionController {
    inner: Arc<AdmInner>,
}

impl AdmissionController {
    /// Controller over a config and a shared virtual clock.
    pub fn new(config: AdmissionConfig, clock: SimClock) -> AdmissionController {
        AdmissionController {
            inner: Arc::new(AdmInner {
                config,
                state: Mutex::new(AdmState::default()),
                released: Condvar::new(),
                clock,
                histograms: HistogramSet::new(),
            }),
        }
    }

    /// Distribution of virtual queue-wait (ms) across all admitted queries,
    /// including the zero-wait ones — `p(q)` answers "how long do queries
    /// wait at this concurrency limit" (§XII).
    pub fn queue_wait_histogram(&self) -> Histogram {
        self.inner.histograms.get(names::HIST_ADMISSION_QUEUE_WAIT_MS)
    }

    /// Queries currently running under a permit.
    pub fn running(&self) -> usize {
        self.inner.state.lock().running
    }

    /// Queries currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Snapshot of the controller's load: `(running, queued)`. The
    /// federation gateway polls this for depth-aware routing.
    pub fn load(&self) -> (usize, usize) {
        let state = self.inner.state.lock();
        (state.running, state.queue.len())
    }

    /// Would a new query start immediately (a free run slot and an empty
    /// queue ahead of it)?
    pub fn has_free_slot(&self) -> bool {
        let state = self.inner.state.lock();
        state.queue.is_empty()
            && match self.inner.config.max_concurrent {
                Some(max) => state.running < max,
                None => true,
            }
    }

    /// Would a new query (from an otherwise-unthrottled user) be refused
    /// outright? Mirrors [`AdmissionController::admit`]'s fast-fail path:
    /// no immediate start is possible *and* the wait queue is already at
    /// `max_queued`. The federation gateway polls this so it can route
    /// around clusters whose admission lanes are saturated instead of
    /// bouncing queries off a full queue.
    pub fn is_saturated(&self) -> bool {
        let state = self.inner.state.lock();
        let immediate = state.queue.is_empty()
            && match self.inner.config.max_concurrent {
                Some(max) => state.running < max,
                None => true,
            };
        !immediate && state.queue.len() >= self.inner.config.max_queued
    }

    /// Block until this query may run; returns the RAII permit.
    ///
    /// Queue-wait accounting lands in `metrics` (the per-query counter set):
    /// `admission.queued` is 1 if the query had to wait, and
    /// `admission.wait_virtual_ms` is its virtual wait in milliseconds.
    pub fn admit(
        &self,
        user: &str,
        priority: QueryPriority,
        metrics: &CounterSet,
    ) -> Result<AdmissionPermit> {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        if state.queue.is_empty() && Self::capacity_free(&inner.config, &state, user) {
            Self::start(&mut state, user);
            inner.histograms.record(names::HIST_ADMISSION_QUEUE_WAIT_MS, 0);
            return Ok(AdmissionPermit { inner: inner.clone(), user: user.to_string() });
        }
        if state.queue.len() >= inner.config.max_queued {
            return Err(PrestoError::InsufficientResources(format!(
                "Insufficient Resource: admission queue is full \
                 ({} queued, {} running)",
                state.queue.len(),
                state.running,
            )));
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.queue.push(Waiting { seq, priority, user: user.to_string() });
        metrics.incr(names::ADMISSION_QUEUED);
        let mut waited_ms = 0u64;
        loop {
            // Virtual time: one millisecond of queue wait per round.
            inner.clock.advance(Duration::from_millis(1));
            waited_ms += 1;
            inner.released.wait_for(&mut state, ROUND);
            if Self::is_next(&inner.config, &state, seq, user)?
                && Self::capacity_free(&inner.config, &state, user)
            {
                state.queue.retain(|w| w.seq != seq);
                Self::start(&mut state, user);
                metrics.add(names::ADMISSION_WAIT_VIRTUAL_MS, waited_ms);
                inner.histograms.record(names::HIST_ADMISSION_QUEUE_WAIT_MS, waited_ms);
                return Ok(AdmissionPermit { inner: inner.clone(), user: user.to_string() });
            }
        }
    }

    /// Is `seq` the frontmost eligible waiter? High lane drains before
    /// Normal; within a lane, FIFO by sequence number. A waiter whose user
    /// is at their per-user cap is skipped over (head-of-line blocking on a
    /// throttled user would starve everyone else).
    /// A waiter that is no longer in the queue was removed behind our back —
    /// an engine bug, reported as an error (with the user and sequence
    /// number for context) rather than a panic under the admission lock.
    fn is_next(config: &AdmissionConfig, state: &AdmState, seq: u64, user: &str) -> Result<bool> {
        let me = state.queue.iter().find(|w| w.seq == seq).ok_or_else(|| {
            PrestoError::Internal(format!(
                "admission waiter {seq} (user {user}) vanished from the queue while waiting"
            ))
        })?;
        Ok(!state.queue.iter().any(|w| {
            w.seq != seq
                && (priority_rank(w.priority), w.seq) < (priority_rank(me.priority), me.seq)
                && Self::user_free(config, state, &w.user)
        }))
    }

    fn user_free(config: &AdmissionConfig, state: &AdmState, user: &str) -> bool {
        match config.per_user_max_concurrent {
            Some(per_user) => state.per_user.get(user).copied().unwrap_or(0) < per_user,
            None => true,
        }
    }

    fn capacity_free(config: &AdmissionConfig, state: &AdmState, user: &str) -> bool {
        if let Some(max) = config.max_concurrent {
            if state.running >= max {
                return false;
            }
        }
        Self::user_free(config, state, user)
    }

    fn start(state: &mut AdmState, user: &str) {
        state.running += 1;
        *state.per_user.entry(user.to_string()).or_insert(0) += 1;
    }
}

fn priority_rank(p: QueryPriority) -> u8 {
    match p {
        QueryPriority::High => 0,
        QueryPriority::Normal => 1,
        QueryPriority::Low => 2,
    }
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("AdmissionController")
            .field("running", &state.running)
            .field("queued", &state.queue.len())
            .finish()
    }
}

/// RAII run slot: dropping it releases the slot and wakes waiters.
pub struct AdmissionPermit {
    inner: Arc<AdmInner>,
    user: String,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock();
        state.running = state.running.saturating_sub(1);
        if let Some(n) = state.per_user.get_mut(&self.user) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                state.per_user.remove(&self.user);
            }
        }
        drop(state);
        self.inner.released.notify_all();
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit").field("user", &self.user).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(max: usize) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig { max_concurrent: Some(max), ..AdmissionConfig::default() },
            SimClock::new(),
        )
    }

    #[test]
    fn unlimited_admits_immediately() {
        let c = AdmissionController::new(AdmissionConfig::default(), SimClock::new());
        let m = CounterSet::new();
        let _a = c.admit("alice", QueryPriority::Normal, &m).unwrap();
        let _b = c.admit("bob", QueryPriority::Normal, &m).unwrap();
        assert_eq!(c.running(), 2);
        assert_eq!(m.get("admission.queued"), 0);
        assert_eq!(m.get("admission.wait_virtual_ms"), 0);
    }

    #[test]
    fn concurrency_cap_queues_and_accounts_wait() {
        let c = controller(1);
        let m = CounterSet::new();
        let first = c.admit("alice", QueryPriority::Normal, &m).unwrap();
        let c2 = c.clone();
        let m2 = m.clone();
        let waiter = std::thread::spawn(move || {
            let permit = c2.admit("bob", QueryPriority::Normal, &m2).unwrap();
            drop(permit);
        });
        while c.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(first);
        waiter.join().unwrap();
        assert_eq!(m.get("admission.queued"), 1);
        assert!(m.get("admission.wait_virtual_ms") > 0);
        assert_eq!(c.running(), 0);
        // the wait histogram saw both queries: one immediate, one waiting
        let h = c.queue_wait_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert!(h.max() > 0);
    }

    #[test]
    fn high_priority_jumps_the_normal_lane() {
        let c = controller(1);
        let m = CounterSet::new();
        let first = c.admit("seed", QueryPriority::Normal, &m).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));

        let mut handles = Vec::new();
        for (n, (user, priority)) in
            [("batch", QueryPriority::Normal), ("dash", QueryPriority::High)]
                .into_iter()
                .enumerate()
        {
            let c2 = c.clone();
            let m2 = m.clone();
            let order2 = order.clone();
            handles.push(std::thread::spawn(move || {
                let permit = c2.admit(user, priority, &m2).unwrap();
                order2.lock().push(user.to_string());
                std::thread::sleep(Duration::from_millis(5));
                drop(permit);
            }));
            // deterministic arrival order: batch enqueues before dash
            while c.queued() < n + 1 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec!["dash".to_string(), "batch".to_string()]);
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let c = AdmissionController::new(
            AdmissionConfig {
                max_concurrent: Some(1),
                max_queued: 0,
                ..AdmissionConfig::default()
            },
            SimClock::new(),
        );
        let m = CounterSet::new();
        let _running = c.admit("alice", QueryPriority::Normal, &m).unwrap();
        let err = c.admit("bob", QueryPriority::Normal, &m).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
        assert!(err.message().contains("admission queue is full"), "{err}");
    }

    #[test]
    fn saturation_tracks_the_fast_fail_condition() {
        let c = AdmissionController::new(
            AdmissionConfig {
                max_concurrent: Some(1),
                max_queued: 0,
                ..AdmissionConfig::default()
            },
            SimClock::new(),
        );
        let m = CounterSet::new();
        assert!(!c.is_saturated(), "idle controller admits immediately");
        let permit = c.admit("alice", QueryPriority::Normal, &m).unwrap();
        assert!(c.is_saturated(), "slot held and zero queue room");
        assert!(c.admit("bob", QueryPriority::Normal, &m).is_err());
        drop(permit);
        assert!(!c.is_saturated(), "slot free again");
        // unbounded concurrency is never saturated
        let open = AdmissionController::new(AdmissionConfig::default(), SimClock::new());
        let _p = open.admit("alice", QueryPriority::Normal, &m).unwrap();
        assert!(!open.is_saturated());
    }

    #[test]
    fn per_user_cap_skips_throttled_user() {
        let c = AdmissionController::new(
            AdmissionConfig {
                max_concurrent: Some(2),
                per_user_max_concurrent: Some(1),
                ..AdmissionConfig::default()
            },
            SimClock::new(),
        );
        let m = CounterSet::new();
        let _alice = c.admit("alice", QueryPriority::Normal, &m).unwrap();
        // alice is at her cap but bob is not: bob runs even while an
        // earlier alice query waits in the queue.
        let c2 = c.clone();
        let m2 = m.clone();
        let stuck = std::thread::spawn(move || c2.admit("alice", QueryPriority::Normal, &m2));
        while c.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let bob = c.admit("bob", QueryPriority::Normal, &m).unwrap();
        assert_eq!(c.running(), 2);
        drop(bob);
        drop(_alice);
        let permit = stuck.join().unwrap().unwrap();
        drop(permit);
        assert_eq!(c.running(), 0);
    }
}
