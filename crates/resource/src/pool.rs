//! The memory pool hierarchy: one cluster-level [`MemoryPool`] parceled out
//! to per-query [`QueryPool`]s, with RAII [`Reservation`] guards.
//!
//! §XII.C of the paper: interactive Presto gives each query a slice of a
//! fixed cluster memory pool; exceeding the per-query slice raises the
//! `"Insufficient Resource"` error, and exhausting the *cluster* pool wakes
//! the OOM arbiter, which (a) asks holders of *revocable* memory (hash
//! tables, sort buffers — state an operator can spill) to release it, and
//! (b) failing that, kills the single largest query so everyone else makes
//! progress.
//!
//! Accounting is done in `u128` so an unbudgeted session may reserve
//! near-`usize::MAX` without overflow (the legacy context API allowed it).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use presto_common::{PrestoError, Result};

/// What a reservation holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationKind {
    /// Memory attributed to user data (join builds, aggregation groups).
    User,
    /// Bookkeeping overhead (hash-table buckets, sort index vectors).
    System,
    /// Memory the owning operator can spill on request. Only revocable
    /// memory lets the arbiter avoid killing queries.
    Revocable,
}

/// Per-query flags the arbiter flips; checked lock-free on the hot path.
#[derive(Debug, Default)]
struct QueryFlags {
    killed: AtomicBool,
    revoke_requested: AtomicBool,
}

/// Per-query accounting inside the pool lock.
struct QuerySlot {
    total: u128,
    revocable: u128,
    peak: u128,
    flags: Arc<QueryFlags>,
}

struct PoolState {
    used: u128,
    /// Keyed by query id. A BTreeMap, not a HashMap: the OOM arbiter and
    /// the revoke arbiter pick victims with `max_by_key` over this map, and
    /// ties must break the same way on every same-seed run (highest query
    /// id wins) or the set of killed queries diverges between replays.
    queries: BTreeMap<u64, QuerySlot>,
}

struct PoolInner {
    budget: Option<u128>,
    state: Mutex<PoolState>,
    freed: Condvar,
    next_query: AtomicU64,
}

/// How long one arbiter wait round lasts and how many rounds we tolerate
/// before giving up on a victim unwinding.
const WAIT_STEP: Duration = Duration::from_millis(5);
const WAIT_ROUNDS: usize = 400;

/// The cluster-level pool. Cloning shares the pool.
#[derive(Clone)]
pub struct MemoryPool {
    inner: Arc<PoolInner>,
}

impl MemoryPool {
    /// A pool capped at `budget` bytes (`None` = unbounded).
    pub fn new(budget: Option<usize>) -> MemoryPool {
        MemoryPool {
            inner: Arc::new(PoolInner {
                budget: budget.map(|b| b as u128),
                state: Mutex::new(PoolState { used: 0, queries: BTreeMap::new() }),
                freed: Condvar::new(),
                next_query: AtomicU64::new(0),
            }),
        }
    }

    /// An unbounded pool (the default for standalone contexts).
    pub fn unbounded() -> MemoryPool {
        MemoryPool::new(None)
    }

    /// The cluster budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.inner.budget.map(|b| b.min(usize::MAX as u128) as usize)
    }

    /// Bytes currently reserved across all queries.
    pub fn used(&self) -> usize {
        self.inner.state.lock().used.min(usize::MAX as u128) as usize
    }

    /// Queries currently registered.
    pub fn query_count(&self) -> usize {
        self.inner.state.lock().queries.len()
    }

    /// Register a query with an optional per-query byte limit.
    pub fn register_query(&self, limit: Option<usize>) -> Arc<QueryPool> {
        let id = self.inner.next_query.fetch_add(1, Ordering::Relaxed);
        let flags = Arc::new(QueryFlags::default());
        self.inner
            .state
            .lock()
            .queries
            .insert(id, QuerySlot { total: 0, revocable: 0, peak: 0, flags: flags.clone() });
        Arc::new(QueryPool {
            parent: self.inner.clone(),
            id,
            limit: limit.map(|l| l as u128),
            flags,
        })
    }
}

impl std::fmt::Debug for MemoryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryPool")
            .field("budget", &self.budget())
            .field("used", &self.used())
            .finish()
    }
}

/// One query's slice of the cluster pool.
pub struct QueryPool {
    parent: Arc<PoolInner>,
    id: u64,
    limit: Option<u128>,
    flags: Arc<QueryFlags>,
}

impl QueryPool {
    /// This query's id within the pool.
    pub fn query_id(&self) -> u64 {
        self.id
    }

    /// The per-query limit, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit.map(|l| l.min(usize::MAX as u128) as usize)
    }

    /// Has the OOM arbiter killed this query?
    pub fn is_killed(&self) -> bool {
        self.flags.killed.load(Ordering::Relaxed)
    }

    /// Has the arbiter asked this query to spill its revocable memory?
    pub fn revoke_requested(&self) -> bool {
        self.flags.revoke_requested.load(Ordering::Relaxed)
    }

    /// Error out if the arbiter killed this query — operators call this at
    /// page boundaries so a victim unwinds promptly and frees its memory.
    pub fn check_killed(&self) -> Result<()> {
        if self.is_killed() {
            let state = self.parent.state.lock();
            return Err(self.killed_error(&state));
        }
        Ok(())
    }

    /// Bytes this query currently holds.
    pub fn reserved(&self) -> usize {
        let state = self.parent.state.lock();
        state.queries.get(&self.id).map(|s| s.total.min(usize::MAX as u128) as usize).unwrap_or(0)
    }

    /// High-water mark of this query's reservations.
    pub fn peak(&self) -> usize {
        let state = self.parent.state.lock();
        state.queries.get(&self.id).map(|s| s.peak.min(usize::MAX as u128) as usize).unwrap_or(0)
    }

    /// Take an RAII reservation of `bytes`. Dropping the guard releases it.
    pub fn reserve(self: &Arc<Self>, bytes: usize, kind: ReservationKind) -> Result<Reservation> {
        self.try_reserve(bytes, kind)?;
        Ok(Reservation { pool: self.clone(), kind, bytes })
    }

    /// Raw (non-RAII) reservation, for the legacy `reserve_memory` API.
    pub fn try_reserve(&self, bytes: usize, kind: ReservationKind) -> Result<()> {
        let bytes = bytes as u128;
        let mut state = self.parent.state.lock();
        let mut rounds = 0usize;
        loop {
            if self.flags.killed.load(Ordering::Relaxed) {
                return Err(self.killed_error(&state));
            }
            let slot = state
                .queries
                .get(&self.id)
                .ok_or_else(|| PrestoError::Internal("query not registered in pool".into()))?;
            let total = slot.total + bytes;
            if let Some(limit) = self.limit {
                if total > limit {
                    return Err(PrestoError::InsufficientResources(format!(
                        "Insufficient Resource: query requires {total} bytes of memory, \
                         budget is {limit} bytes (consider running this query on Spark/Hive)"
                    )));
                }
            }
            // `Some(budget)` exactly when the cluster pool cannot take
            // `bytes` more — carrying the budget into the arbiter branch
            // avoids re-unwrapping it there.
            let over_cluster = match self.parent.budget {
                Some(budget) if state.used + bytes > budget => Some(budget),
                _ => None,
            };
            let Some(budget) = over_cluster else {
                let slot = state.queries.get_mut(&self.id).ok_or_else(|| {
                    PrestoError::Internal(format!(
                        "query {} vanished from the memory pool mid-reservation",
                        self.id
                    ))
                })?;
                slot.total += bytes;
                slot.peak = slot.peak.max(slot.total);
                if kind == ReservationKind::Revocable {
                    slot.revocable += bytes;
                }
                state.used += bytes;
                return Ok(());
            };
            // ---- OOM arbiter (cluster pool exhausted) ----
            // 1. The requester itself holds revocable memory: tell it to
            //    spill (synchronously, by failing this reservation — the
            //    spill-capable operator retries after writing to disk).
            if slot.revocable > 0 {
                self.flags.revoke_requested.store(true, Ordering::Relaxed);
                return Err(PrestoError::InsufficientResources(format!(
                    "Insufficient Resource: cluster memory pool exhausted \
                     ({used} of {budget} bytes in use); query holds {rev} revocable bytes",
                    used = state.used,
                    rev = slot.revocable,
                )));
            }
            // 2. Someone else holds revocable memory: ask the biggest
            //    revocable holder to spill and wait for memory to free.
            let revocable_holder = state
                .queries
                .iter()
                .filter(|(qid, s)| **qid != self.id && s.revocable > 0)
                .max_by_key(|(_, s)| s.revocable)
                .map(|(_, s)| s.flags.clone());
            if let Some(holder) = revocable_holder {
                holder.revoke_requested.store(true, Ordering::Relaxed);
            } else {
                // 3. Nothing revocable anywhere: kill the largest query.
                let (victim_id, victim_flags, victim_total) = {
                    let Some((qid, s)) = state.queries.iter().max_by_key(|(_, s)| s.total) else {
                        return Err(PrestoError::Internal(format!(
                            "query {}: OOM arbiter ran with no queries registered in the pool",
                            self.id
                        )));
                    };
                    (*qid, s.flags.clone(), s.total)
                };
                victim_flags.killed.store(true, Ordering::Relaxed);
                if victim_id == self.id {
                    return Err(self.killed_error(&state));
                }
                let _ = victim_total;
            }
            // Wait for the spiller/victim to free memory, then retry.
            rounds += 1;
            if rounds > WAIT_ROUNDS {
                return Err(PrestoError::InsufficientResources(format!(
                    "Insufficient Resource: cluster memory pool exhausted \
                     ({used} of {budget} bytes in use) and no memory was freed",
                    used = state.used,
                )));
            }
            self.parent.freed.wait_for(&mut state, WAIT_STEP);
        }
    }

    fn killed_error(&self, state: &PoolState) -> PrestoError {
        let held = state.queries.get(&self.id).map(|s| s.total).unwrap_or(0);
        let budget = self.parent.budget.unwrap_or(0);
        PrestoError::ExceededMemoryLimit(format!(
            "Query exceeded memory limit: killed by the OOM arbiter as the largest query \
             ({held} bytes reserved) with the cluster pool ({used} of {budget} bytes) \
             exhausted and nothing revocable",
            used = state.used,
        ))
    }

    /// Release a raw reservation taken with [`QueryPool::try_reserve`].
    pub fn release(&self, bytes: usize, kind: ReservationKind) {
        let bytes = bytes as u128;
        let mut state = self.parent.state.lock();
        if let Some(slot) = state.queries.get_mut(&self.id) {
            let freed = bytes.min(slot.total);
            slot.total -= freed;
            if kind == ReservationKind::Revocable {
                slot.revocable -= bytes.min(slot.revocable);
                if slot.revocable == 0 {
                    self.flags.revoke_requested.store(false, Ordering::Relaxed);
                }
            }
            state.used -= freed.min(state.used);
        }
        drop(state);
        self.parent.freed.notify_all();
    }
}

impl Drop for QueryPool {
    fn drop(&mut self) {
        let mut state = self.parent.state.lock();
        if let Some(slot) = state.queries.remove(&self.id) {
            state.used -= slot.total.min(state.used);
        }
        drop(state);
        self.parent.freed.notify_all();
    }
}

impl std::fmt::Debug for QueryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPool")
            .field("id", &self.id)
            .field("limit", &self.limit())
            .field("reserved", &self.reserved())
            .finish()
    }
}

/// An RAII memory reservation. Dropping it returns the bytes to the pool —
/// including on early-error unwinds, which is the whole point: the legacy
/// `reserve_memory` / `release_memory` pairs leaked on `?` returns.
pub struct Reservation {
    pool: Arc<QueryPool>,
    kind: ReservationKind,
    bytes: usize,
}

impl Reservation {
    /// Reserve `delta` more bytes on top of this guard.
    pub fn grow(&mut self, delta: usize) -> Result<()> {
        self.pool.try_reserve(delta, self.kind)?;
        self.bytes += delta;
        Ok(())
    }

    /// Bytes this guard holds.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Release everything now (spill paths free memory mid-operator while
    /// keeping the guard alive for the rebuild).
    pub fn release_all(&mut self) {
        if self.bytes > 0 {
            self.pool.release(self.bytes, self.kind);
            self.bytes = 0;
        }
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.release_all();
    }
}

impl std::fmt::Debug for Reservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reservation").field("kind", &self.kind).field("bytes", &self.bytes).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_raii_release() {
        let pool = MemoryPool::new(Some(1000));
        let q = pool.register_query(None);
        {
            let mut r = q.reserve(300, ReservationKind::User).unwrap();
            r.grow(200).unwrap();
            assert_eq!(q.reserved(), 500);
            assert_eq!(pool.used(), 500);
        }
        assert_eq!(q.reserved(), 0);
        assert_eq!(pool.used(), 0);
        assert_eq!(q.peak(), 500);
    }

    #[test]
    fn per_query_budget_keeps_paper_message() {
        let pool = MemoryPool::unbounded();
        let q = pool.register_query(Some(100));
        let err = q.try_reserve(101, ReservationKind::User).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
        assert!(err.message().contains("Insufficient Resource"), "{err}");
        assert!(err.message().contains("budget is 100 bytes"), "{err}");
        assert_eq!(q.reserved(), 0, "failed reservation rolled back");
    }

    #[test]
    fn unbudgeted_huge_reservation_survives() {
        let pool = MemoryPool::unbounded();
        let q = pool.register_query(None);
        q.try_reserve(usize::MAX / 2, ReservationKind::User).unwrap();
        q.try_reserve(usize::MAX / 2, ReservationKind::User).unwrap();
        q.release(usize::MAX / 2, ReservationKind::User);
        q.release(usize::MAX / 2, ReservationKind::User);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn requester_with_revocable_memory_is_told_to_spill() {
        let pool = MemoryPool::new(Some(100));
        let q = pool.register_query(None);
        let _rev = q.reserve(80, ReservationKind::Revocable).unwrap();
        let err = q.try_reserve(50, ReservationKind::User).unwrap_err();
        assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
        assert!(err.message().contains("revocable"), "{err}");
        assert!(q.revoke_requested());
    }

    #[test]
    fn other_holders_get_revoke_requests() {
        let pool = MemoryPool::new(Some(100));
        let spiller = pool.register_query(None);
        let mut held = spiller.reserve(90, ReservationKind::Revocable).unwrap();
        let asker = pool.register_query(None);

        let spiller2 = spiller.clone();
        let waiter = std::thread::spawn(move || asker.try_reserve(50, ReservationKind::User));
        // the arbiter flags the revocable holder; simulate its spill
        for _ in 0..200 {
            if spiller2.revoke_requested() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(spiller2.revoke_requested());
        held.release_all();
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn arbiter_kills_the_largest_query() {
        let pool = MemoryPool::new(Some(100));
        let big = pool.register_query(None);
        let small = pool.register_query(None);
        let _big_held = big.reserve(80, ReservationKind::User).unwrap();
        let _small_held = small.reserve(10, ReservationKind::User).unwrap();

        // small wants more than what's left; nothing is revocable → the
        // arbiter kills `big` (the largest), and small proceeds once big's
        // memory frees.
        let big2 = big.clone();
        let killer = std::thread::spawn(move || small.try_reserve(40, ReservationKind::User));
        for _ in 0..200 {
            if big2.is_killed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(big2.is_killed());
        // the killed query's next reservation fails with the structured error
        let err = big2.try_reserve(1, ReservationKind::User).unwrap_err();
        assert_eq!(err.code(), "EXCEEDED_MEMORY_LIMIT");
        // ... and unwinding (dropping its reservations) unblocks the waiter
        drop(_big_held);
        killer.join().unwrap().unwrap();
    }

    #[test]
    fn largest_requester_kills_itself() {
        let pool = MemoryPool::new(Some(100));
        let q = pool.register_query(None);
        let _held = q.reserve(90, ReservationKind::User).unwrap();
        let err = q.try_reserve(50, ReservationKind::User).unwrap_err();
        assert_eq!(err.code(), "EXCEEDED_MEMORY_LIMIT");
        assert!(q.is_killed());
    }

    #[test]
    fn query_drop_frees_everything() {
        let pool = MemoryPool::new(Some(100));
        let q = pool.register_query(None);
        q.try_reserve(60, ReservationKind::User).unwrap();
        assert_eq!(pool.used(), 60);
        drop(q);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.query_count(), 0);
    }
}
