//! Spill-to-disk for blocking operators.
//!
//! When a blocking operator (hash aggregation, hash-join build, sort) is
//! asked to revoke memory, it serializes its partitions through the native
//! Parquet writer onto a [`FileSystem`] — the in-memory filesystem in tests,
//! a real tempdir in benches — and reads them back on drain. Reusing the
//! §V file format means spill files get the same columnar encodings and
//! codecs the warehouse files do, for free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use presto_common::metrics::{names, CounterSet};
use presto_common::{Field, Page, PrestoError, Result, Schema};
use presto_parquet::reader_new;
use presto_parquet::{
    BytesSource, FileWriter, ProjectedColumn, ReadOptions, WriterMode, WriterProperties,
};
use presto_storage::{FileSystem, InMemoryFileSystem};

/// Handle to one spilled run on disk.
#[derive(Debug, Clone)]
pub struct SpillFile {
    /// Path on the spill filesystem.
    pub path: String,
    /// Positional schema the pages were written under (fields renamed
    /// `c0..cN` so duplicate output names — e.g. a self-join's two `id`
    /// columns — stay writable).
    pub schema: Schema,
    /// Rows in the file.
    pub rows: usize,
    /// Serialized size in bytes.
    pub bytes: usize,
}

/// Writes and reads spill files for one query.
pub struct SpillManager {
    fs: Arc<dyn FileSystem>,
    dir: String,
    next: AtomicU64,
    metrics: CounterSet,
}

impl SpillManager {
    /// Manager writing under `dir` on `fs`; spill I/O counters land in
    /// `metrics` (`spill.bytes_written`, `spill.files`).
    pub fn new(
        fs: Arc<dyn FileSystem>,
        dir: impl Into<String>,
        metrics: CounterSet,
    ) -> SpillManager {
        SpillManager { fs, dir: dir.into(), next: AtomicU64::new(0), metrics }
    }

    /// Manager over a fresh in-memory filesystem (tests, standalone
    /// contexts).
    pub fn in_memory(metrics: CounterSet) -> SpillManager {
        SpillManager::new(Arc::new(InMemoryFileSystem::new()), "/spill", metrics)
    }

    /// The counter set spill I/O is accounted in.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Spill `pages` (all matching `schema` positionally) into one file.
    pub fn spill_pages(&self, schema: &Schema, pages: &[Page]) -> Result<SpillFile> {
        if schema.is_empty() {
            return Err(PrestoError::NotSupported("cannot spill zero-column pages".into()));
        }
        // Positional rename: plan output schemas may repeat names (self
        // joins), which the file format rejects.
        let spill_schema = Schema::new(
            schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| Field::new(format!("c{i}"), f.data_type.clone()))
                .collect(),
        )?;
        let mut writer =
            FileWriter::new(spill_schema.clone(), WriterProperties::default(), WriterMode::Native)?;
        let mut rows = 0usize;
        for page in pages {
            if page.is_empty() {
                continue;
            }
            rows += page.positions();
            writer.write_page(page)?;
        }
        let bytes = writer.finish()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let path = format!("{}/run-{id}.parquet", self.dir);
        self.fs.write(&path, &bytes)?;
        self.metrics.add(names::SPILL_BYTES_WRITTEN, bytes.len() as u64);
        self.metrics.incr(names::SPILL_FILES);
        Ok(SpillFile { path, schema: spill_schema, rows, bytes: bytes.len() })
    }

    /// Read a spilled run back (one page per row group).
    pub fn read(&self, file: &SpillFile) -> Result<Vec<Page>> {
        let data = self.fs.read(&file.path)?;
        let source = BytesSource::new(data);
        let projections: Vec<ProjectedColumn> =
            file.schema.fields().iter().map(|f| ProjectedColumn::whole(f.name.clone())).collect();
        let (pages, _stats) =
            reader_new::read(&source, &file.schema, &ReadOptions::new(projections))?;
        Ok(pages)
    }

    /// Delete a drained spill file.
    pub fn remove(&self, file: SpillFile) -> Result<()> {
        self.fs.delete(&file.path)
    }
}

impl std::fmt::Debug for SpillManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillManager").field("dir", &self.dir).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Block, DataType, Value};

    fn sample() -> (Schema, Vec<Page>) {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("city", DataType::Varchar),
            Field::new("fare", DataType::Double),
        ])
        .unwrap();
        let pages = vec![
            Page::new(vec![
                Block::bigint(vec![1, 2, 3]),
                Block::varchar(&["sf", "nyc", "sf"]),
                Block::double(vec![10.5, 20.25, 30.0]),
            ])
            .unwrap(),
            Page::new(vec![
                Block::bigint(vec![4, 5]),
                Block::varchar(&["la", "sf"]),
                Block::double(vec![40.0, 50.75]),
            ])
            .unwrap(),
        ];
        (schema, pages)
    }

    #[test]
    fn spill_round_trip_preserves_rows() {
        let metrics = CounterSet::new();
        let spill = SpillManager::in_memory(metrics.clone());
        let (schema, pages) = sample();
        let file = spill.spill_pages(&schema, &pages).unwrap();
        assert_eq!(file.rows, 5);
        assert!(metrics.get("spill.bytes_written") > 0);
        assert_eq!(metrics.get("spill.files"), 1);

        let back = spill.read(&file).unwrap();
        let original: Vec<Vec<Value>> = pages.iter().flat_map(|p| p.rows()).collect();
        let restored: Vec<Vec<Value>> = back.iter().flat_map(|p| p.rows()).collect();
        assert_eq!(original, restored);

        spill.remove(file).unwrap();
    }

    #[test]
    fn spill_schema_is_positional() {
        let dup = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("id2", DataType::Bigint),
        ])
        .unwrap();
        let page = Page::new(vec![Block::bigint(vec![1, 2]), Block::bigint(vec![10, 20])]).unwrap();
        let spill = SpillManager::in_memory(CounterSet::new());
        let file = spill.spill_pages(&dup, std::slice::from_ref(&page)).unwrap();
        let back = spill.read(&file).unwrap();
        assert_eq!(back[0].rows(), page.rows());
    }

    #[test]
    fn zero_column_pages_are_rejected() {
        let spill = SpillManager::in_memory(CounterSet::new());
        let schema = Schema::empty();
        let err = spill.spill_pages(&schema, &[Page::zero_column(3)]).unwrap_err();
        assert_eq!(err.code(), "NOT_SUPPORTED");
    }
}
