//! Virtual-time weighted fair queuing across tenants, on top of the
//! admission lanes.
//!
//! The [`admission`](crate::admission) module's priority lanes solve one
//! §XII problem — dashboards must not wait behind batch — but inside a
//! lane the queue is FIFO, so one tenant submitting thousands of queries
//! (the Zipf head of a multi-tenant cluster) starves every light tenant
//! in the same lane. [`WfqScheduler`] fixes that with *start-time fair
//! queuing*: each query is stamped with a virtual finish tag
//! `start + cost / weight`, where `start` chains per tenant
//! (`max(global virtual time, tenant's last finish)`), and dispatch
//! always serves the earliest finish tag in the most urgent lane.
//! A tenant's backlog therefore advances its own tags far into the
//! virtual future while a fresh light tenant's first query is tagged at
//! the current virtual time and jumps the backlog.
//!
//! **Fairness invariant** (checked by the simulator's property tests): the
//! virtual finish tag of the query being served never leads the global
//! virtual time by more than one *weighted quantum* — the largest cost
//! seen so far divided by the tenant's weight. No tenant gets more than
//! one quantum of service ahead of a backlogged competitor.
//!
//! Everything here is integer arithmetic on deterministic inputs, so a
//! schedule is a pure function of the push/pop sequence: same workload,
//! same dispatch order, on every host.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::admission::QueryPriority;

/// Virtual-time units per microsecond of cost at weight 1. The scale
/// keeps integer division by the weight from rounding small costs to 0.
const VIRTUAL_SCALE: u64 = 1024;

/// Burst allowance, in per-tenant strides (a stride is `cost / weight` in
/// virtual units). A tenant's first few queued queries keep fresh tags —
/// a short burst is served like independent arrivals, the way a
/// token-bucket regulator forgives σ of burst — and only a backlog deeper
/// than this chains into the virtual future and gets deferred behind
/// lighter tenants. Without the allowance, per-tenant fairness punishes
/// every 3-query burst as if it were a flood, and a batch tenant's p99
/// balloons past what a plain FIFO would have given it.
const BURST_ALLOWANCE_STRIDES: u64 = 5;

/// One query waiting for a dispatch slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedQuery {
    /// Tenant (fair-queuing flow) the query belongs to.
    pub tenant: u32,
    /// Admission lane (drains strictly before less urgent lanes).
    pub lane: QueryPriority,
    /// Opaque payload — the simulator's query index.
    pub item: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct TenantState {
    weight: u64,
    /// Virtual finish tag of the tenant's most recently *tagged* query
    /// (the end of its backlog in virtual time).
    last_finish: u64,
    /// Virtual finish tag of the tenant's most recently *served* query.
    served_finish: u64,
    queued: usize,
}

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    /// (lane rank, virtual finish tag, push sequence) — the dispatch key.
    key: (u8, u64, u64),
    start: u64,
    query: QueuedQuery,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Weighted fair queue: earliest virtual finish tag within the most
/// urgent non-empty lane wins.
#[derive(Debug, Default)]
pub struct WfqScheduler {
    heap: BinaryHeap<Reverse<Entry>>,
    tenants: HashMap<u32, TenantState>,
    vtime: u64,
    seq: u64,
    max_cost_us: u64,
}

impl WfqScheduler {
    /// An empty scheduler.
    pub fn new() -> WfqScheduler {
        WfqScheduler::default()
    }

    /// Enqueue one query for `tenant` with the given lane, estimated cost
    /// (virtual µs of service) and fair-share weight (≥ 1; a heavier
    /// weight means a larger share). The weight sticks to the tenant: the
    /// first push fixes it, later pushes reuse it — re-weighting mid-flight
    /// would invalidate the finish tags of queries already queued.
    pub fn push(&mut self, tenant: u32, weight: u64, lane: QueryPriority, cost_us: u64, item: u64) {
        self.max_cost_us = self.max_cost_us.max(cost_us);
        let state = self
            .tenants
            .entry(tenant)
            .or_insert_with(|| TenantState { weight: weight.max(1), ..TenantState::default() });
        let weight = state.weight;
        let stride = cost_us.saturating_mul(VIRTUAL_SCALE) / weight;
        // the chain accumulates the tenant's full backlog in virtual time…
        let chained = self.vtime.max(state.last_finish) + stride;
        state.last_finish = chained;
        // …but the dispatch tag forgives a burst-allowance of it: only
        // backlog deeper than the allowance is deferred past fresh tags
        let finish = (self.vtime + stride)
            .max(chained.saturating_sub(BURST_ALLOWANCE_STRIDES.saturating_mul(stride)));
        let start = finish - stride;
        state.queued += 1;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            key: (lane_rank(lane), finish, self.seq),
            start,
            query: QueuedQuery { tenant, lane, item },
        }));
    }

    /// Dispatch the next query: most urgent lane first, earliest virtual
    /// finish tag within it, push order as the tie-break. Advances the
    /// global virtual time to the served query's start tag.
    pub fn pop(&mut self) -> Option<QueuedQuery> {
        self.pop_if(|_| true)
    }

    /// Dispatch the virtual-time head *only if its resource demand fits*
    /// (`fits` decides). A blocked head keeps its tags and its units
    /// accumulate — no query behind it in the same or a less urgent lane
    /// may jump it, which is what saves a wide batch query from being
    /// starved by an endless stream of small ones. But a *more urgent*
    /// lane sorts ahead of the blocked head outright, so fresh interactive
    /// arrivals keep flowing while a batch grant waits — the naive FIFO's
    /// arrival-order head blocks those too.
    pub fn pop_if(&mut self, fits: impl Fn(&QueuedQuery) -> bool) -> Option<QueuedQuery> {
        let head = self.heap.peek()?;
        if !fits(&head.0.query) {
            return None;
        }
        self.serve()
    }

    /// Dispatch the first query in virtual-time order that passes `fits`,
    /// skipping past ones that don't. Skipped queries keep their tags and
    /// their place. This is the *backfill* path: when the virtual-time
    /// head's resource grant is too wide for the free capacity, the
    /// scheduler may run a smaller query behind it — the caller is
    /// responsible for only admitting backfills that cannot delay the
    /// blocked head (e.g. ones estimated to finish before the head's
    /// grant could be satisfied anyway), which is what keeps a wide query
    /// from being starved by a stream of narrow ones.
    pub fn pop_first_fit(
        &mut self,
        mut fits: impl FnMut(&QueuedQuery) -> bool,
    ) -> Option<QueuedQuery> {
        let mut skipped = Vec::new();
        let mut found = false;
        while let Some(head) = self.heap.peek() {
            if fits(&head.0.query) {
                found = true;
                break;
            }
            if let Some(entry) = self.heap.pop() {
                skipped.push(entry);
            }
        }
        let served = if found { self.serve() } else { None };
        for entry in skipped {
            self.heap.push(entry);
        }
        served
    }

    /// The first query in virtual-time order that *fails* `fits`, without
    /// dispatching anything. This is how a dispatcher finds the query a
    /// standing reservation should protect: the earliest-tag query whose
    /// resource grant is wider than the free capacity. Scanning only the
    /// head is not enough — under strict lane priority a stream of narrow
    /// urgent queries keeps the head fitting forever while a wide query
    /// one lane down waits for free capacity that is raided the moment it
    /// appears.
    pub fn peek_first_unfit(&mut self, fits: impl Fn(&QueuedQuery) -> bool) -> Option<QueuedQuery> {
        let mut skipped = Vec::new();
        let mut found = None;
        while let Some(entry) = self.heap.pop() {
            let query = entry.0.query;
            let fit = fits(&query);
            skipped.push(entry);
            if !fit {
                found = Some(query);
                break;
            }
        }
        for entry in skipped {
            self.heap.push(entry);
        }
        found
    }

    /// Pop the heap head and account it as served.
    fn serve(&mut self) -> Option<QueuedQuery> {
        let Reverse(entry) = self.heap.pop()?;
        self.vtime = self.vtime.max(entry.start);
        if let Some(state) = self.tenants.get_mut(&entry.query.tenant) {
            state.queued = state.queued.saturating_sub(1);
            state.served_finish = entry.key.1;
        }
        Some(entry.query)
    }

    /// The query at the virtual-time head, without dispatching it.
    pub fn peek(&self) -> Option<&QueuedQuery> {
        self.heap.peek().map(|e| &e.0.query)
    }

    /// Queries waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The global virtual time (start tag of the last served query).
    pub fn vtime(&self) -> u64 {
        self.vtime
    }

    /// Virtual finish tag of `tenant`'s most recently served query.
    pub fn served_finish(&self, tenant: u32) -> u64 {
        self.tenants.get(&tenant).map(|t| t.served_finish).unwrap_or(0)
    }

    /// Queries `tenant` still has waiting.
    pub fn backlog(&self, tenant: u32) -> usize {
        self.tenants.get(&tenant).map(|t| t.queued).unwrap_or(0)
    }

    /// One weighted quantum for `tenant`: the largest cost seen so far
    /// divided by the tenant's weight, in virtual units. The fairness
    /// invariant bounds any served query's finish-tag lead over
    /// [`WfqScheduler::vtime`] by this.
    pub fn quantum(&self, tenant: u32) -> u64 {
        let weight = self.tenants.get(&tenant).map(|t| t.weight.max(1)).unwrap_or(1);
        self.max_cost_us.saturating_mul(VIRTUAL_SCALE) / weight
    }
}

/// The naive counterfactual: one global FIFO queue that ignores lanes,
/// tenants, weights and costs — strict arrival order, §XII before
/// admission lanes existed. The simulator runs the same workload through
/// both disciplines to quantify what fair queuing buys.
#[derive(Debug, Default)]
pub struct FifoQueue {
    queue: VecDeque<QueuedQuery>,
}

impl FifoQueue {
    /// An empty queue.
    pub fn new() -> FifoQueue {
        FifoQueue::default()
    }

    /// Enqueue in arrival order.
    pub fn push(&mut self, query: QueuedQuery) {
        self.queue.push_back(query);
    }

    /// Dispatch the oldest arrival.
    pub fn pop(&mut self) -> Option<QueuedQuery> {
        self.queue.pop_front()
    }

    /// The oldest arrival, without dispatching it.
    pub fn peek(&self) -> Option<&QueuedQuery> {
        self.queue.front()
    }

    /// Dispatch the oldest arrival *only if its resource demand fits*.
    /// A strict FIFO cannot look past its head: when the oldest query
    /// needs more slots than are free, everything behind it waits and the
    /// free capacity idles — the head-of-line blocking that motivated
    /// replacing the naive admission queue.
    pub fn pop_if(&mut self, fits: impl Fn(&QueuedQuery) -> bool) -> Option<QueuedQuery> {
        if fits(self.queue.front()?) {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// Dispatch the oldest arrival whose resource demand fits, skipping
    /// any that do not. This is the *greedy* work-conserving FIFO that
    /// pre-fair-sharing admission queues actually run: it never idles
    /// capacity, but a steady stream of narrow queries slips past a wide
    /// head forever — the large-query starvation that weighted fair
    /// queuing with a standing reservation exists to fix.
    pub fn pop_first_fit(&mut self, fits: impl Fn(&QueuedQuery) -> bool) -> Option<QueuedQuery> {
        let at = self.queue.iter().position(fits)?;
        self.queue.remove(at)
    }

    /// Queries waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

fn lane_rank(p: QueryPriority) -> u8 {
    match p {
        QueryPriority::High => 0,
        QueryPriority::Normal => 1,
        QueryPriority::Low => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_tenant_jumps_a_heavy_backlog() {
        let mut q = WfqScheduler::new();
        // tenant 1 floods 10 queries before tenant 2's single query arrives
        for i in 0..10 {
            q.push(1, 1, QueryPriority::Normal, 1000, i);
        }
        q.push(2, 1, QueryPriority::Normal, 1000, 100);
        // the burst allowance forgives tenant 1's first few queries, but
        // tenant 2's single query beats the rest of the flood
        let order: Vec<u64> = (0..11).filter_map(|_| q.pop().map(|x| x.item)).collect();
        let pos = order.iter().position(|&i| i == 100).unwrap();
        assert_eq!(pos, 1 + BURST_ALLOWANCE_STRIDES as usize, "{order:?}");
    }

    #[test]
    fn weights_scale_the_share() {
        let mut q = WfqScheduler::new();
        // deep equal backlogs; tenant 2 has 2x the weight. The burst
        // allowance forgives both tenants' first few queries outright, so
        // the 2:1 service ratio only emerges past that transient.
        for i in 0..30 {
            q.push(1, 1, QueryPriority::Normal, 100, i);
            q.push(2, 2, QueryPriority::Normal, 100, 100 + i);
        }
        let order: Vec<u32> = (0..60).filter_map(|_| q.pop().map(|x| x.tenant)).collect();
        let transient = 2 * (1 + BURST_ALLOWANCE_STRIDES as usize);
        let window = &order[transient..transient + 18];
        let tenant2 = window.iter().filter(|&&t| t == 2).count();
        assert_eq!(tenant2, 12, "{order:?}");
    }

    #[test]
    fn lanes_drain_strictly_in_priority_order() {
        let mut q = WfqScheduler::new();
        q.push(1, 1, QueryPriority::Low, 10, 0);
        q.push(1, 1, QueryPriority::Normal, 10, 1);
        q.push(2, 1, QueryPriority::High, 10, 2);
        let order: Vec<u64> = (0..3).filter_map(|_| q.pop().map(|x| x.item)).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn finish_tag_lead_is_bounded_by_one_weighted_quantum() {
        let mut q = WfqScheduler::new();
        for i in 0..50 {
            let tenant = u32::try_from(i % 5).unwrap();
            q.push(tenant, 1 + u64::from(tenant % 3), QueryPriority::Normal, 50 + i * 7, i);
        }
        while let Some(served) = q.pop() {
            let lead = q.served_finish(served.tenant).saturating_sub(q.vtime());
            assert!(
                lead <= q.quantum(served.tenant),
                "tenant {} leads by {lead} > quantum {}",
                served.tenant,
                q.quantum(served.tenant)
            );
        }
    }

    #[test]
    fn blocked_head_gates_the_queue_but_backfill_can_pass() {
        let mut q = WfqScheduler::new();
        q.push(1, 1, QueryPriority::Normal, 10, 0); // head: pretend it won't fit
        q.push(2, 1, QueryPriority::Normal, 1000, 1);
        // head-gated dispatch refuses to jump the blocked head
        assert_eq!(q.pop_if(|x| x.item != 0), None);
        assert_eq!(q.len(), 2);
        // backfill dispatch may pass it; the head keeps its place
        assert_eq!(q.pop_first_fit(|x| x.item != 0).map(|x| x.item), Some(1));
        assert_eq!(q.pop().map(|x| x.item), Some(0));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_head_of_line_blocks_when_the_head_does_not_fit() {
        let mut q = FifoQueue::new();
        q.push(QueuedQuery { tenant: 1, lane: QueryPriority::Normal, item: 0 });
        q.push(QueuedQuery { tenant: 2, lane: QueryPriority::Normal, item: 1 });
        // the head doesn't fit -> nothing dispatches, even though item 1 would
        assert_eq!(q.pop_if(|x| x.item == 1), None);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_if(|_| true).map(|x| x.item), Some(0));
    }

    #[test]
    fn fifo_ignores_lanes_and_tenants() {
        let mut q = FifoQueue::new();
        q.push(QueuedQuery { tenant: 1, lane: QueryPriority::Low, item: 0 });
        q.push(QueuedQuery { tenant: 2, lane: QueryPriority::High, item: 1 });
        assert_eq!(q.pop().map(|x| x.item), Some(0));
        assert_eq!(q.pop().map(|x| x.item), Some(1));
        assert!(q.is_empty());
    }
}
