//! Criterion bench for Figs 18–20: legacy vs native Parquet writer across
//! the 11 column workloads × 3 codecs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presto_bench::writers::write_once;
use presto_common::Page;
use presto_connectors::tpch::{writer_workload, writer_workload_names};
use presto_parquet::{Codec, WriterMode};

fn bench_writers(c: &mut Criterion) {
    for (codec, figure) in
        [(Codec::Fast, "fig18_snappy"), (Codec::Deep, "fig19_gzip"), (Codec::None, "fig20_none")]
    {
        let mut group = c.benchmark_group(figure);
        group.sample_size(10);
        for name in writer_workload_names() {
            let (schema, page) = writer_workload(name, 30_000, 42).unwrap();
            let pages = vec![page];
            let bytes: usize = pages.iter().map(Page::memory_size).sum();
            group.throughput(Throughput::Bytes(bytes as u64));
            group.bench_function(format!("{name}/old_writer"), |b| {
                b.iter(|| {
                    std::hint::black_box(write_once(&schema, &pages, WriterMode::Legacy, codec).1)
                });
            });
            group.bench_function(format!("{name}/native_writer"), |b| {
                b.iter(|| {
                    std::hint::black_box(write_once(&schema, &pages, WriterMode::Native, codec).1)
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_writers);
criterion_main!(benches);
