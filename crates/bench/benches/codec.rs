//! Criterion bench for the compression codecs: the `Fast` (Snappy-profile)
//! codec must be markedly faster than `Deep` (Gzip-profile), and `Deep` must
//! compress better — the cost-profile substitution Figs 18–20 rely on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presto_parquet::Codec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_payloads() -> Vec<(&'static str, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut text = Vec::new();
    for i in 0..20_000 {
        text.extend_from_slice(
            format!("driver_uuid=d{:05} city={} status=completed ", i % 700, i % 40).as_bytes(),
        );
    }
    let random: Vec<u8> = (0..1_000_000).map(|_| rng.gen::<u64>() as u8).collect();
    let mut ints = Vec::new();
    for i in 0..125_000i64 {
        ints.extend_from_slice(&(i % 1000).to_le_bytes());
    }
    vec![("text", text), ("random", random), ("bigint_le", ints)]
}

fn bench_codecs(c: &mut Criterion) {
    for (payload_name, data) in test_payloads() {
        let mut group = c.benchmark_group(format!("codec/{payload_name}"));
        group.sample_size(10);
        group.throughput(Throughput::Bytes(data.len() as u64));
        for codec in [Codec::Fast, Codec::Deep] {
            let label = match codec {
                Codec::Fast => "fast_compress",
                Codec::Deep => "deep_compress",
                Codec::None => unreachable!(),
            };
            group.bench_function(label, |b| {
                b.iter(|| std::hint::black_box(codec.compress(&data).len()));
            });
            let compressed = codec.compress(&data);
            let label = match codec {
                Codec::Fast => "fast_decompress",
                Codec::Deep => "deep_decompress",
                Codec::None => unreachable!(),
            };
            group.bench_function(label, |b| {
                b.iter(|| std::hint::black_box(codec.decompress(&compressed).unwrap().len()));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
