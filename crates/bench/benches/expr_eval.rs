//! Criterion bench for expression evaluation: the vectorized fast paths vs
//! the row-at-a-time oracle (§III's "vectorized, instead of row by row"),
//! plus dictionary-aware evaluation (§V.G's payoff inside the engine).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use presto_common::{Block, DataType, Page};
use presto_expr::{Evaluator, FunctionHandle, FunctionRegistry, RowExpression};

fn bench_eval(c: &mut Criterion) {
    let evaluator = Evaluator::new(FunctionRegistry::new());
    let rows = 100_000usize;
    let page = Page::new(vec![Block::bigint((0..rows as i64).collect())]).unwrap();
    let expr = RowExpression::Call {
        handle: FunctionHandle::new(
            "eq",
            vec![DataType::Bigint, DataType::Bigint],
            DataType::Boolean,
        ),
        args: vec![
            RowExpression::column("city_id", 0, DataType::Bigint),
            RowExpression::bigint(12),
        ],
    };

    let mut group = c.benchmark_group("expr_eval");
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("vectorized_eq", |b| {
        b.iter(|| std::hint::black_box(evaluator.evaluate(&expr, &page).unwrap().len()));
    });
    group.bench_function("row_at_a_time_eq", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for i in 0..page.positions() {
                let row = page.row(i);
                if evaluator.evaluate_scalar(&expr, &row).unwrap()
                    == presto_common::Value::Boolean(true)
                {
                    count += 1;
                }
            }
            std::hint::black_box(count)
        });
    });

    // dictionary-aware evaluation: upper() over a dictionary block
    let dict = Block::varchar(&(0..32).map(|i| format!("city{i}")).collect::<Vec<_>>());
    let ids: Vec<u32> = (0..rows as u32).map(|i| i % 32).collect();
    let dict_page =
        Page::new(vec![Block::Dictionary { dictionary: Box::new(dict.clone()), ids }]).unwrap();
    let flat_page = Page::new(vec![dict_page.block(0).decode_dictionary()]).unwrap();
    let upper = RowExpression::Call {
        handle: FunctionHandle::new("upper", vec![DataType::Varchar], DataType::Varchar),
        args: vec![RowExpression::column("city", 0, DataType::Varchar)],
    };
    group.bench_function("upper_dictionary_block", |b| {
        b.iter(|| std::hint::black_box(evaluator.evaluate(&upper, &dict_page).unwrap().len()));
    });
    group.bench_function("upper_flat_block", |b| {
        b.iter(|| std::hint::black_box(evaluator.evaluate(&upper, &flat_page).unwrap().len()));
    });
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
