//! Criterion bench for Fig 16: Druid native vs Presto-Druid connector.
//!
//! Wall-clock CPU time of both paths on representative queries from the
//! 20-query mix (the full figure with virtual-latency accounting is printed
//! by `paper-experiments fig16`).

use criterion::{criterion_group, criterion_main, Criterion};
use presto_bench::fig16;
use presto_core::Session;

fn bench_fig16(c: &mut Criterion) {
    let workload = fig16::build(50_000);
    let session = Session::new("druid", "prod");
    let mut group = c.benchmark_group("fig16");
    group.sample_size(20);
    // one aggregation query, one limit query, one scan
    for idx in [0usize, 12, 17] {
        let query = &workload.queries[idx];
        group.bench_function(format!("{}_native", query.name), |b| {
            b.iter(|| match &query.native_scan_columns {
                None => {
                    std::hint::black_box(
                        workload
                            .connector
                            .store()
                            .execute_native("prod", "events", &query.native, None)
                            .unwrap()
                            .rows
                            .len(),
                    );
                }
                Some(cols) => {
                    std::hint::black_box(
                        workload
                            .connector
                            .store()
                            .scan_segments(
                                "prod",
                                "events",
                                cols,
                                &query.native.filters,
                                query.native.limit,
                                None,
                            )
                            .unwrap()
                            .0
                            .len(),
                    );
                }
            });
        });
        group.bench_function(format!("{}_connector", query.name), |b| {
            b.iter(|| {
                std::hint::black_box(
                    workload.engine.execute_with_session(&query.sql, &session).unwrap().row_count(),
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig16);
criterion_main!(benches);
