//! Criterion bench for Fig 17: legacy vs new Parquet reader, including the
//! per-optimization ablation (§V.D–§V.I) the paper's reader work motivates.

use criterion::{criterion_group, criterion_main, Criterion};
use presto_bench::fig17;
use presto_connectors::hive::HiveReaderConfig;
use presto_core::Session;

fn bench_readers(c: &mut Criterion) {
    let workload = fig17::build(20_000);
    let session = Session::new("hive", "rawdata");
    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    // one representative query per category
    for idx in [0usize, 2, 4, 9] {
        let query = &workload.queries[idx];
        for (label, legacy) in [("old_reader", true), ("new_reader", false)] {
            group.bench_function(format!("{}_{label}", query.name), |b| {
                workload.hive.set_reader_config(HiveReaderConfig {
                    use_legacy_reader: legacy,
                    ..HiveReaderConfig::default()
                });
                b.iter(|| {
                    std::hint::black_box(
                        workload
                            .engine
                            .execute_with_session(&query.sql, &session)
                            .unwrap()
                            .row_count(),
                    );
                });
            });
        }
    }
    group.finish();
}

/// Ablation: the needle-in-a-haystack query with each new-reader feature
/// disabled in turn — the design-choice breakdown of §V.
fn bench_ablation(c: &mut Criterion) {
    let workload = fig17::build(20_000);
    let session = Session::new("hive", "rawdata");
    let needle = &workload.queries[2]; // q03
    let mut group = c.benchmark_group("fig17_ablation");
    group.sample_size(10);
    let configs: Vec<(&str, HiveReaderConfig)> = vec![
        ("all_on", HiveReaderConfig::default()),
        (
            "no_stats_pushdown",
            HiveReaderConfig { stats_pushdown: false, ..HiveReaderConfig::default() },
        ),
        (
            "no_dictionary_pushdown",
            HiveReaderConfig { dictionary_pushdown: false, ..HiveReaderConfig::default() },
        ),
        ("no_lazy_reads", HiveReaderConfig { lazy_reads: false, ..HiveReaderConfig::default() }),
        ("no_vectorization", HiveReaderConfig { vectorized: false, ..HiveReaderConfig::default() }),
    ];
    for (label, config) in configs {
        group.bench_function(label, |b| {
            workload.hive.set_reader_config(config.clone());
            b.iter(|| {
                std::hint::black_box(
                    workload
                        .engine
                        .execute_with_session(&needle.sql, &session)
                        .unwrap()
                        .row_count(),
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_readers, bench_ablation);
criterion_main!(benches);
