//! Criterion bench for the §VI geospatial experiment: QuadTree vs brute
//! force point-in-geofence matching (paper: >50x).

use criterion::{criterion_group, criterion_main, Criterion};
use presto_geo::generator::GeoWorkload;
use presto_geo::index::GeofenceIndex;

fn bench_geo(c: &mut Criterion) {
    let workload = GeoWorkload::generate(1_000, 5_000, 150, 7);
    let index = GeofenceIndex::build(workload.cities.clone()).unwrap();
    let mut group = c.benchmark_group("geo");
    group.sample_size(10);
    group.bench_function("quadtree", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for p in &workload.trips {
                matched += index.find_containing(p).len();
            }
            std::hint::black_box(matched)
        });
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for p in &workload.trips {
                matched += index.find_containing_brute_force(p).len();
            }
            std::hint::black_box(matched)
        });
    });
    group.bench_function("build_geo_index", |b| {
        b.iter(|| {
            std::hint::black_box(GeofenceIndex::build(workload.cities.clone()).unwrap().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_geo);
criterion_main!(benches);
