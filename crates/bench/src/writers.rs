//! Figs 18–20: legacy vs native Parquet writer throughput under three
//! codecs.
//!
//! "We run the experiments by using Presto writing a list of pages with
//! millions of rows. The following figures show various types of data
//! throughput with Snappy compression, Gzip compression, and no compression.
//! ... our native Parquet writer could consistently achieve more than 20%
//! throughput \[gain\]. For bigint type with Gzip compression, our native
//! parquet writer performs best ... When writing all columns of TPCH
//! LINEITEM, the throughput gain is around 50%."
//!
//! Throughput = in-memory page bytes / wall time, as MB/s, matching the
//! figures' y-axis.

use std::time::{Duration, Instant};

use presto_common::{Page, Schema};
use presto_connectors::tpch::{writer_workload, writer_workload_names};
use presto_parquet::{Codec, FileWriter, WriterMode, WriterProperties};

/// One workload × codec × writer measurement.
#[derive(Debug, Clone)]
pub struct WriterResult {
    /// Workload name (the figures' x-axis labels).
    pub workload: String,
    /// Codec.
    pub codec: Codec,
    /// Bytes of page data written.
    pub input_bytes: usize,
    /// Legacy writer elapsed.
    pub old_elapsed: Duration,
    /// Native writer elapsed.
    pub native_elapsed: Duration,
}

impl WriterResult {
    /// Legacy throughput (MB/s).
    pub fn old_mbps(&self) -> f64 {
        self.input_bytes as f64 / (1024.0 * 1024.0) / self.old_elapsed.as_secs_f64().max(1e-9)
    }

    /// Native throughput (MB/s).
    pub fn native_mbps(&self) -> f64 {
        self.input_bytes as f64 / (1024.0 * 1024.0) / self.native_elapsed.as_secs_f64().max(1e-9)
    }

    /// Native gain over legacy, in percent.
    pub fn gain_pct(&self) -> f64 {
        (self.native_mbps() / self.old_mbps().max(1e-9) - 1.0) * 100.0
    }
}

/// Write `pages` with the given writer mode and codec; returns elapsed time
/// and output size.
pub fn write_once(
    schema: &Schema,
    pages: &[Page],
    mode: WriterMode,
    codec: Codec,
) -> (Duration, usize) {
    let props = WriterProperties { codec, row_group_rows: 10_000, ..WriterProperties::default() };
    let start = Instant::now();
    let mut writer = FileWriter::new(schema.clone(), props, mode).expect("schema is valid");
    for page in pages {
        writer.write_page(page).expect("write_page");
    }
    let bytes = writer.finish().expect("finish");
    (start.elapsed(), bytes.len())
}

/// Measure one workload under one codec, both writers.
pub fn run_workload(name: &str, rows: usize, codec: Codec, seed: u64) -> WriterResult {
    let (schema, page) = writer_workload(name, rows, seed).expect("known workload");
    let pages = vec![page];
    let input_bytes: usize = pages.iter().map(Page::memory_size).sum();
    // alternate to be fair to caches; single measured pass each (the
    // paper-experiments binary repeats; criterion does proper sampling)
    let (old_elapsed, old_size) = write_once(&schema, &pages, WriterMode::Legacy, codec);
    let (native_elapsed, native_size) = write_once(&schema, &pages, WriterMode::Native, codec);
    assert_eq!(old_size, native_size, "writers must produce identical files");
    WriterResult { workload: name.to_string(), codec, input_bytes, old_elapsed, native_elapsed }
}

/// Run a whole figure (one codec over all 11 workloads).
pub fn run_figure(codec: Codec, rows: usize) -> Vec<WriterResult> {
    writer_workload_names().iter().map(|name| run_workload(name, rows, codec, 42)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writers_produce_identical_bytes_for_every_workload_and_codec() {
        for name in writer_workload_names() {
            for codec in [Codec::None, Codec::Fast, Codec::Deep] {
                let (schema, page) = writer_workload(name, 300, 7).unwrap();
                let props = WriterProperties { codec, ..WriterProperties::default() };
                let mut old =
                    FileWriter::new(schema.clone(), props.clone(), WriterMode::Legacy).unwrap();
                old.write_page(&page).unwrap();
                let old_bytes = old.finish().unwrap();
                let mut native =
                    FileWriter::new(schema.clone(), props, WriterMode::Native).unwrap();
                native.write_page(&page).unwrap();
                let native_bytes = native.finish().unwrap();
                assert_eq!(old_bytes, native_bytes, "{name} under {codec:?}");
            }
        }
    }

    #[test]
    fn measurement_machinery_works() {
        let r = run_workload("bigint_sequential", 5_000, Codec::Fast, 1);
        assert!(r.input_bytes > 0);
        assert!(r.old_mbps() > 0.0);
        assert!(r.native_mbps() > 0.0);
    }
}
