//! Distributed-cache bench: a Zipfian table-popularity trace replayed
//! against the cluster-wide tiered cache at a sweep of capacities.
//!
//! What the `paper-experiments cache` gate checks, per sweep point:
//!
//! - **Monotonicity**: a bigger data tier never hits less on the same
//!   trace (LRU inclusion holds per shard, and the shard layout is fixed
//!   by the ring, so the sweep must be monotone).
//! - **Shadow accuracy**: the key-only [`ShadowCache`] predicts the
//!   hit-rate-vs-capacity curve of a real LRU replay of the same trace to
//!   within a small tolerance (Mattson's stack-distance argument makes the
//!   single-LRU comparison *exact*; the gate allows 5% slack so the bench
//!   stays robust to future admission-policy changes).
//! - **Determinism**: the same seed produces bit-identical cache digests
//!   across two full replays.
//! - **Minimal remap**: removing one worker from a fleet of `n` remaps
//!   only the keys that worker owned — about `keys/n`, never more than
//!   `keys/n` plus slack — for every fleet size in 2..=32.
//!
//! Everything is driven by `presto_common::rng` draws, so the trace is a
//! pure function of the seed — no wall-clock, no global RNG.

use presto_cache::{ChunkKey, DistributedCache, DistributedCacheConfig, LruCache, ShadowCache};
use presto_common::metrics::{names, CounterSet};
use presto_common::rng::unit_draw;
use presto_common::{HashRing, SimClock};
use std::sync::Arc;
use std::time::Duration;

/// Trace and sweep parameters.
#[derive(Debug, Clone)]
pub struct CacheBenchConfig {
    /// Seed for the whole trace.
    pub seed: u64,
    /// Workers on the ring during the sweep.
    pub workers: u32,
    /// Tables in the warehouse, ranked by popularity.
    pub tables: usize,
    /// Zipf exponent over table rank (1.0 ≈ classic web skew).
    pub zipf_s: f64,
    /// Files per table.
    pub files_per_table: usize,
    /// Row groups per file.
    pub row_groups: u32,
    /// Columns per row group.
    pub columns: u32,
    /// Chunk accesses in the trace.
    pub accesses: usize,
    /// Per-shard data-tier capacities to sweep.
    pub capacities: Vec<usize>,
}

impl Default for CacheBenchConfig {
    fn default() -> Self {
        CacheBenchConfig {
            seed: 7,
            workers: 4,
            tables: 20,
            zipf_s: 1.0,
            files_per_table: 8,
            row_groups: 4,
            columns: 3,
            accesses: 6_000,
            capacities: vec![16, 32, 64, 128, 256],
        }
    }
}

/// One capacity point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPoint {
    /// Per-shard data-tier capacity.
    pub capacity: usize,
    /// Data-tier hits over the trace.
    pub hits: u64,
    /// Data-tier misses over the trace.
    pub misses: u64,
    /// End-of-trace cache digest (determinism gate).
    pub digest: u64,
    /// Shadow-predicted hit percent at the trace's *aggregate* capacity
    /// (shard capacity × workers).
    pub shadow_predicted_pct: f64,
    /// Measured hit percent of a single LRU of that aggregate capacity
    /// replaying the same key stream — the curve the shadow estimates.
    pub lru_measured_pct: f64,
}

impl CapacityPoint {
    /// Measured distributed hit percent.
    pub fn hit_pct(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses).max(1) as f64 * 100.0
    }

    /// |shadow − measured| for the aggregate-LRU curve.
    pub fn shadow_error_pct(&self) -> f64 {
        (self.shadow_predicted_pct - self.lru_measured_pct).abs()
    }
}

/// One fleet size of the minimal-remap check.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapPoint {
    /// Workers before the removal.
    pub fleet: u32,
    /// Keys probed.
    pub keys: usize,
    /// Keys whose owner changed after removing one worker.
    pub moved: usize,
    /// Keys the removed worker owned (the only ones allowed to move).
    pub owned_by_victim: usize,
    /// The `keys/n + slack` ceiling the gate enforces.
    pub bound: usize,
}

impl RemapPoint {
    /// Does the minimal-remap property hold at this fleet size?
    pub fn holds(&self) -> bool {
        self.moved == self.owned_by_victim && self.moved <= self.bound
    }
}

/// Everything one bench run produced.
#[derive(Debug, Clone)]
pub struct CacheBenchResult {
    /// The capacity sweep, ascending.
    pub sweep: Vec<CapacityPoint>,
    /// Second-replay digests matched the first at every capacity.
    pub deterministic: bool,
    /// Minimal-remap results for fleets of 2..=32.
    pub remap: Vec<RemapPoint>,
}

impl CacheBenchResult {
    /// Hit rate never decreases as capacity grows (small float slack).
    pub fn monotone(&self) -> bool {
        self.sweep.windows(2).all(|w| w[1].hit_pct() + 1e-9 >= w[0].hit_pct())
    }

    /// Largest |shadow − measured| across the sweep.
    pub fn worst_shadow_error_pct(&self) -> f64 {
        self.sweep.iter().map(CapacityPoint::shadow_error_pct).fold(0.0, f64::max)
    }

    /// Every fleet size kept the minimal-remap property.
    pub fn remap_holds(&self) -> bool {
        self.remap.iter().all(RemapPoint::holds)
    }
}

/// The Zipfian chunk trace: access `i` draws a table by rank-popularity,
/// then a uniform (file, row group, column) within it.
pub fn trace(config: &CacheBenchConfig) -> Vec<ChunkKey> {
    // CDF over table ranks: weight(rank r, 1-based) = 1 / r^s
    let weights: Vec<f64> =
        (1..=config.tables).map(|r| 1.0 / (r as f64).powf(config.zipf_s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(config.tables);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..config.accesses)
        .map(|i| {
            let u = unit_draw(config.seed, 1, i as u64);
            let table = cdf.iter().position(|&c| u <= c).unwrap_or(config.tables - 1);
            let file = (unit_draw(config.seed, 2, i as u64) * config.files_per_table as f64)
                as usize
                % config.files_per_table;
            let rg = (unit_draw(config.seed, 3, i as u64) * f64::from(config.row_groups)) as u32
                % config.row_groups;
            let col = (unit_draw(config.seed, 4, i as u64) * f64::from(config.columns)) as u32
                % config.columns;
            ChunkKey {
                file: format!("/warehouse/t{table}/part-{file}"),
                row_group: rg,
                column: col,
            }
        })
        .collect()
}

/// Replay `keys` against a distributed cache with per-shard `capacity`.
/// Returns (hits, misses, digest).
fn replay(config: &CacheBenchConfig, keys: &[ChunkKey], capacity: usize) -> (u64, u64, u64) {
    let cache = DistributedCache::standalone(
        DistributedCacheConfig {
            chunk_capacity: capacity,
            shadow_capacity: aggregate_capacity(config),
            metadata_ttl: Duration::from_secs(3600),
            ..DistributedCacheConfig::default()
        },
        HashRing::with_workers_default(0..config.workers),
        SimClock::new(),
        CounterSet::new(),
    );
    for key in keys {
        // the scheduler sends the split to the key's ring owner — placement
        // and ownership agree, so every lookup lands on the owning shard
        let Some(owner) = cache.owner(key) else { continue };
        if cache.get(owner, key).is_none() {
            cache.put(owner, key.clone(), vec![0u8; 8]);
        }
    }
    let hits = cache.metrics().get(names::DIST_DATA_HITS);
    let misses = cache.metrics().get(names::DIST_DATA_MISSES);
    (hits, misses, cache.digest())
}

/// Largest aggregate capacity the sweep reaches (shards × largest point).
fn aggregate_capacity(config: &CacheBenchConfig) -> usize {
    config.capacities.iter().copied().max().unwrap_or(1) * config.workers as usize
}

/// Run the full bench: sweep, shadow comparison, determinism replay, and
/// the minimal-remap check.
pub fn run(config: &CacheBenchConfig) -> CacheBenchResult {
    let keys = trace(config);

    // one shadow pass over the whole trace gives the entire curve
    let shadow = ShadowCache::new(aggregate_capacity(config), CounterSet::new());
    for key in &keys {
        shadow.access(&key.ring_key());
    }

    let mut sweep = Vec::with_capacity(config.capacities.len());
    let mut deterministic = true;
    let mut capacities = config.capacities.clone();
    capacities.sort_unstable();
    for capacity in capacities {
        let (hits, misses, digest) = replay(config, &keys, capacity);
        let (_, _, digest2) = replay(config, &keys, capacity);
        deterministic &= digest == digest2;

        // the aggregate-LRU curve the shadow estimates, measured directly
        let aggregate = capacity * config.workers as usize;
        let lru: LruCache<String, ()> = LruCache::new(aggregate);
        let mut lru_hits = 0u64;
        for key in &keys {
            let k = key.ring_key();
            if lru.get(&k).is_some() {
                lru_hits += 1;
            } else {
                lru.put(k, Arc::new(()));
            }
        }
        let lru_measured_pct = lru_hits as f64 / keys.len().max(1) as f64 * 100.0;
        let shadow_predicted_pct = shadow.predicted_hit_rate(aggregate) * 100.0;
        sweep.push(CapacityPoint {
            capacity,
            hits,
            misses,
            digest,
            shadow_predicted_pct,
            lru_measured_pct,
        });
    }

    CacheBenchResult { sweep, deterministic, remap: remap_sweep(&keys) }
}

/// Minimal-remap across fleets of 2..=32: removing one worker must move
/// exactly the keys it owned, and never more than `keys/n` plus slack.
fn remap_sweep(keys: &[ChunkKey]) -> Vec<RemapPoint> {
    let mut points = Vec::new();
    for fleet in 2u32..=32 {
        let before = HashRing::with_workers_default(0..fleet);
        // deterministic victim: mid-fleet, so both wrap and non-wrap arcs move
        let victim = fleet / 2;
        let mut after = before.clone();
        after.remove(victim);
        let mut moved = 0usize;
        let mut owned_by_victim = 0usize;
        for key in keys {
            let k = key.ring_key();
            let owner_before = before.owner(&k);
            if owner_before == Some(victim) {
                owned_by_victim += 1;
            }
            if owner_before != after.owner(&k) {
                moved += 1;
            }
        }
        // expected share is keys/n; allow 3x slack for vnode placement
        // variance at small fleets (the property gate is moved ==
        // owned_by_victim; the bound catches gross imbalance)
        let bound = keys.len() * 3 / fleet as usize;
        points.push(RemapPoint { fleet, keys: keys.len(), moved, owned_by_victim, bound });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CacheBenchConfig {
        CacheBenchConfig {
            accesses: 1_500,
            capacities: vec![8, 32, 128],
            ..CacheBenchConfig::default()
        }
    }

    #[test]
    fn sweep_is_monotone_and_deterministic() {
        let result = run(&quick());
        assert!(result.monotone(), "{:?}", result.sweep);
        assert!(result.deterministic);
        // the trace is skewed enough that caching pays at all
        assert!(result.sweep.last().unwrap().hit_pct() > 20.0);
    }

    #[test]
    fn shadow_tracks_the_measured_curve() {
        let result = run(&quick());
        assert!(
            result.worst_shadow_error_pct() < 5.0,
            "shadow off by {:.2}%",
            result.worst_shadow_error_pct()
        );
    }

    #[test]
    fn remap_is_minimal_for_every_fleet_size() {
        let result = run(&quick());
        assert_eq!(result.remap.len(), 31);
        for point in &result.remap {
            assert!(point.holds(), "{point:?}");
        }
    }
}
