//! Elastic-lifecycle experiments: graceful scale-down under live load, a
//! spot-revocation storm with autoscaler backfill, and an autoscaling
//! rush/lull cycle — all on the multi-tenant workload simulation — plus a
//! direct fragment-cache-migration check on a TPC-H cluster.
//!
//! The `paper-experiments elastic` subcommand drives these, runs every
//! scenario twice to check same-seed digests, and fails the build when a
//! query fails during graceful decommission, when recovery from the
//! 50%-fleet storm exceeds the configured virtual-time bound, or when
//! same-seed digests diverge.

use std::sync::Arc;
use std::time::Duration;

use presto_cluster::{AutoscalerConfig, ClusterConfig, PrestoCluster};
use presto_common::metrics::names;
use presto_common::{Result, SimClock};
use presto_core::{PrestoEngine, Session};
use presto_sim::{ArrivalProcess, ElasticPlan, SchedulerMode, SimConfig, SloPolicy};

/// Virtual instant of the revocation storm in [`storm_config`].
pub const STORM_AT_US: u64 = 40_000;

/// Recovery budget after the storm (virtual µs): active capacity must be
/// back at the pre-storm level within one virtual second.
pub const RECOVERY_BOUND_US: u64 = 1_000_000;

/// The shared workload every scenario runs: a diurnal multi-tenant rush
/// with enough contention that queues actually form.
fn base_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        tenants: 120,
        queries: 2_000,
        zipf_exponent: 0.8,
        arrival: ArrivalProcess::Diurnal {
            mean_interarrival_us: 130.0,
            amplitude: 0.6,
            cycle_us: 50_000,
        },
        workers: 6,
        slots: 8,
        mode: SchedulerMode::Wfq,
        slos: SloPolicy::default(),
        elastic: None,
    }
}

/// Scenario A — graceful scale-down under live load: three scheduled
/// decommissions drain the coldest worker each, mid-run, while the rush is
/// in flight. The gate: zero failed queries, all drains reaped.
pub fn scale_down_config(seed: u64) -> SimConfig {
    let mut config = base_config(seed);
    config.elastic = Some(ElasticPlan {
        decommission_at_us: vec![20_000, 40_000, 60_000],
        ..ElasticPlan::default()
    });
    config
}

/// Scenario B — the spot-revocation storm: half the fleet is preemptible
/// (4 on-demand + 4 spot), the whole spot class is revoked at
/// [`STORM_AT_US`], and the queue-driven autoscaler must backfill on-demand
/// capacity within [`RECOVERY_BOUND_US`] — with every query still
/// succeeding via retry on the survivors.
pub fn storm_config(seed: u64) -> SimConfig {
    let mut config = base_config(seed);
    config.workers = 4;
    config.elastic = Some(ElasticPlan {
        autoscaler: Some(AutoscalerConfig {
            min_workers: 2,
            // capped at the provisioned fleet so recovery is a real
            // backfill: the autoscaler cannot bank spare capacity before
            // the storm and coast through it
            max_workers: 8,
            high_water_depth: 2,
            low_water_depth: 0,
            scale_out_after: Duration::from_micros(500),
            scale_in_after: Duration::from_millis(500),
            scale_out_step: 2,
            cooldown: Duration::from_micros(1_000),
            worker_class: "ondemand".to_string(),
            busy_signal: false,
            busy_high_water_pct: 80,
            busy_low_water_pct: 20,
        }),
        spot_workers: 4,
        revoke_spot_at_us: Some(STORM_AT_US),
        recovery_bound_us: RECOVERY_BOUND_US,
        ..ElasticPlan::default()
    });
    config
}

/// Scenario C — rush and lull: a strongly diurnal arrival process over a
/// small starting fleet, with the autoscaler free to grow during the rush
/// and shrink (gracefully) during the lull. The gate: at least one
/// scale-out *and* one scale-in, zero failed queries.
pub fn rush_lull_config(seed: u64) -> SimConfig {
    let mut config = base_config(seed);
    config.workers = 3;
    config.arrival =
        ArrivalProcess::Diurnal { mean_interarrival_us: 150.0, amplitude: 0.95, cycle_us: 50_000 };
    config.elastic = Some(ElasticPlan {
        autoscaler: Some(AutoscalerConfig {
            min_workers: 2,
            max_workers: 12,
            high_water_depth: 3,
            low_water_depth: 0,
            scale_out_after: Duration::from_micros(500),
            scale_in_after: Duration::from_micros(5_000),
            scale_out_step: 2,
            cooldown: Duration::from_micros(2_000),
            worker_class: "ondemand".to_string(),
            busy_signal: false,
            busy_high_water_pct: 80,
            busy_low_water_pct: 20,
        }),
        ..ElasticPlan::default()
    });
    config
}

/// What the fragment-cache migration check measured.
#[derive(Debug, Clone)]
pub struct MigrationResult {
    /// `frc.hits` after the warm-up run (affinity owners populated).
    pub warm_hits: u64,
    /// `frc.hits` after the post-drain run — successors serve migrated
    /// entries, so this must exceed `warm_hits`.
    pub hits_after_drain: u64,
    /// Entries copied to consistent successors when the drain began.
    pub entries_migrated: u64,
    /// Queued splits displaced off the draining worker mid-query.
    pub splits_handed_off: u64,
    /// Drained workers that ran the full state machine to the reaper.
    pub workers_decommissioned: u64,
    /// Queries the cluster failed (must stay 0 throughout).
    pub queries_failed: u64,
    /// Every run returned identical rows.
    pub rows_match: bool,
}

/// Drain a cache-owning worker *mid-query* on a TPC-H cluster with
/// affinity scheduling and fragment result caches: its queued splits are
/// handed off to survivors, its cache entries migrate to each split's
/// consistent successor, and the answers never change.
pub fn run_cache_migration() -> Result<MigrationResult> {
    // tpch "small" scans 10 splits (~1.1ms of virtual work each), so a
    // drain scheduled into wave 2 lands while the victim still has splits
    // queued — exercising the handoff path, not just the migration path
    const QUERY: &str = "SELECT count(*) FROM lineitem";
    let engine = PrestoEngine::new();
    engine.register_catalog("tpch", Arc::new(presto_connectors::tpch::TpchConnector::new()));
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "elastic-cache",
        engine,
        ClusterConfig {
            initial_workers: 2,
            affinity_scheduling: true,
            fragment_cache_entries: 64,
            grace_period: Duration::from_micros(200),
            ..ClusterConfig::default()
        },
        clock.clone(),
    );
    let session = Session::new("tpch", "small");
    let baseline = cluster.execute(QUERY, &session)?;
    // warm: affinity routes each split to its owner, populating its cache
    cluster.execute(QUERY, &session)?;
    let warm_hits = cluster.metrics().get(names::FRC_HITS);

    // the drain comes due during the scan's second wave, so the worker
    // flips to Draining while it still has splits queued
    cluster.schedule_decommission(0, clock.now() + Duration::from_micros(1_500));
    let during = cluster.execute(QUERY, &session)?;

    // let the drain run Grace1 → Draining → Grace2 → Terminated, then
    // reap; each grace phase restarts its timer, so tick twice
    for _ in 0..2 {
        clock.advance(Duration::from_millis(5));
        cluster.tick();
    }
    let after = cluster.execute(QUERY, &session)?;

    Ok(MigrationResult {
        warm_hits,
        hits_after_drain: cluster.metrics().get(names::FRC_HITS),
        entries_migrated: cluster.metrics().get(names::CLUSTER_CACHE_ENTRIES_MIGRATED),
        splits_handed_off: cluster.metrics().get(names::CLUSTER_SPLITS_HANDED_OFF),
        workers_decommissioned: cluster.metrics().get(names::CLUSTER_WORKERS_DECOMMISSIONED),
        queries_failed: cluster.metrics().get(names::CLUSTER_QUERIES_FAILED),
        rows_match: baseline.rows() == during.rows() && baseline.rows() == after.rows(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::run_simulation;

    fn shrunk(mut config: SimConfig) -> SimConfig {
        config.queries = 600;
        config
    }

    #[test]
    fn scale_down_scenario_meets_its_gates() {
        let r = run_simulation(&shrunk(scale_down_config(7))).unwrap();
        assert_eq!(r.failed, 0);
        let e = r.elastic.unwrap();
        assert_eq!(e.workers_decommissioned, 3);
        assert_eq!(e.final_workers, 3);
    }

    #[test]
    fn storm_scenario_recovers_in_bound() {
        let r = run_simulation(&shrunk(storm_config(7))).unwrap();
        assert_eq!(r.failed, 0);
        let e = r.elastic.unwrap();
        assert_eq!(e.workers_revoked, 4);
        assert!(e.recovered_within_bound(), "{e:?}");
    }

    #[test]
    fn rush_lull_scenario_scales_both_ways() {
        let r = run_simulation(&shrunk(rush_lull_config(7))).unwrap();
        assert_eq!(r.failed, 0);
        let e = r.elastic.unwrap();
        assert!(e.scale_outs > 0, "{e:?}");
        assert!(e.scale_ins > 0, "{e:?}");
    }

    #[test]
    fn cache_migration_preserves_answers_and_moves_entries() {
        let m = run_cache_migration().unwrap();
        assert!(m.rows_match);
        assert_eq!(m.queries_failed, 0);
        assert!(m.entries_migrated > 0, "{m:?}");
        assert!(m.splits_handed_off > 0, "{m:?}");
        assert!(m.hits_after_drain > m.warm_hits, "{m:?}");
        assert_eq!(m.workers_decommissioned, 1, "{m:?}");
    }
}
