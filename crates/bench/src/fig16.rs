//! Fig 16: Druid vs Presto-Druid-connector latency.
//!
//! "20 druid production queries are used in the experiment. 14 of them have
//! predicates, 5 of them have limits, and 12 of them are aggregation
//! queries. ... with pushdown techniques, Presto-Druid connector adds less
//! than 15% overhead, compared with Druid query latency. Most of the
//! queries complete within 1 second."
//!
//! Both paths do the same store work (inverted-index filtering + native
//! aggregation); the connector path additionally pays SQL parsing, planning,
//! final aggregation and page conversion. Latency = real CPU time + the
//! store's virtual cost.

use std::time::{Duration, Instant};

use presto_common::{DataType, Field, Schema, Value};
use presto_connectors::druid::druid_connector;
use presto_connectors::realtime::{NativeQuery, RealtimeConnector};
use presto_core::{PrestoEngine, Session};
use presto_expr::AggregateFunction;
use presto_parquet::ScalarPredicate;

/// One benchmark query: the SQL the connector path runs and the equivalent
/// native Druid query.
pub struct Fig16Query {
    /// Query label (`q01`..`q20`).
    pub name: String,
    /// SQL for the connector path.
    pub sql: String,
    /// Native-API equivalent (aggregations / filters).
    pub native: NativeQuery,
    /// For non-aggregation queries: projected columns of the native scan.
    pub native_scan_columns: Option<Vec<String>>,
}

/// The built workload.
pub struct Fig16Workload {
    /// Engine with the `druid` catalog registered.
    pub engine: PrestoEngine,
    /// The connector (store access + cost probes).
    pub connector: RealtimeConnector,
    /// The 20 queries.
    pub queries: Vec<Fig16Query>,
}

/// Per-query result row.
#[derive(Debug, Clone)]
pub struct Fig16Result {
    /// Query label.
    pub name: String,
    /// Native Druid latency (virtual store cost + real CPU).
    pub native: Duration,
    /// Connector-path latency.
    pub connector: Duration,
    /// Connector overhead in percent.
    pub overhead_pct: f64,
}

/// Build the Druid table (`druid.prod.events`) and the 20-query mix.
pub fn build(rows: usize) -> Fig16Workload {
    let connector = druid_connector();
    let schema = Schema::new(vec![
        Field::new("ts", DataType::Timestamp),
        Field::new("country", DataType::Varchar),
        Field::new("device", DataType::Varchar),
        Field::new("campaign", DataType::Varchar),
        Field::new("clicks", DataType::Bigint),
        Field::new("revenue", DataType::Double),
    ])
    .unwrap();
    connector.store().create_table("prod", "events", schema).unwrap();
    let countries = ["us", "in", "br", "de", "jp", "fr", "gb", "mx"];
    let devices = ["ios", "android", "web"];
    let events: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Timestamp(i as i64 * 100),
                Value::Varchar(countries[i % 8].into()),
                Value::Varchar(devices[i % 3].into()),
                Value::Varchar(format!("camp{}", i % 40)),
                Value::Bigint((i % 100) as i64),
                Value::Double((i % 1000) as f64 / 10.0),
            ]
        })
        .collect();
    connector.store().ingest("prod", "events", events).unwrap();

    let engine = PrestoEngine::new();
    engine.register_catalog("druid", std::sync::Arc::new(connector.clone()));

    let eq = |col: &str, v: &str| (col.to_string(), ScalarPredicate::Eq(Value::Varchar(v.into())));
    let agg_count = (AggregateFunction::CountStar, None::<String>);
    let sum_clicks = (AggregateFunction::Sum, Some("clicks".to_string()));
    let max_rev = (AggregateFunction::Max, Some("revenue".to_string()));
    let min_rev = (AggregateFunction::Min, Some("revenue".to_string()));

    // 20 queries: q01–q12 aggregations (q01–q09 predicated), q13–q17 limits
    // (q13–q16 predicated), q18–q20 scans (q18 predicated) → 14 predicates,
    // 5 limits, 12 aggregations, as in the paper.
    type Filters = Vec<(String, ScalarPredicate)>;
    type AggSpec<'a> = (&'a str, Filters, Vec<&'a str>, Vec<(AggregateFunction, Option<String>)>);
    let mut queries = Vec::new();
    let agg_specs: Vec<AggSpec<'_>> = vec![
        ("q01", vec![eq("country", "us")], vec!["device"], vec![agg_count.clone()]),
        ("q02", vec![eq("country", "in")], vec!["device"], vec![sum_clicks.clone()]),
        (
            "q03",
            vec![eq("device", "ios")],
            vec!["country"],
            vec![agg_count.clone(), sum_clicks.clone()],
        ),
        ("q04", vec![eq("device", "android")], vec!["country"], vec![max_rev.clone()]),
        ("q05", vec![eq("country", "br"), eq("device", "web")], vec![], vec![agg_count.clone()]),
        ("q06", vec![eq("campaign", "camp7")], vec!["country"], vec![sum_clicks.clone()]),
        ("q07", vec![eq("country", "de")], vec!["campaign"], vec![agg_count.clone()]),
        ("q08", vec![eq("device", "web")], vec!["country"], vec![min_rev.clone()]),
        (
            "q09",
            vec![(
                "clicks".to_string(),
                ScalarPredicate::Range { min: Some(Value::Bigint(90)), max: None },
            )],
            vec!["device"],
            vec![agg_count.clone()],
        ),
        ("q10", vec![], vec!["country"], vec![agg_count.clone(), sum_clicks.clone()]),
        ("q11", vec![], vec!["device"], vec![max_rev.clone(), min_rev.clone()]),
        ("q12", vec![], vec![], vec![sum_clicks.clone(), agg_count.clone()]),
    ];
    for (name, filters, group_by, aggregates) in agg_specs {
        let where_sql = filters_to_sql(&filters);
        let group_cols: Vec<String> = group_by.iter().map(|s| s.to_string()).collect();
        let select_aggs: Vec<String> = aggregates
            .iter()
            .map(|(f, arg)| match arg {
                None => "count(*)".to_string(),
                Some(a) => format!("{}({a})", f.name()),
            })
            .collect();
        let select = if group_cols.is_empty() {
            select_aggs.join(", ")
        } else {
            format!("{}, {}", group_cols.join(", "), select_aggs.join(", "))
        };
        let group_clause = if group_cols.is_empty() {
            String::new()
        } else {
            format!(" GROUP BY {}", group_cols.join(", "))
        };
        queries.push(Fig16Query {
            name: name.to_string(),
            sql: format!("SELECT {select} FROM events{where_sql}{group_clause}"),
            native: NativeQuery {
                filters: filters.clone(),
                group_by: group_cols,
                aggregates,
                limit: None,
            },
            native_scan_columns: None,
        });
    }
    // limit queries
    let limit_specs: Vec<(&str, Filters, usize)> = vec![
        ("q13", vec![eq("country", "us")], 100),
        ("q14", vec![eq("device", "ios")], 50),
        ("q15", vec![eq("campaign", "camp3")], 200),
        ("q16", vec![eq("country", "jp")], 20),
        ("q17", vec![], 100),
    ];
    for (name, filters, limit) in limit_specs {
        let where_sql = filters_to_sql(&filters);
        queries.push(Fig16Query {
            name: name.to_string(),
            sql: format!("SELECT country, device, clicks FROM events{where_sql} LIMIT {limit}"),
            native: NativeQuery {
                filters: filters.clone(),
                group_by: vec![],
                aggregates: vec![],
                limit: Some(limit),
            },
            native_scan_columns: Some(vec!["country".into(), "device".into(), "clicks".into()]),
        });
    }
    // projection scans (bounded output via a selective predicate on q18;
    // q19/q20 scan narrow projections)
    let scan_specs: Vec<(&str, Filters, Vec<&str>)> = vec![
        ("q18", vec![eq("campaign", "camp11")], vec!["campaign", "revenue"]),
        ("q19", vec![], vec!["country"]),
        ("q20", vec![], vec!["clicks"]),
    ];
    for (name, filters, cols) in scan_specs {
        let where_sql = filters_to_sql(&filters);
        queries.push(Fig16Query {
            name: name.to_string(),
            sql: format!("SELECT {} FROM events{where_sql}", cols.join(", ")),
            native: NativeQuery {
                filters: filters.clone(),
                group_by: vec![],
                aggregates: vec![],
                limit: None,
            },
            native_scan_columns: Some(cols.iter().map(|s| s.to_string()).collect()),
        });
    }
    Fig16Workload { engine, connector, queries }
}

fn filters_to_sql(filters: &[(String, ScalarPredicate)]) -> String {
    if filters.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = filters
        .iter()
        .map(|(col, p)| match p {
            ScalarPredicate::Eq(Value::Varchar(s)) => format!("{col} = '{s}'"),
            ScalarPredicate::Eq(v) => format!("{col} = {v}"),
            ScalarPredicate::Range { min: Some(v), max: None } => format!("{col} >= {v}"),
            ScalarPredicate::Range { min: None, max: Some(v) } => format!("{col} <= {v}"),
            ScalarPredicate::Range { min: Some(a), max: Some(b) } => {
                format!("{col} BETWEEN {a} AND {b}")
            }
            ScalarPredicate::In(vs) => {
                let items: Vec<String> = vs
                    .iter()
                    .map(|v| match v {
                        Value::Varchar(s) => format!("'{s}'"),
                        other => other.to_string(),
                    })
                    .collect();
                format!("{col} IN ({})", items.join(", "))
            }
            _ => "true".to_string(),
        })
        .collect();
    format!(" WHERE {}", parts.join(" AND "))
}

/// Run one query both ways and report latencies.
pub fn run_query(workload: &Fig16Workload, query: &Fig16Query) -> Fig16Result {
    // ---- native Druid path
    let start = Instant::now();
    let virtual_cost = match &query.native_scan_columns {
        None => {
            workload
                .connector
                .store()
                .execute_native("prod", "events", &query.native, None)
                .expect("native query")
                .cost
        }
        Some(cols) => workload
            .connector
            .store()
            .scan_segments("prod", "events", cols, &query.native.filters, query.native.limit, None)
            .expect("native scan")
            .1
            .total(),
    };
    let native = start.elapsed() + virtual_cost;

    // ---- connector path (SQL through the engine, pushdowns on). Splits
    // run on parallel workers, so the virtual latency is the slowest
    // split's store cost, not the sum.
    workload.connector.take_last_scan_costs();
    let session = Session::new("druid", "prod");
    let start = Instant::now();
    workload
        .engine
        .execute_with_session(&query.sql, &session)
        .unwrap_or_else(|e| panic!("{}: {e}", query.sql));
    let split_costs = workload.connector.take_last_scan_costs();
    // Filter work runs on parallel workers (max); stream-out is serialized
    // toward the client (sum) — except for limit queries, where the client
    // cancels the remaining splits once the limit is satisfied (max).
    let filter: Duration = split_costs.iter().map(|c| c.filter).max().unwrap_or_default();
    let stream: Duration = if query.native.limit.is_some() {
        split_costs.iter().map(|c| c.stream).max().unwrap_or_default()
    } else {
        split_costs.iter().map(|c| c.stream).sum()
    };
    let connector = start.elapsed() + filter + stream;

    let overhead_pct = (connector.as_secs_f64() / native.as_secs_f64().max(1e-12) - 1.0) * 100.0;
    Fig16Result { name: query.name.clone(), native, connector, overhead_pct }
}

/// Run the whole figure.
pub fn run(rows: usize) -> Vec<Fig16Result> {
    let workload = build(rows);
    workload.queries.iter().map(|q| run_query(&workload, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_mix_matches_the_paper() {
        let w = build(5_000);
        assert_eq!(w.queries.len(), 20);
        let with_predicates = w.queries.iter().filter(|q| !q.native.filters.is_empty()).count();
        let with_limits = w.queries.iter().filter(|q| q.native.limit.is_some()).count();
        let aggregations = w.queries.iter().filter(|q| !q.native.aggregates.is_empty()).count();
        assert_eq!(with_predicates, 14);
        assert_eq!(with_limits, 5);
        assert_eq!(aggregations, 12);
    }

    #[test]
    fn connector_and_native_agree_on_results() {
        let w = build(10_000);
        // q10: group by country, count + sum — compare result content
        let q = &w.queries[9];
        let native = w.connector.store().execute_native("prod", "events", &q.native, None).unwrap();
        let session = Session::new("druid", "prod");
        let sql_result = w.engine.execute_with_session(&q.sql, &session).unwrap();
        let mut sql_rows = sql_result.rows();
        sql_rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(native.rows.len(), sql_rows.len());
        for (n, s) in native.rows.iter().zip(sql_rows.iter()) {
            assert_eq!(n, s);
        }
    }

    #[test]
    fn latencies_are_produced_for_all_queries() {
        let results = run(5_000);
        assert_eq!(results.len(), 20);
        for r in &results {
            assert!(r.native > Duration::ZERO, "{}", r.name);
            assert!(r.connector > Duration::ZERO, "{}", r.name);
        }
    }
}
