//! `paper-experiments`: regenerate every table/figure of the paper's
//! evaluation and print paper-claim vs measured.
//!
//! Usage:
//! ```text
//! paper-experiments [fig16|fig17|fig18|fig19|fig20|geo|cache|s3|shrink|gateway|resource|chaos|obs|sim|elastic|telemetry|all]
//! ```
//! Run `--release`; the reader/writer figures measure real CPU work.
//!
//! `chaos` and `obs` also dump machine-readable `BENCH_<experiment>.json`
//! files into the current directory for CI to archive and diff.

use std::sync::Arc;
use std::time::Duration;

use presto_bench::report::{histogram_json, mbps, ms, write_bench_json, Json, Table};
use presto_bench::{
    cache_bench, cache_exp, chaos, fig16, fig17, geo_exp, obs, resource_exp, s3_exp, writers,
};
use presto_cluster::{ClusterConfig, PrestoCluster, PrestoGateway};
use presto_common::{Block, DataType, Field, Page, Schema, SimClock};
use presto_connectors::memory::MemoryConnector;
use presto_connectors::mysql::MySqlConnector;
use presto_core::{PrestoEngine, Session};
use presto_parquet::Codec;

const EXPERIMENTS: [&str; 17] = [
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "geo",
    "cache",
    "s3",
    "shrink",
    "gateway",
    "resource",
    "chaos",
    "obs",
    "sim",
    "elastic",
    "telemetry",
    "all",
];

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if !EXPERIMENTS.contains(&arg.as_str()) {
        eprintln!("unknown experiment '{arg}'");
        eprintln!("usage: paper-experiments [{}]", EXPERIMENTS.join("|"));
        std::process::exit(2);
    }
    let all = arg == "all";
    if all || arg == "fig16" {
        run_fig16();
    }
    if all || arg == "fig17" {
        run_fig17();
    }
    if all || arg == "fig18" {
        run_writer_figure(Codec::Fast, "Fig 18 — writer throughput, Snappy-profile codec");
    }
    if all || arg == "fig19" {
        run_writer_figure(Codec::Deep, "Fig 19 — writer throughput, Gzip-profile codec");
    }
    if all || arg == "fig20" {
        run_writer_figure(Codec::None, "Fig 20 — writer throughput, no compression");
    }
    if all || arg == "geo" {
        run_geo();
    }
    if all || arg == "cache" {
        run_cache();
    }
    if all || arg == "s3" {
        run_s3();
    }
    if all || arg == "shrink" {
        run_shrink();
    }
    if all || arg == "gateway" {
        run_gateway();
    }
    if all || arg == "resource" {
        run_resource();
    }
    if all || arg == "chaos" {
        run_chaos();
    }
    if all || arg == "obs" {
        run_obs();
    }
    if all || arg == "sim" {
        run_sim();
    }
    if all || arg == "elastic" {
        run_elastic();
    }
    if all || arg == "telemetry" {
        run_telemetry();
    }
}

fn run_telemetry() {
    use presto_bench::telemetry;
    use presto_common::metrics::names;
    use presto_sim::run_simulation;
    println!(
        "\n=== queryable telemetry: sampled replay + busy-vs-queue autoscaler counterfactual ==="
    );
    println!(
        "rush/lull workload replayed under two autoscaler policies (seed 7, same arrivals);\n\
         every variant runs twice to check same-seed telemetry digests;\n\
         gates: sampling happened, digests bit-identical, busy-signal action trace diverges\n"
    );

    let variants: [(&str, presto_sim::SimConfig); 2] = [
        ("queue-depth", telemetry::queue_only_config(7)),
        ("busy-fraction", telemetry::busy_signal_config(7)),
    ];
    let mut table = Table::new(
        "autoscaler policies on identical arrivals (2000 queries, virtual time)",
        &[
            "policy",
            "ok/failed",
            "out/in",
            "actions",
            "peak/final workers",
            "snapshots",
            "peak busy",
            "deterministic",
        ],
    );
    let mut gate_failed = false;
    let mut action_traces: Vec<Vec<(u64, i64)>> = Vec::new();
    let mut json_rows: Vec<(String, Json)> = Vec::new();
    for (name, config) in &variants {
        let (a, b) = match (run_simulation(config), run_simulation(config)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("telemetry variant '{name}' failed to run: {e}");
                std::process::exit(1);
            }
        };
        let deterministic = a.digest == b.digest
            && a.trace_digest == b.trace_digest
            && a.telemetry_digest == b.telemetry_digest
            && a.elastic == b.elastic;
        let Some(e) = a.elastic.clone() else {
            eprintln!("telemetry variant '{name}' produced no elastic report");
            std::process::exit(1);
        };
        let busy_series = a.telemetry_series.get(names::TS_FLEET_BUSY_PCT).cloned();
        let depth_series = a.telemetry_series.get(names::TS_QUEUE_DEPTH).cloned();
        let peak_busy = busy_series.as_ref().map(|s| s.peak()).unwrap_or(0);
        table.row(vec![
            (*name).into(),
            format!("{}/{}", a.completed, a.failed),
            format!("{}/{}", e.scale_outs, e.scale_ins),
            e.actions.len().to_string(),
            format!("{}/{}", e.peak_workers, e.final_workers),
            a.telemetry_snapshots.to_string(),
            format!("{peak_busy}%"),
            if deterministic { "yes".into() } else { "NO".into() },
        ]);
        if a.failed > 0 {
            eprintln!("telemetry gate FAILED: variant '{name}' failed {} queries", a.failed);
            gate_failed = true;
        }
        if !deterministic {
            eprintln!("telemetry gate FAILED: variant '{name}' same-seed digests diverged");
            gate_failed = true;
        }
        if a.telemetry_snapshots == 0 || busy_series.as_ref().is_none_or(|s| s.samples() == 0) {
            eprintln!("telemetry gate FAILED: variant '{name}' sampled nothing");
            gate_failed = true;
        }
        let series_json = |series: &Option<presto_common::TimeSeries>| match series {
            Some(s) => Json::Arr(
                s.points()
                    .into_iter()
                    .map(|(at_us, v)| Json::Arr(vec![Json::U64(at_us), Json::U64(v)]))
                    .collect(),
            ),
            None => Json::Arr(Vec::new()),
        };
        json_rows.push((
            (*name).to_string(),
            Json::Obj(vec![
                ("completed".into(), Json::U64(a.completed)),
                ("failed".into(), Json::U64(a.failed)),
                ("makespan_us".into(), Json::U64(a.makespan_us)),
                ("scale_outs".into(), Json::U64(e.scale_outs)),
                ("scale_ins".into(), Json::U64(e.scale_ins)),
                ("peak_workers".into(), Json::U64(e.peak_workers as u64)),
                ("final_workers".into(), Json::U64(e.final_workers as u64)),
                ("snapshots".into(), Json::U64(a.telemetry_snapshots)),
                ("telemetry_digest".into(), Json::Str(format!("{:#018x}", a.telemetry_digest))),
                ("deterministic".into(), Json::Bool(deterministic)),
                (
                    "actions".into(),
                    Json::Arr(
                        e.actions
                            .iter()
                            .map(|&(at_us, delta)| {
                                Json::Arr(vec![Json::U64(at_us), Json::Str(delta.to_string())])
                            })
                            .collect(),
                    ),
                ),
                ("fleet_busy_pct".into(), series_json(&busy_series)),
                ("queue_depth".into(), series_json(&depth_series)),
            ]),
        ));
        action_traces.push(e.actions);
    }
    println!("{}", table.render());

    let diverged = action_traces.first() != action_traces.last();
    if !diverged {
        eprintln!(
            "telemetry gate FAILED: the busy-fraction policy produced the same action trace \
             as the queue-depth-only counterfactual — the second signal changed nothing"
        );
        gate_failed = true;
    } else {
        println!(
            "busy-vs-queue counterfactual: action traces diverge ({} vs {} actions)\n",
            action_traces.first().map(Vec::len).unwrap_or(0),
            action_traces.last().map(Vec::len).unwrap_or(0),
        );
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("telemetry".into())),
        ("variants".into(), Json::Obj(json_rows)),
        ("counterfactual_diverged".into(), Json::Bool(diverged)),
        ("gates_passed".into(), Json::Bool(!gate_failed)),
    ]);
    match write_bench_json("telemetry", &json) {
        Ok(path) => println!("wrote {path}\n"),
        Err(e) => eprintln!("could not write BENCH_telemetry.json: {e}"),
    }
    if gate_failed {
        std::process::exit(1);
    }
}

fn run_elastic() {
    use presto_bench::elastic;
    use presto_sim::run_simulation;
    println!("\n=== elastic lifecycle: autoscaler, graceful decommission, revocation storm ===");
    println!(
        "multi-tenant diurnal load; scenarios run twice each to check same-seed digests;\n\
         gates: zero failed queries in every scenario, storm recovery within {} virtual ms\n",
        elastic::RECOVERY_BOUND_US / 1_000
    );

    let scenarios: [(&str, presto_sim::SimConfig); 3] = [
        ("scale-down", elastic::scale_down_config(7)),
        ("storm", elastic::storm_config(7)),
        ("rush-lull", elastic::rush_lull_config(7)),
    ];
    let mut table = Table::new(
        "lifecycle scenarios (2000 queries each, virtual time)",
        &[
            "scenario",
            "ok/failed",
            "peak/final workers",
            "out/in",
            "drained",
            "revoked",
            "recovery",
            "deterministic",
        ],
    );
    let mut json_rows: Vec<(String, Json)> = Vec::new();
    let mut gate_failed = false;
    for (name, config) in &scenarios {
        let (a, b) = match (run_simulation(config), run_simulation(config)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("elastic scenario '{name}' failed to run: {e}");
                std::process::exit(1);
            }
        };
        let deterministic =
            a.digest == b.digest && a.trace_digest == b.trace_digest && a.elastic == b.elastic;
        let Some(e) = a.elastic.clone() else {
            eprintln!("elastic scenario '{name}' produced no elastic report");
            std::process::exit(1);
        };
        let recovery = match (e.storm_at_us, e.recovered_at_us) {
            (None, _) => "n/a".to_string(),
            (Some(storm), Some(rec)) => format!("{} µs", rec.saturating_sub(storm)),
            (Some(_), None) => "NEVER".to_string(),
        };
        table.row(vec![
            (*name).into(),
            format!("{}/{}", a.completed, a.failed),
            format!("{}/{}", e.peak_workers, e.final_workers),
            format!("{}/{}", e.scale_outs, e.scale_ins),
            e.workers_decommissioned.to_string(),
            e.workers_revoked.to_string(),
            recovery,
            if deterministic { "yes".into() } else { "NO".into() },
        ]);
        if a.failed > 0 {
            eprintln!("elastic gate FAILED: scenario '{name}' failed {} queries", a.failed);
            gate_failed = true;
        }
        if !deterministic {
            eprintln!("elastic gate FAILED: scenario '{name}' same-seed digests diverged");
            gate_failed = true;
        }
        if !e.recovered_within_bound() {
            eprintln!(
                "elastic gate FAILED: scenario '{name}' did not recover from the storm \
                 within {} virtual µs: {e:?}",
                e.recovery_bound_us
            );
            gate_failed = true;
        }
        json_rows.push((
            (*name).to_string(),
            Json::Obj(vec![
                ("completed".into(), Json::U64(a.completed)),
                ("failed".into(), Json::U64(a.failed)),
                ("makespan_us".into(), Json::U64(a.makespan_us)),
                ("scale_outs".into(), Json::U64(e.scale_outs)),
                ("scale_ins".into(), Json::U64(e.scale_ins)),
                ("workers_added".into(), Json::U64(e.workers_added)),
                ("workers_decommissioned".into(), Json::U64(e.workers_decommissioned)),
                ("workers_revoked".into(), Json::U64(e.workers_revoked)),
                ("splits_handed_off".into(), Json::U64(e.splits_handed_off)),
                ("cache_entries_migrated".into(), Json::U64(e.cache_entries_migrated)),
                ("peak_workers".into(), Json::U64(e.peak_workers as u64)),
                ("final_workers".into(), Json::U64(e.final_workers as u64)),
                (
                    "recovered_us".into(),
                    match (e.storm_at_us, e.recovered_at_us) {
                        (Some(storm), Some(rec)) => Json::U64(rec.saturating_sub(storm)),
                        (Some(_), None) => Json::Str("never".into()),
                        (None, _) => Json::Str("n/a".into()),
                    },
                ),
                ("recovered_within_bound".into(), Json::Bool(e.recovered_within_bound())),
                ("digest".into(), Json::Str(format!("{:#018x}", a.digest))),
                ("deterministic".into(), Json::Bool(deterministic)),
            ]),
        ));
    }
    println!("{}", table.render());

    let migration = match elastic::run_cache_migration() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("elastic cache-migration check failed to run: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "cache migration (tpch, drain mid-query): {} entries migrated, {} splits handed off,\n\
         frc hits {} -> {}, answers match: {}, failed queries: {}\n",
        migration.entries_migrated,
        migration.splits_handed_off,
        migration.warm_hits,
        migration.hits_after_drain,
        migration.rows_match,
        migration.queries_failed,
    );
    if !migration.rows_match
        || migration.queries_failed > 0
        || migration.entries_migrated == 0
        || migration.workers_decommissioned != 1
    {
        eprintln!("elastic gate FAILED: cache migration check: {migration:?}");
        gate_failed = true;
    }

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("elastic".into())),
        ("scenarios".into(), Json::Obj(json_rows)),
        (
            "cache_migration".into(),
            Json::Obj(vec![
                ("entries_migrated".into(), Json::U64(migration.entries_migrated)),
                ("splits_handed_off".into(), Json::U64(migration.splits_handed_off)),
                ("warm_hits".into(), Json::U64(migration.warm_hits)),
                ("hits_after_drain".into(), Json::U64(migration.hits_after_drain)),
                ("rows_match".into(), Json::Bool(migration.rows_match)),
                ("queries_failed".into(), Json::U64(migration.queries_failed)),
            ]),
        ),
        ("gates_passed".into(), Json::Bool(!gate_failed)),
    ]);
    match write_bench_json("elastic", &json) {
        Ok(path) => println!("wrote {path}\n"),
        Err(e) => eprintln!("could not write BENCH_elastic.json: {e}"),
    }
    if gate_failed {
        std::process::exit(1);
    }
}

fn run_sim() {
    use presto_sim::{run_simulation, SchedulerMode, SimConfig, TenantClass};
    println!("\n=== multi-tenant workload simulation: WFQ vs FIFO dispatch ===");
    let config = SimConfig::default();
    println!(
        "{} tenants (zipf s={}), {} queries, diurnal rush over {} workers / {} slots; seed {}\n",
        config.tenants,
        config.zipf_exponent,
        config.queries,
        config.workers,
        config.slots,
        config.seed
    );
    let wfq = match run_simulation(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sim (wfq) failed: {e}");
            std::process::exit(1);
        }
    };
    let wfq_again = match run_simulation(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sim (wfq, rerun) failed: {e}");
            std::process::exit(1);
        }
    };
    let fifo = match run_simulation(&SimConfig { mode: SchedulerMode::Fifo, ..config.clone() }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sim (fifo) failed: {e}");
            std::process::exit(1);
        }
    };

    let classes = [TenantClass::Interactive, TenantClass::Dashboard, TenantClass::Batch];
    let mut table = Table::new(
        "end-to-end latency by workload class (virtual µs)",
        &["class", "queries", "fifo p50", "fifo p99", "wfq p50", "wfq p99", "slo p99"],
    );
    for class in classes {
        let (f, w) = (&fifo.class_latency_us[class.name()], &wfq.class_latency_us[class.name()]);
        table.row(vec![
            class.name().into(),
            w.count().to_string(),
            f.quantile(0.5).to_string(),
            f.quantile(0.99).to_string(),
            w.quantile(0.5).to_string(),
            w.quantile(0.99).to_string(),
            config.slos.p99_target(class).to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut slo_table = Table::new(
        "per-tenant SLO attainment (busiest tenant per class + worst tenant)",
        &["tenant", "class", "queries", "wfq p50", "wfq p99", "slo p99", "within"],
    );
    let mut shown: Vec<&presto_sim::TenantReport> = Vec::new();
    for class in classes {
        if let Some(busiest) = wfq.class_rows(class).max_by_key(|t| (t.queries, t.tenant)) {
            shown.push(busiest);
        }
    }
    if let Some(worst) = wfq.tenants.iter().find(|t| t.tenant == wfq.worst_tenant) {
        if !shown.iter().any(|t| t.tenant == worst.tenant) {
            shown.push(worst);
        }
    }
    for t in shown {
        slo_table.row(vec![
            format!("t{}", t.tenant),
            t.class.name().into(),
            t.queries.to_string(),
            t.p50_us.to_string(),
            t.p99_us.to_string(),
            t.slo_p99_us.to_string(),
            if t.within_slo { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("{}", slo_table.render());

    let deterministic = wfq.digest == wfq_again.digest
        && wfq.trace_digest == wfq_again.trace_digest
        && wfq.tenant_latency_us == wfq_again.tenant_latency_us;
    println!(
        "worst-tenant p99: fifo {} µs (t{}) -> wfq {} µs (t{})",
        fifo.worst_p99_us, fifo.worst_tenant, wfq.worst_p99_us, wfq.worst_tenant
    );
    println!(
        "SLO violations: fifo {} tenants, wfq {} tenants (interactive lane clean: {})",
        fifo.slo_violations,
        wfq.slo_violations,
        wfq.class_within_slo(TenantClass::Interactive)
    );
    println!(
        "determinism: two seed-{} runs -> digests {:#018x} / {:#018x}, traces {:#018x} / {:#018x} ({})\n",
        config.seed,
        wfq.digest,
        wfq_again.digest,
        wfq.trace_digest,
        wfq_again.trace_digest,
        if deterministic { "identical" } else { "MISMATCH" }
    );

    let mode_json = |r: &presto_sim::SimReport| {
        Json::Obj(vec![
            ("completed".into(), Json::U64(r.completed)),
            ("failed".into(), Json::U64(r.failed)),
            ("makespan_us".into(), Json::U64(r.makespan_us)),
            ("worst_tenant".into(), Json::U64(u64::from(r.worst_tenant))),
            ("worst_tenant_p99_us".into(), Json::U64(r.worst_p99_us)),
            ("slo_violations".into(), Json::U64(r.slo_violations)),
            ("latency_us".into(), histogram_json(&r.latency_us)),
            ("queue_wait_us".into(), histogram_json(&r.queue_wait_us)),
            (
                "class_p99_us".into(),
                Json::Obj(
                    r.class_latency_us
                        .iter()
                        .map(|(k, h)| ((*k).into(), Json::U64(h.quantile(0.99))))
                        .collect(),
                ),
            ),
            ("digest".into(), Json::Str(format!("{:#018x}", r.digest))),
            ("trace_digest".into(), Json::Str(format!("{:#018x}", r.trace_digest))),
        ])
    };
    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("sim".into())),
        ("tenants".into(), Json::U64(u64::from(config.tenants))),
        ("queries".into(), Json::U64(config.queries)),
        ("wfq".into(), mode_json(&wfq)),
        ("fifo".into(), mode_json(&fifo)),
        ("deterministic".into(), Json::Bool(deterministic)),
        ("wfq_improves_worst_tenant_p99".into(), Json::Bool(wfq.worst_p99_us < fifo.worst_p99_us)),
        (
            "interactive_within_slo".into(),
            Json::Bool(wfq.class_within_slo(TenantClass::Interactive)),
        ),
    ]);
    match write_bench_json("sim", &json) {
        Ok(path) => println!("wrote {path}\n"),
        Err(e) => eprintln!("could not write BENCH_sim.json: {e}"),
    }
    if !deterministic {
        eprintln!("sim determinism check FAILED: same-seed runs diverged");
        std::process::exit(1);
    }
    if wfq.worst_p99_us >= fifo.worst_p99_us {
        eprintln!(
            "sim fairness check FAILED: wfq worst-tenant p99 ({} µs) does not improve on fifo ({} µs)",
            wfq.worst_p99_us, fifo.worst_p99_us
        );
        std::process::exit(1);
    }
    if !wfq.class_within_slo(TenantClass::Interactive) {
        eprintln!("sim SLO check FAILED: an interactive tenant missed its p99 target under wfq");
        std::process::exit(1);
    }
    if wfq.completed != config.queries || fifo.completed != config.queries {
        eprintln!(
            "sim completion check FAILED: wfq {} / fifo {} of {} queries completed",
            wfq.completed, fifo.completed, config.queries
        );
        std::process::exit(1);
    }
}

fn run_obs() {
    println!("\n=== observability: latency quantiles, EXPLAIN ANALYZE, span tree ===");
    let config = obs::ObsConfig::default();
    println!(
        "{} join+agg dashboard queries on {} workers ({} warm-up, discarded via clear())\n",
        config.queries, config.workers, config.warmup
    );
    let r = obs::run(&config);
    let mut table = Table::new(
        "virtual-time latency distributions",
        &["histogram", "count", "p50", "p95", "p99", "max"],
    );
    table.row(vec![
        "query latency (µs)".into(),
        r.latency.count().to_string(),
        r.latency.quantile(0.50).to_string(),
        r.latency.quantile(0.95).to_string(),
        r.latency.quantile(0.99).to_string(),
        r.latency.max().to_string(),
    ]);
    table.row(vec![
        "admission queue wait (ms)".into(),
        r.queue_wait.count().to_string(),
        r.queue_wait.quantile(0.50).to_string(),
        r.queue_wait.quantile(0.95).to_string(),
        r.queue_wait.quantile(0.99).to_string(),
        r.queue_wait.max().to_string(),
    ]);
    println!("{}", table.render());
    println!("EXPLAIN ANALYZE (representative query):\n{}", r.explain);
    println!(
        "span tree ({} spans, digest {:#018x}):\n{}",
        r.trace_spans, r.trace_digest, r.trace_render
    );
    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("obs".into())),
        ("queries".into(), Json::U64(r.queries as u64)),
        ("query_latency_us".into(), histogram_json(&r.latency)),
        ("admission_queue_wait_ms".into(), histogram_json(&r.queue_wait)),
        ("trace_spans".into(), Json::U64(r.trace_spans as u64)),
        ("trace_digest".into(), Json::Str(format!("{:#018x}", r.trace_digest))),
        (
            "counters".into(),
            Json::Obj(r.counters.iter().map(|(k, v)| (k.clone(), Json::U64(*v))).collect()),
        ),
    ]);
    match write_bench_json("obs", &json) {
        Ok(path) => println!("wrote {path}\n"),
        Err(e) => eprintln!("could not write BENCH_obs.json: {e}"),
    }
}

fn run_chaos() {
    println!("\n=== §XII: chaos — fault injection vs coordinator recovery ===");
    println!(
        "40 queries x 12 splits on 6 workers; every task faults with probability p,\n\
         worker 0 crashes at its 25th task; seed 42; backoff on the virtual clock\n"
    );
    let mut table = Table::new(
        "split reassignment, attempt cap 4, blacklist after 4 consecutive failures",
        &[
            "fault rate",
            "recovery",
            "queries ok",
            "split retries",
            "worker failures",
            "blacklisted",
            "injected (crash/task)",
            "virtual backoff",
        ],
    );
    for rate in [0.0, 0.05, 0.10, 0.20] {
        for recovery in [true, false] {
            let r = chaos::run(&chaos::ChaosConfig {
                fault_rate: rate,
                recovery,
                ..chaos::ChaosConfig::default()
            });
            table.row(vec![
                format!("{:.0}%", rate * 100.0),
                if recovery { "on".into() } else { "off".into() },
                format!("{}/{} ({:.0}%)", r.succeeded, r.queries, r.success_rate() * 100.0),
                r.split_retries.to_string(),
                r.worker_failures.to_string(),
                r.blacklisted_workers.to_string(),
                format!("{}/{}", r.crashes_injected, r.task_faults_injected),
                format!("{} ms", r.virtual_ms),
            ]);
        }
    }
    println!("{}", table.render());
    let a = chaos::run(&chaos::ChaosConfig::default());
    let b = chaos::run(&chaos::ChaosConfig::default());
    let identical = a.rows_digest == b.rows_digest
        && a.trace_digest == b.trace_digest
        && a.split_retries == b.split_retries;
    println!(
        "determinism: two seed-42 runs -> rows {:#018x} / {:#018x}, traces {:#018x} / {:#018x} ({})\n",
        a.rows_digest,
        b.rows_digest,
        a.trace_digest,
        b.trace_digest,
        if identical { "identical" } else { "MISMATCH" }
    );
    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("chaos".into())),
        ("queries".into(), Json::U64(a.queries as u64)),
        ("succeeded".into(), Json::U64(a.succeeded as u64)),
        ("split_retries".into(), Json::U64(a.split_retries)),
        ("worker_failures".into(), Json::U64(a.worker_failures)),
        ("virtual_ms".into(), Json::U64(a.virtual_ms)),
        ("rows_digest".into(), Json::Str(format!("{:#018x}", a.rows_digest))),
        ("trace_digest".into(), Json::Str(format!("{:#018x}", a.trace_digest))),
        ("deterministic".into(), Json::Bool(identical)),
    ]);
    match write_bench_json("chaos", &json) {
        Ok(path) => println!("wrote {path}\n"),
        Err(e) => eprintln!("could not write BENCH_chaos.json: {e}"),
    }
    if !identical {
        eprintln!("chaos determinism check FAILED: same-seed runs diverged");
        std::process::exit(1);
    }
    run_speculation();
}

fn run_speculation() {
    println!("=== §XII: stragglers — speculative execution on mid-stream stalls ===");
    let config = chaos::StragglerConfig::default();
    println!(
        "{} queries x 12 splits on {} workers; each scan page stalls with p={:.0}% for {} ms;\n\
         speculation duplicates any split past the p99 of its completed siblings\n",
        config.queries,
        config.workers,
        config.stall_rate * 100.0,
        config.stall.as_millis()
    );
    let on = chaos::run_straggler(&config);
    let off =
        chaos::run_straggler(&chaos::StragglerConfig { speculation: false, ..config.clone() });
    let mut table = Table::new(
        "query latency under injected stragglers (virtual µs)",
        &["speculation", "queries ok", "p50", "p95", "p99", "launches", "wins", "wasted"],
    );
    for r in [&on, &off] {
        table.row(vec![
            if r.speculation { "on".into() } else { "off".into() },
            format!("{}/{}", r.succeeded, r.queries),
            r.p50_us.to_string(),
            r.p95_us.to_string(),
            r.p99_us.to_string(),
            r.speculative_launches.to_string(),
            r.speculative_wins.to_string(),
            r.speculative_wasted.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "answers agree across modes: {} (rows {:#018x} / {:#018x})\n",
        if on.rows_digest == off.rows_digest { "yes" } else { "NO" },
        on.rows_digest,
        off.rows_digest
    );
    let mode_json = |r: &chaos::StragglerResult| {
        Json::Obj(vec![
            ("succeeded".into(), Json::U64(r.succeeded as u64)),
            ("p50_us".into(), Json::U64(r.p50_us)),
            ("p95_us".into(), Json::U64(r.p95_us)),
            ("p99_us".into(), Json::U64(r.p99_us)),
            ("speculative_launches".into(), Json::U64(r.speculative_launches)),
            ("speculative_wins".into(), Json::U64(r.speculative_wins)),
            ("speculative_wasted".into(), Json::U64(r.speculative_wasted)),
            ("stalls_injected".into(), Json::U64(r.stalls_injected)),
            ("virtual_ms".into(), Json::U64(r.virtual_ms)),
            ("rows_digest".into(), Json::Str(format!("{:#018x}", r.rows_digest))),
            ("trace_digest".into(), Json::Str(format!("{:#018x}", r.trace_digest))),
        ])
    };
    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("speculation".into())),
        ("queries".into(), Json::U64(on.queries as u64)),
        ("seed".into(), Json::U64(chaos::StragglerConfig::default().seed)),
        ("speculation_on".into(), mode_json(&on)),
        ("speculation_off".into(), mode_json(&off)),
        ("answers_agree".into(), Json::Bool(on.rows_digest == off.rows_digest)),
        ("tail_cut".into(), Json::Bool(on.p99_us < off.p99_us)),
    ]);
    match write_bench_json("speculation", &json) {
        Ok(path) => println!("wrote {path}\n"),
        Err(e) => eprintln!("could not write BENCH_speculation.json: {e}"),
    }
    if on.rows_digest != off.rows_digest {
        eprintln!("speculation correctness check FAILED: modes returned different answers");
        std::process::exit(1);
    }
    if on.p99_us >= off.p99_us {
        eprintln!("speculation tail check FAILED: on p99 {} >= off p99 {}", on.p99_us, off.p99_us);
        std::process::exit(1);
    }
}

fn run_resource() {
    println!("\n=== §XII.C: memory pools + spill-to-disk on the Fig 17 joins ===");
    println!("each join capped at half its unconstrained peak; spill on local disk\n");
    let spill_dir =
        presto_storage::LocalFileSystem::temp("resource-exp").expect("create spill tempdir");
    let spill_root = spill_dir.root().to_path_buf();
    let results = resource_exp::run(20_000, Arc::new(spill_dir));
    let mut table = Table::new(
        "12 joins, budget = peak/2",
        &[
            "query",
            "peak",
            "budget",
            "without subsystem",
            "with subsystem",
            "spilled",
            "rows match",
        ],
    );
    let mut killed = 0;
    let mut completed = 0;
    let mut spilled_total = 0;
    for r in &results {
        killed += r.unmanaged_killed() as usize;
        completed += r.managed_ok as usize;
        spilled_total += r.spilled_bytes;
        table.row(vec![
            r.name.clone(),
            format!("{} B", r.peak_bytes),
            format!("{} B", r.budget_bytes),
            r.unmanaged_error.clone().unwrap_or_else(|| "completed".into()),
            if r.managed_ok { "completed".into() } else { "failed".into() },
            format!("{} B / {} files", r.spilled_bytes, r.spill_files),
            r.rows_match.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "without subsystem: {killed}/12 killed; with subsystem: {completed}/12 completed, {spilled_total} bytes spilled\n"
    );
    let _ = std::fs::remove_dir_all(spill_root);
}

fn run_fig16() {
    println!("\n=== Fig 16: Druid vs Presto-Druid connector ===");
    println!("paper claim: connector adds <15% overhead; most queries < 1s\n");
    let results = fig16::run(200_000);
    let mut table = Table::new(
        "20 production-style queries (14 predicated, 5 limited, 12 aggregations)",
        &["query", "druid native", "presto-druid connector", "overhead"],
    );
    let mut overheads = Vec::new();
    for r in &results {
        overheads.push(r.overhead_pct);
        table.row(vec![
            r.name.clone(),
            ms(r.native),
            ms(r.connector),
            format!("{:+.1}%", r.overhead_pct),
        ]);
    }
    println!("{}", table.render());
    overheads.sort_by(f64::total_cmp);
    let median = overheads[overheads.len() / 2];
    let sub_second = results.iter().filter(|r| r.connector < Duration::from_secs(1)).count();
    println!("median overhead: {median:+.1}%  (paper: <15%)");
    println!("queries under 1s through the connector: {sub_second}/20\n");
}

fn run_fig17() {
    println!("\n=== Fig 17: legacy vs new Parquet reader ===");
    println!("paper claim: 2–10x speedup across 21 queries; P90 5min → 40s\n");
    let results = fig17::run(60_000);
    let mut table = Table::new(
        "21 queries over nested trips (4 scans incl. 2 needle-in-haystack, 5 group-bys, 12 joins)",
        &["query", "kind", "old reader", "new reader", "speedup"],
    );
    for r in &results {
        table.row(vec![
            r.name.clone(),
            format!("{:?}", r.kind),
            ms(r.old_reader),
            ms(r.new_reader),
            format!("{:.1}x", r.speedup),
        ]);
    }
    println!("{}", table.render());
    let mut speedups: Vec<f64> = results.iter().map(|r| r.speedup).collect();
    speedups.sort_by(f64::total_cmp);
    println!(
        "speedup min/median/max: {:.1}x / {:.1}x / {:.1}x  (paper: 2–10x)\n",
        speedups[0],
        speedups[speedups.len() / 2],
        speedups[speedups.len() - 1]
    );
}

fn run_writer_figure(codec: Codec, title: &str) {
    println!("\n=== {title} ===");
    println!("paper claim: native writer ≥ ~20% throughput gain (bigint+gzip best; lineitem ~50% uncompressed)\n");
    let results = writers::run_figure(codec, 150_000);
    let mut table = Table::new(
        format!("codec = {}", codec.name()),
        &["workload", "old writer", "native writer", "gain"],
    );
    for r in &results {
        table.row(vec![
            r.workload.clone(),
            format!("{:.1} MB/s", r.old_mbps()),
            format!("{:.1} MB/s", r.native_mbps()),
            format!("{:+.0}%", r.gain_pct()),
        ]);
    }
    println!("{}", table.render());
}

fn run_geo() {
    println!("\n=== §VI: QuadTree geospatial join vs brute force ===");
    println!("paper claim: Presto Geospatial plugin >50x faster than brute force\n");
    let mut table = Table::new(
        "trips-in-city counting",
        &[
            "cities",
            "trips",
            "vertices",
            "quadtree",
            "brute force",
            "speedup",
            "st_contains calls (quad vs brute)",
        ],
    );
    for (cities, trips, vertices) in [(500, 20_000, 100), (2_000, 20_000, 200), (5_000, 5_000, 400)]
    {
        let r = geo_exp::run(cities, trips, vertices, 7);
        table.row(vec![
            cities.to_string(),
            trips.to_string(),
            vertices.to_string(),
            ms(r.quadtree),
            ms(r.brute_force),
            format!("{:.0}x", r.speedup()),
            format!("{} vs {}", r.quadtree_contains_calls, r.brute_contains_calls),
        ]);
    }
    println!("{}", table.render());
}

fn run_cache() {
    println!("\n=== §VII: file-list cache and file-handle/footer cache ===");
    println!("paper claims: listFiles reduced to <40%; ~90% of getFileInfo removed\n");
    let result = cache_exp::run(&cache_exp::CacheTrace::default(), 7);
    let mut table = Table::new(
        "2000-scan trace, 5 hot tables (sealed+open partitions), 20 cold tables",
        &["metric", "baseline", "with caches", "paper", "measured"],
    );
    table.row(vec![
        "HDFS listFiles calls".into(),
        result.list_calls_baseline.to_string(),
        result.list_calls_cached.to_string(),
        "< 40% remain".into(),
        format!("{:.1}% remain", result.list_remaining_pct()),
    ]);
    table.row(vec![
        "HDFS getFileInfo calls".into(),
        result.getinfo_calls_baseline.to_string(),
        result.getinfo_calls_cached.to_string(),
        "~90% removed".into(),
        format!("{:.1}% removed", result.getinfo_reduction_pct()),
    ]);
    println!("{}", table.render());

    // ---- cluster-wide tiered cache: Zipfian sweep + gates
    println!("=== distributed cache: Zipfian capacity sweep on the consistent-hash ring ===");
    let config = cache_bench::CacheBenchConfig::default();
    println!(
        "{} accesses over {} tables (zipf s={}), {} workers, sweep {:?}\n",
        config.accesses, config.tables, config.zipf_s, config.workers, config.capacities
    );
    let bench = cache_bench::run(&config);
    let mut gate_failed = false;
    let mut table = Table::new(
        "per-shard capacity sweep (shadow vs measured at the aggregate capacity)",
        &["capacity/shard", "hits", "misses", "hit rate", "shadow pred", "lru measured", "digest"],
    );
    let mut sweep_json = Vec::new();
    for point in &bench.sweep {
        table.row(vec![
            point.capacity.to_string(),
            point.hits.to_string(),
            point.misses.to_string(),
            format!("{:.1}%", point.hit_pct()),
            format!("{:.1}%", point.shadow_predicted_pct),
            format!("{:.1}%", point.lru_measured_pct),
            format!("{:#018x}", point.digest),
        ]);
        sweep_json.push((
            point.capacity.to_string(),
            Json::Obj(vec![
                ("hits".into(), Json::U64(point.hits)),
                ("misses".into(), Json::U64(point.misses)),
                ("hit_pct".into(), Json::F64(point.hit_pct())),
                ("shadow_predicted_pct".into(), Json::F64(point.shadow_predicted_pct)),
                ("lru_measured_pct".into(), Json::F64(point.lru_measured_pct)),
                ("digest".into(), Json::Str(format!("{:#018x}", point.digest))),
            ]),
        ));
    }
    println!("{}", table.render());

    if !bench.monotone() {
        eprintln!("cache gate FAILED: hit rate not monotone in capacity");
        gate_failed = true;
    }
    if bench.worst_shadow_error_pct() >= 5.0 {
        eprintln!(
            "cache gate FAILED: shadow estimate off by {:.2}% (limit 5%)",
            bench.worst_shadow_error_pct()
        );
        gate_failed = true;
    }
    if !bench.deterministic {
        eprintln!("cache gate FAILED: same-seed replays diverged (digest mismatch)");
        gate_failed = true;
    }
    let remap_worst = bench
        .remap
        .iter()
        .filter(|p| !p.holds())
        .map(|p| {
            format!(
                "fleet {}: moved {} owned {} bound {}",
                p.fleet, p.moved, p.owned_by_victim, p.bound
            )
        })
        .collect::<Vec<_>>();
    if !remap_worst.is_empty() {
        eprintln!("cache gate FAILED: minimal-remap violated: {remap_worst:?}");
        gate_failed = true;
    }
    println!(
        "gates: monotone={}, shadow worst error {:.2}% (<5%), deterministic={}, \
         minimal-remap holds for fleets 2..=32: {}\n",
        bench.monotone(),
        bench.worst_shadow_error_pct(),
        bench.deterministic,
        bench.remap_holds(),
    );

    let json = Json::Obj(vec![
        ("experiment".into(), Json::Str("cache".into())),
        (
            "hdfs_caches".into(),
            Json::Obj(vec![
                ("list_remaining_pct".into(), Json::F64(result.list_remaining_pct())),
                ("getinfo_reduction_pct".into(), Json::F64(result.getinfo_reduction_pct())),
            ]),
        ),
        ("sweep".into(), Json::Obj(sweep_json)),
        (
            "gates".into(),
            Json::Obj(vec![
                ("monotone".into(), Json::Bool(bench.monotone())),
                ("shadow_worst_error_pct".into(), Json::F64(bench.worst_shadow_error_pct())),
                ("deterministic".into(), Json::Bool(bench.deterministic)),
                ("minimal_remap_holds".into(), Json::Bool(bench.remap_holds())),
            ]),
        ),
        ("gates_passed".into(), Json::Bool(!gate_failed)),
    ]);
    match write_bench_json("cache", &json) {
        Ok(path) => println!("wrote {path}\n"),
        Err(e) => eprintln!("could not write BENCH_cache.json: {e}"),
    }
    if gate_failed {
        std::process::exit(1);
    }
}

fn run_s3() {
    println!("\n=== §IX: PrestoS3FileSystem optimizations ===\n");
    let lazy = s3_exp::lazy_seek(50);
    let mut table = Table::new(
        "lazy seek (footer-first access over 50 files)",
        &["policy", "GET requests", "virtual time"],
    );
    table.row(vec!["eager seek".into(), lazy.eager_gets.to_string(), ms(lazy.eager_time)]);
    table.row(vec!["lazy seek".into(), lazy.lazy_gets.to_string(), ms(lazy.lazy_time)]);
    println!("{}", table.render());

    let backoff = s3_exp::backoff(200, 3);
    let mut table = Table::new(
        "exponential backoff (503 every 3rd request)",
        &["policy", "reads completed", "retries", "time backing off"],
    );
    table.row(vec![
        "no retries".into(),
        format!("{}/200", backoff.completed_without_retries),
        "0".into(),
        "0ms".into(),
    ]);
    table.row(vec![
        "exponential backoff".into(),
        format!("{}/200", backoff.completed_with_retries),
        backoff.retries.to_string(),
        ms(backoff.backoff_time),
    ]);
    println!("{}", table.render());

    let select = s3_exp::s3_select(20_000);
    let mut table = Table::new("S3 Select (project 2 of 8 columns)", &["path", "bytes out of S3"]);
    table.row(vec!["full GET".into(), select.full_bytes.to_string()]);
    table.row(vec!["S3 Select".into(), select.select_bytes.to_string()]);
    println!("{}", table.render());

    let multi = s3_exp::multipart(64);
    let mut table = Table::new(
        "multipart upload (64 MiB object, 4 MiB parts)",
        &["path", "virtual upload time", "effective throughput"],
    );
    table.row(vec![
        "single PUT".into(),
        ms(multi.single_put),
        mbps(64 * 1024 * 1024, multi.single_put),
    ]);
    table.row(vec![
        "multipart (parallel parts)".into(),
        ms(multi.multipart),
        mbps(64 * 1024 * 1024, multi.multipart),
    ]);
    println!("{}", table.render());
}

fn run_shrink() {
    println!("\n=== §IX: graceful expansion and shrink ===");
    println!("paper claim: workers drain through SHUTTING_DOWN with zero failed queries\n");
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
    let pages: Vec<Page> = (0..16)
        .map(|p| Page::new(vec![Block::bigint((p * 100..p * 100 + 100).collect())]).unwrap())
        .collect();
    memory.create_table("default", "t", schema, pages).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "elastic",
        engine,
        ClusterConfig {
            initial_workers: 2,
            grace_period: Duration::from_secs(120),
            ..ClusterConfig::default()
        },
        clock.clone(),
    );
    let session = Session::default();
    let mut table =
        Table::new("timeline", &["event", "active workers", "queries ok", "queries failed"]);
    let snapshot = |cluster: &PrestoCluster, event: &str, table: &mut Table| {
        table.row(vec![
            event.to_string(),
            cluster.active_workers().len().to_string(),
            cluster.queries_started().to_string(),
            cluster.metrics().get("cluster.queries_failed").to_string(),
        ]);
    };
    cluster.execute("SELECT count(*) FROM t", &session).unwrap();
    snapshot(&cluster, "baseline (2 workers)", &mut table);
    cluster.expand(6);
    cluster.execute("SELECT count(*) FROM t", &session).unwrap();
    snapshot(&cluster, "busy hours: expand to 8", &mut table);
    for id in 2..8 {
        cluster.request_worker_shutdown(id).unwrap();
    }
    for _ in 0..4 {
        cluster.execute("SELECT count(*) FROM t", &session).unwrap();
        clock.advance(Duration::from_secs(61));
        cluster.tick();
    }
    snapshot(&cluster, "shrinking: 6 workers draining", &mut table);
    clock.advance(Duration::from_secs(240));
    cluster.tick();
    cluster.execute("SELECT count(*) FROM t", &session).unwrap();
    snapshot(&cluster, "after grace periods", &mut table);
    println!("{}", table.render());
}

fn run_gateway() {
    println!("\n=== §VIII: cluster federation gateway ===");
    println!("paper claim: MySQL-driven routing, zero-downtime redirect during maintenance\n");
    let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
    let mk = |name: &str| {
        PrestoCluster::new(
            name,
            PrestoEngine::new(),
            ClusterConfig {
                initial_workers: 2,
                grace_period: Duration::from_secs(10),
                ..ClusterConfig::default()
            },
            SimClock::new(),
        )
    };
    let clusters: Vec<_> = ["dedicated-ads", "dedicated-eats", "shared-1", "shared-2", "adhoc"]
        .iter()
        .map(|n| mk(n))
        .collect();
    for c in &clusters {
        gateway.add_cluster(c.clone());
    }
    gateway.set_route("*", "shared-1").unwrap();
    gateway.set_route("ads", "dedicated-ads").unwrap();
    gateway.set_route("eats", "dedicated-eats").unwrap();

    let session = Session::default();
    let mut table = Table::new("routing under maintenance", &["phase", "group", "served by"]);
    for group in ["ads", "eats", "random-team"] {
        table.row(vec!["normal".into(), group.into(), gateway.route(group).unwrap().cluster]);
    }
    clusters[0].set_maintenance(true); // upgrade dedicated-ads
    for group in ["ads", "eats"] {
        gateway.submit(group, "SELECT 1", &session).unwrap();
        table.row(vec![
            "dedicated-ads in maintenance".into(),
            group.into(),
            gateway.route(group).unwrap().cluster,
        ]);
    }
    clusters[0].set_maintenance(false);
    table.row(vec!["after upgrade".into(), "ads".into(), gateway.route("ads").unwrap().cluster]);
    println!("{}", table.render());
    println!(
        "queries failed during the whole exercise: {}",
        clusters.iter().map(|c| c.metrics().get("cluster.queries_failed")).sum::<u64>()
    );
}
