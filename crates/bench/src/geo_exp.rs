//! §VI experiment: QuadTree vs brute-force geospatial join.
//!
//! "Compared with the brute force Hive MapReduce execution, our Presto
//! Geospatial Plugin is more than 50X faster." The cost asymmetry is
//! algorithmic: brute force evaluates `st_contains` for every (trip,
//! geofence) pair; the QuadTree filters to the handful of candidate fences
//! whose bounding boxes contain the point.

use std::time::{Duration, Instant};

use presto_geo::generator::GeoWorkload;
use presto_geo::index::GeofenceIndex;

/// Results of one geo run.
#[derive(Debug, Clone)]
pub struct GeoResult {
    /// Number of geofences.
    pub cities: usize,
    /// Number of trip points.
    pub trips: usize,
    /// Vertices per geofence.
    pub vertices: usize,
    /// QuadTree path elapsed.
    pub quadtree: Duration,
    /// Brute-force path elapsed.
    pub brute_force: Duration,
    /// st_contains evaluations, QuadTree path.
    pub quadtree_contains_calls: u64,
    /// st_contains evaluations, brute force.
    pub brute_contains_calls: u64,
}

impl GeoResult {
    /// Wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.brute_force.as_secs_f64() / self.quadtree.as_secs_f64().max(1e-12)
    }
}

/// Count trips per city both ways and compare.
pub fn run(cities: usize, trips: usize, vertices: usize, seed: u64) -> GeoResult {
    let workload = GeoWorkload::generate(cities, trips, vertices, seed);
    let index = GeofenceIndex::build(workload.cities.clone()).expect("geofences are valid");

    // QuadTree path (the build_geo_index plan of Fig 13)
    let start = Instant::now();
    let mut quad_counts = vec![0u64; cities];
    for p in &workload.trips {
        for id in index.find_containing(p) {
            quad_counts[id as usize] += 1;
        }
    }
    let quadtree = start.elapsed();
    let quadtree_contains_calls = index.contains_calls();

    // brute force (§VI.C's Hive MapReduce execution shape)
    let start = Instant::now();
    let mut brute_counts = vec![0u64; cities];
    for p in &workload.trips {
        for id in index.find_containing_brute_force(p) {
            brute_counts[id as usize] += 1;
        }
    }
    let brute_force = start.elapsed();
    let brute_contains_calls = index.contains_calls() - quadtree_contains_calls;

    assert_eq!(quad_counts, brute_counts, "paths must agree");
    GeoResult {
        cities,
        trips,
        vertices,
        quadtree,
        brute_force,
        quadtree_contains_calls,
        brute_contains_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadtree_beats_brute_force_substantially() {
        let r = run(2_000, 1_000, 60, 7);
        assert!(
            r.quadtree_contains_calls * 10 <= r.brute_contains_calls,
            "filter must remove the vast majority of candidates: {} vs {}",
            r.quadtree_contains_calls,
            r.brute_contains_calls
        );
        assert!(r.speedup() > 2.0, "speedup was only {:.1}x", r.speedup());
    }
}
