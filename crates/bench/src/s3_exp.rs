//! §IX experiments: the four PrestoS3FileSystem optimizations, each
//! measured with the optimization on vs off.
//!
//! - lazy seek: GET requests saved on seek-heavy (footer-first) access;
//! - exponential backoff: survival under 503 bursts, virtual time spent;
//! - S3 Select: bytes moved with projection pushed to storage;
//! - multipart upload: virtual upload time for large objects.

use std::time::Duration;

use presto_common::metrics::CounterSet;
use presto_common::SimClock;
use presto_storage::s3::{S3Config, S3FsConfig};
use presto_storage::{FileSystem, PrestoS3FileSystem, S3ObjectStore};

/// Lazy-seek comparison.
#[derive(Debug, Clone)]
pub struct LazySeekResult {
    /// GETs issued with eager seeks.
    pub eager_gets: u64,
    /// GETs issued with lazy seeks.
    pub lazy_gets: u64,
    /// Virtual time, eager.
    pub eager_time: Duration,
    /// Virtual time, lazy.
    pub lazy_time: Duration,
}

/// A Parquet-reader-shaped access pattern: open, seek to the footer, seek to
/// two column chunks, read a little from each; repeated over `files` files.
pub fn lazy_seek(files: usize) -> LazySeekResult {
    let run = |lazy: bool| -> (u64, Duration) {
        let clock = SimClock::new();
        let store = S3ObjectStore::new(S3Config::default(), clock.clone(), CounterSet::new());
        for f in 0..files {
            store.seed(&format!("/b/file{f}"), &vec![0u8; 4 * 1024 * 1024]);
        }
        let fs = PrestoS3FileSystem::new(
            store.clone(),
            S3FsConfig { lazy_seek: lazy, ..S3FsConfig::default() },
        );
        let t0 = clock.now();
        for f in 0..files {
            let mut stream = fs.open(&format!("/b/file{f}")).unwrap();
            // footer dance: tail, then footer body, then two chunks — with a
            // couple of superseded seeks (stats said "skip this chunk")
            stream.seek(4 * 1024 * 1024 - 8).unwrap();
            stream.read(8).unwrap();
            stream.seek(4 * 1024 * 1024 - 4096).unwrap();
            stream.read(4096).unwrap();
            stream.seek(1024).unwrap(); // chunk A... actually skipped
            stream.seek(2 * 1024 * 1024).unwrap(); // chunk B
            stream.read(65536).unwrap();
        }
        (store.metrics().get("s3.get"), clock.now() - t0)
    };
    let (eager_gets, eager_time) = run(false);
    let (lazy_gets, lazy_time) = run(true);
    LazySeekResult { eager_gets, lazy_gets, eager_time, lazy_time }
}

/// Backoff comparison under transient faults.
#[derive(Debug, Clone)]
pub struct BackoffResult {
    /// Reads completed (out of attempted) with retries enabled.
    pub completed_with_retries: usize,
    /// Reads completed with no retry policy (max_retries = 0).
    pub completed_without_retries: usize,
    /// Retries performed.
    pub retries: u64,
    /// Virtual time spent backing off.
    pub backoff_time: Duration,
}

/// Issue `reads` reads against a store that fails every `fail_every`-th
/// request.
pub fn backoff(reads: usize, fail_every: u64) -> BackoffResult {
    let run = |max_retries: u32| -> (usize, u64, Duration) {
        let clock = SimClock::new();
        let metrics = CounterSet::new();
        let store = S3ObjectStore::new(
            S3Config { fail_every, ..S3Config::default() },
            clock,
            metrics.clone(),
        );
        store.seed("/b/data", &vec![1u8; 1024]);
        let fs = PrestoS3FileSystem::new(
            store,
            S3FsConfig { max_retries, exponential_backoff: true, ..S3FsConfig::default() },
        );
        let mut completed = 0;
        for _ in 0..reads {
            if fs.read_range("/b/data", 0, 1024).is_ok() {
                completed += 1;
            }
        }
        (
            completed,
            metrics.get("s3fs.retries"),
            Duration::from_nanos(metrics.get("s3fs.backoff_nanos")),
        )
    };
    let (completed_with_retries, retries, backoff_time) = run(6);
    let (completed_without_retries, _, _) = run(0);
    BackoffResult { completed_with_retries, completed_without_retries, retries, backoff_time }
}

/// S3-Select comparison: bytes out with projection pushed to storage.
#[derive(Debug, Clone)]
pub struct SelectResult {
    /// Bytes a full GET moves.
    pub full_bytes: u64,
    /// Bytes S3 Select moves for a 2-of-8-column projection.
    pub select_bytes: u64,
}

/// Store a delimited 8-column object and read 2 columns both ways.
pub fn s3_select(rows: usize) -> SelectResult {
    let store = S3ObjectStore::with_defaults();
    let mut body = String::new();
    for i in 0..rows {
        let fields: Vec<String> = (0..8).map(|c| format!("value_{i}_{c}")).collect();
        body.push_str(&fields.join("\x1f"));
        body.push('\n');
    }
    store.seed("/b/table", body.as_bytes());

    store.metrics().reset();
    store.get_object("/b/table", None).unwrap();
    let full_bytes = store.metrics().get("s3.bytes_out");

    store.metrics().reset();
    store.select_object("/b/table", &[0, 4]).unwrap();
    let select_bytes = store.metrics().get("s3.bytes_out");
    SelectResult { full_bytes, select_bytes }
}

/// Multipart upload comparison: virtual time to upload one large object.
#[derive(Debug, Clone)]
pub struct MultipartResult {
    /// Virtual time with a single PUT.
    pub single_put: Duration,
    /// Virtual time with parallel multipart upload.
    pub multipart: Duration,
}

/// Upload `mb` megabytes once as a single object, once multipart.
pub fn multipart(mb: usize) -> MultipartResult {
    let data = vec![7u8; mb * 1024 * 1024];
    let run = |threshold: usize| -> Duration {
        let clock = SimClock::new();
        let store = S3ObjectStore::new(S3Config::default(), clock.clone(), CounterSet::new());
        let fs = PrestoS3FileSystem::new(
            store,
            S3FsConfig {
                multipart_threshold: threshold,
                part_size: 4 * 1024 * 1024,
                ..S3FsConfig::default()
            },
        );
        let t0 = clock.now();
        fs.write("/b/big", &data).unwrap();
        clock.now() - t0
    };
    MultipartResult { single_put: run(usize::MAX), multipart: run(1) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_seek_saves_requests_and_time() {
        let r = lazy_seek(10);
        assert!(r.lazy_gets < r.eager_gets, "{} vs {}", r.lazy_gets, r.eager_gets);
        assert!(r.lazy_time < r.eager_time);
    }

    #[test]
    fn backoff_survives_fault_bursts() {
        let r = backoff(100, 3);
        assert_eq!(r.completed_with_retries, 100, "all reads must succeed with retries");
        assert!(r.completed_without_retries < 100);
        assert!(r.retries > 0);
    }

    #[test]
    fn select_moves_fewer_bytes() {
        let r = s3_select(500);
        assert!(r.select_bytes * 2 < r.full_bytes);
    }

    #[test]
    fn multipart_is_faster_for_big_objects() {
        let r = multipart(32);
        assert!(r.multipart < r.single_put, "{:?} vs {:?}", r.multipart, r.single_put);
    }
}
