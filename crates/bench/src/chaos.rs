//! §XII chaos experiment: a query stream against a cluster under seeded
//! fault injection, with and without coordinator fault recovery.
//!
//! Every task start may be failed (probability `fault_rate`) or turned into
//! a worker crash by the declarative [`FaultPlan`]; all decisions are pure
//! functions of `(seed, worker, task ordinal)`, and retry backoff advances
//! the virtual clock, so one `(seed, config)` pair replays the exact same
//! schedule — the experiment is a determinism check as much as a
//! survival-rate one.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

use presto_cluster::{ClusterConfig, PrestoCluster, SpeculationConfig};
use presto_common::metrics::names;
use presto_common::{Block, DataType, FaultInjector, FaultPlan, Field, Page, Schema, SimClock};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};

/// Chaos run parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Workers in the cluster.
    pub workers: u32,
    /// Queries submitted serially.
    pub queries: usize,
    /// Per-task transient fault probability.
    pub fault_rate: f64,
    /// Injector seed — same seed, same schedule.
    pub seed: u64,
    /// Coordinator split-reassignment recovery on/off.
    pub recovery: bool,
    /// Also crash worker 0 when it starts its 25th task (exercises abrupt
    /// node loss on top of the flaky-task noise).
    pub crash_worker: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            workers: 6,
            queries: 40,
            fault_rate: 0.10,
            seed: 42,
            recovery: true,
            crash_worker: true,
        }
    }
}

/// Outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// The fault rate this run used.
    pub fault_rate: f64,
    /// Whether recovery was on.
    pub recovery: bool,
    /// Queries submitted.
    pub queries: usize,
    /// Queries that returned rows.
    pub succeeded: usize,
    /// `cluster.split_retries` at the end of the run.
    pub split_retries: u64,
    /// `cluster.worker_failures` at the end of the run.
    pub worker_failures: u64,
    /// `cluster.blacklisted_workers` at the end of the run.
    pub blacklisted_workers: u64,
    /// Worker crashes the injector fired.
    pub crashes_injected: u64,
    /// Transient task faults the injector fired.
    pub task_faults_injected: u64,
    /// Virtual time consumed by the run (admission waits + retry backoff).
    pub virtual_ms: u64,
    /// Order-sensitive digest over every successful query's rows — two runs
    /// with the same seed must agree bit-for-bit.
    pub rows_digest: u64,
    /// Order-sensitive fold of every successful query's virtual-time trace
    /// digest. Stronger than `rows_digest`: it pins not just *what* each
    /// query answered but the whole span tree — which worker ran which
    /// split, every injected failure, every retry round, every timestamp.
    pub trace_digest: u64,
}

impl ChaosResult {
    /// Fraction of queries that completed.
    pub fn success_rate(&self) -> f64 {
        self.succeeded as f64 / self.queries.max(1) as f64
    }
}

fn engine_with_table() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)])
        .unwrap_or_else(|e| panic!("chaos schema: {e}"));
    // 12 pages → 12 splits per query, spread over the workers
    let pages: Vec<Page> = (0..12)
        .map(|p| {
            Page::new(vec![Block::bigint((p * 50..p * 50 + 50).collect())])
                .unwrap_or_else(|e| panic!("chaos page: {e}"))
        })
        .collect();
    memory
        .create_table("default", "t", schema, pages)
        .unwrap_or_else(|e| panic!("chaos table: {e}"));
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

/// Run the chaos workload: `config.queries` aggregations over a 12-split
/// table while the injector fails tasks (and optionally crashes a worker).
pub fn run(config: &ChaosConfig) -> ChaosResult {
    let mut plan = FaultPlan::new().fail_rate(config.fault_rate);
    if config.crash_worker {
        plan = plan.crash_on_task(0, 25);
    }
    let injector = FaultInjector::new(config.seed, plan);
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "chaos",
        engine_with_table(),
        ClusterConfig {
            initial_workers: config.workers,
            fault_injector: injector.clone(),
            fault_recovery: config.recovery,
            max_split_attempts: 4,
            // rate 0.2 would trip a 3-strike blacklist constantly; the
            // experiment is about retries, so quarantine only real streaks
            blacklist_after: 4,
            ..ClusterConfig::default()
        },
        clock.clone(),
    );
    let session = Session::default();
    let start = clock.now();
    let mut succeeded = 0;
    let mut digest = DefaultHasher::new();
    let mut trace_digest = DefaultHasher::new();
    for _ in 0..config.queries {
        if let Ok(result) = cluster.execute("SELECT sum(x), count(*) FROM t", &session) {
            succeeded += 1;
            format!("{:?}", result.rows()).hash(&mut digest);
            // Only successful queries fold in: a doomed query's cancel flag
            // races sibling workers, so its span count is timing-dependent.
            result.info.trace.digest().hash(&mut trace_digest);
        }
    }
    let virtual_ms = (clock.now() - start).as_millis() as u64;
    ChaosResult {
        fault_rate: config.fault_rate,
        recovery: config.recovery,
        queries: config.queries,
        succeeded,
        split_retries: cluster.metrics().get(names::CLUSTER_SPLIT_RETRIES),
        worker_failures: cluster.metrics().get(names::CLUSTER_WORKER_FAILURES),
        blacklisted_workers: cluster.metrics().get(names::CLUSTER_BLACKLISTED_WORKERS),
        crashes_injected: injector.crashes_injected(),
        task_faults_injected: injector.task_faults_injected(),
        virtual_ms,
        rows_digest: digest.finish(),
        trace_digest: trace_digest.finish(),
    }
}

/// Straggler scenario parameters: the same query stream, but instead of
/// failing tasks the injector *stalls* scan pages mid-stream, turning a
/// random subset of splits into stragglers hundreds of times slower than
/// their siblings. Run twice — speculation on and off — on the same seed
/// to measure what duplicate attempts buy at the tail.
#[derive(Debug, Clone)]
pub struct StragglerConfig {
    /// Workers in the cluster.
    pub workers: u32,
    /// Queries submitted serially.
    pub queries: usize,
    /// Injector seed — same seed, same stall schedule.
    pub seed: u64,
    /// Per-scan-page stall probability.
    pub stall_rate: f64,
    /// Injected stall length (virtual time) — each stalled page costs this.
    pub stall: Duration,
    /// Speculative execution on/off.
    pub speculation: bool,
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig {
            workers: 4,
            queries: 30,
            seed: 42,
            stall_rate: 0.10,
            stall: Duration::from_millis(20),
            speculation: true,
        }
    }
}

/// Outcome of one straggler run.
#[derive(Debug, Clone)]
pub struct StragglerResult {
    /// Whether speculation was on.
    pub speculation: bool,
    /// Queries submitted.
    pub queries: usize,
    /// Queries that returned rows.
    pub succeeded: usize,
    /// Query latency percentiles (virtual µs) over the whole stream.
    pub p50_us: u64,
    /// 95th percentile latency (virtual µs).
    pub p95_us: u64,
    /// 99th percentile latency (virtual µs).
    pub p99_us: u64,
    /// `cluster.speculative_launches` at the end of the run.
    pub speculative_launches: u64,
    /// `cluster.speculative_wins` at the end of the run.
    pub speculative_wins: u64,
    /// `cluster.speculative_wasted` at the end of the run.
    pub speculative_wasted: u64,
    /// Mid-stream stalls the injector fired.
    pub stalls_injected: u64,
    /// Virtual time consumed by the run.
    pub virtual_ms: u64,
    /// Order-sensitive digest over every successful query's rows.
    pub rows_digest: u64,
    /// Order-sensitive fold of every successful query's trace digest.
    pub trace_digest: u64,
}

/// Run the straggler workload: `config.queries` aggregations over a
/// 12-split table while the injector stalls scan pages mid-stream.
pub fn run_straggler(config: &StragglerConfig) -> StragglerResult {
    let injector = FaultInjector::new(
        config.seed,
        FaultPlan::new().scan_stall_rate(config.stall_rate, config.stall),
    );
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "straggler",
        engine_with_table(),
        ClusterConfig {
            initial_workers: config.workers,
            fault_injector: injector.clone(),
            speculation: SpeculationConfig {
                enabled: config.speculation,
                ..SpeculationConfig::default()
            },
            ..ClusterConfig::default()
        },
        clock.clone(),
    );
    let session = Session::default();
    let start = clock.now();
    let mut succeeded = 0;
    let mut digest = DefaultHasher::new();
    let mut trace_digest = DefaultHasher::new();
    for _ in 0..config.queries {
        if let Ok(result) = cluster.execute("SELECT sum(x), count(*) FROM t", &session) {
            succeeded += 1;
            format!("{:?}", result.rows()).hash(&mut digest);
            result.info.trace.digest().hash(&mut trace_digest);
        }
    }
    let latency = cluster.histograms().get(names::HIST_CLUSTER_QUERY_LATENCY_US);
    StragglerResult {
        speculation: config.speculation,
        queries: config.queries,
        succeeded,
        p50_us: latency.quantile(0.50),
        p95_us: latency.quantile(0.95),
        p99_us: latency.quantile(0.99),
        speculative_launches: cluster.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES),
        speculative_wins: cluster.metrics().get(names::CLUSTER_SPECULATIVE_WINS),
        speculative_wasted: cluster.metrics().get(names::CLUSTER_SPECULATIVE_WASTED),
        stalls_injected: injector.stalls_injected(),
        virtual_ms: (clock.now() - start).as_millis() as u64,
        rows_digest: digest.finish(),
        trace_digest: trace_digest.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_materially_beats_no_recovery_at_ten_percent() {
        let on = run(&ChaosConfig::default());
        let off = run(&ChaosConfig { recovery: false, ..ChaosConfig::default() });
        assert!(on.success_rate() >= 0.95, "recovery on: {}/{} queries", on.succeeded, on.queries);
        assert!(on.split_retries > 0, "recovery must actually have retried splits");
        assert!(
            off.success_rate() <= on.success_rate() - 0.25,
            "recovery off must be materially worse: {} vs {}",
            off.success_rate(),
            on.success_rate()
        );
        assert_eq!(off.split_retries, 0, "no recovery, no retries");
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let a = run(&ChaosConfig::default());
        let b = run(&ChaosConfig::default());
        assert_eq!(a.rows_digest, b.rows_digest);
        assert_eq!(a.trace_digest, b.trace_digest, "span trees must replay bit-for-bit");
        assert_eq!(a.succeeded, b.succeeded);
        assert_eq!(a.split_retries, b.split_retries);
        assert_eq!(a.worker_failures, b.worker_failures);
        assert_eq!(a.task_faults_injected, b.task_faults_injected);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        // and a different seed gives a different schedule
        let c = run(&ChaosConfig { seed: 43, ..ChaosConfig::default() });
        assert_ne!(
            (a.split_retries, a.task_faults_injected),
            (c.split_retries, c.task_faults_injected)
        );
    }

    #[test]
    fn zero_fault_rate_is_failure_free_without_the_crash() {
        let r =
            run(&ChaosConfig { fault_rate: 0.0, crash_worker: false, ..ChaosConfig::default() });
        assert_eq!(r.succeeded, r.queries);
        assert_eq!(r.split_retries, 0);
        assert_eq!(r.worker_failures, 0);
        assert_eq!(r.crashes_injected, 0);
    }

    #[test]
    fn speculation_beats_stragglers_at_the_tail() {
        let on = run_straggler(&StragglerConfig::default());
        let off = run_straggler(&StragglerConfig { speculation: false, ..Default::default() });
        // every query answers either way — stalls delay, they don't fail
        assert_eq!(on.succeeded, on.queries);
        assert_eq!(off.succeeded, off.queries);
        assert_eq!(on.rows_digest, off.rows_digest, "speculation must not change answers");
        assert!(on.stalls_injected > 0, "the plan must actually stall pages");
        assert!(on.speculative_launches > 0, "stalled splits must trigger duplicates");
        assert!(on.speculative_wins > 0, "some duplicates must win their race");
        assert_eq!(off.speculative_launches, 0, "speculation off launches nothing");
        assert!(
            on.p99_us < off.p99_us,
            "speculation must cut tail latency: on p99 {} vs off p99 {}",
            on.p99_us,
            off.p99_us
        );
    }

    #[test]
    fn straggler_runs_replay_on_the_same_seed() {
        let a = run_straggler(&StragglerConfig::default());
        let b = run_straggler(&StragglerConfig::default());
        assert_eq!(a.rows_digest, b.rows_digest);
        assert_eq!(a.trace_digest, b.trace_digest, "span trees must replay bit-for-bit");
        assert_eq!(a.speculative_launches, b.speculative_launches);
        assert_eq!(a.speculative_wins, b.speculative_wins);
        assert_eq!(a.stalls_injected, b.stalls_injected);
        assert_eq!(a.virtual_ms, b.virtual_ms);
    }
}
