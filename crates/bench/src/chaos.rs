//! §XII chaos experiment: a query stream against a cluster under seeded
//! fault injection, with and without coordinator fault recovery.
//!
//! Every task start may be failed (probability `fault_rate`) or turned into
//! a worker crash by the declarative [`FaultPlan`]; all decisions are pure
//! functions of `(seed, worker, task ordinal)`, and retry backoff advances
//! the virtual clock, so one `(seed, config)` pair replays the exact same
//! schedule — the experiment is a determinism check as much as a
//! survival-rate one.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use presto_cluster::{ClusterConfig, PrestoCluster};
use presto_common::metrics::names;
use presto_common::{Block, DataType, FaultInjector, FaultPlan, Field, Page, Schema, SimClock};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};

/// Chaos run parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Workers in the cluster.
    pub workers: u32,
    /// Queries submitted serially.
    pub queries: usize,
    /// Per-task transient fault probability.
    pub fault_rate: f64,
    /// Injector seed — same seed, same schedule.
    pub seed: u64,
    /// Coordinator split-reassignment recovery on/off.
    pub recovery: bool,
    /// Also crash worker 0 when it starts its 25th task (exercises abrupt
    /// node loss on top of the flaky-task noise).
    pub crash_worker: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            workers: 6,
            queries: 40,
            fault_rate: 0.10,
            seed: 42,
            recovery: true,
            crash_worker: true,
        }
    }
}

/// Outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// The fault rate this run used.
    pub fault_rate: f64,
    /// Whether recovery was on.
    pub recovery: bool,
    /// Queries submitted.
    pub queries: usize,
    /// Queries that returned rows.
    pub succeeded: usize,
    /// `cluster.split_retries` at the end of the run.
    pub split_retries: u64,
    /// `cluster.worker_failures` at the end of the run.
    pub worker_failures: u64,
    /// `cluster.blacklisted_workers` at the end of the run.
    pub blacklisted_workers: u64,
    /// Worker crashes the injector fired.
    pub crashes_injected: u64,
    /// Transient task faults the injector fired.
    pub task_faults_injected: u64,
    /// Virtual time consumed by the run (admission waits + retry backoff).
    pub virtual_ms: u64,
    /// Order-sensitive digest over every successful query's rows — two runs
    /// with the same seed must agree bit-for-bit.
    pub rows_digest: u64,
    /// Order-sensitive fold of every successful query's virtual-time trace
    /// digest. Stronger than `rows_digest`: it pins not just *what* each
    /// query answered but the whole span tree — which worker ran which
    /// split, every injected failure, every retry round, every timestamp.
    pub trace_digest: u64,
}

impl ChaosResult {
    /// Fraction of queries that completed.
    pub fn success_rate(&self) -> f64 {
        self.succeeded as f64 / self.queries.max(1) as f64
    }
}

fn engine_with_table() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)])
        .unwrap_or_else(|e| panic!("chaos schema: {e}"));
    // 12 pages → 12 splits per query, spread over the workers
    let pages: Vec<Page> = (0..12)
        .map(|p| {
            Page::new(vec![Block::bigint((p * 50..p * 50 + 50).collect())])
                .unwrap_or_else(|e| panic!("chaos page: {e}"))
        })
        .collect();
    memory
        .create_table("default", "t", schema, pages)
        .unwrap_or_else(|e| panic!("chaos table: {e}"));
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

/// Run the chaos workload: `config.queries` aggregations over a 12-split
/// table while the injector fails tasks (and optionally crashes a worker).
pub fn run(config: &ChaosConfig) -> ChaosResult {
    let mut plan = FaultPlan::new().fail_rate(config.fault_rate);
    if config.crash_worker {
        plan = plan.crash_on_task(0, 25);
    }
    let injector = FaultInjector::new(config.seed, plan);
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "chaos",
        engine_with_table(),
        ClusterConfig {
            initial_workers: config.workers,
            fault_injector: injector.clone(),
            fault_recovery: config.recovery,
            max_split_attempts: 4,
            // rate 0.2 would trip a 3-strike blacklist constantly; the
            // experiment is about retries, so quarantine only real streaks
            blacklist_after: 4,
            ..ClusterConfig::default()
        },
        clock.clone(),
    );
    let session = Session::default();
    let start = clock.now();
    let mut succeeded = 0;
    let mut digest = DefaultHasher::new();
    let mut trace_digest = DefaultHasher::new();
    for _ in 0..config.queries {
        if let Ok(result) = cluster.execute("SELECT sum(x), count(*) FROM t", &session) {
            succeeded += 1;
            format!("{:?}", result.rows()).hash(&mut digest);
            // Only successful queries fold in: a doomed query's cancel flag
            // races sibling workers, so its span count is timing-dependent.
            result.info.trace.digest().hash(&mut trace_digest);
        }
    }
    let virtual_ms = (clock.now() - start).as_millis() as u64;
    ChaosResult {
        fault_rate: config.fault_rate,
        recovery: config.recovery,
        queries: config.queries,
        succeeded,
        split_retries: cluster.metrics().get(names::CLUSTER_SPLIT_RETRIES),
        worker_failures: cluster.metrics().get(names::CLUSTER_WORKER_FAILURES),
        blacklisted_workers: cluster.metrics().get(names::CLUSTER_BLACKLISTED_WORKERS),
        crashes_injected: injector.crashes_injected(),
        task_faults_injected: injector.task_faults_injected(),
        virtual_ms,
        rows_digest: digest.finish(),
        trace_digest: trace_digest.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_materially_beats_no_recovery_at_ten_percent() {
        let on = run(&ChaosConfig::default());
        let off = run(&ChaosConfig { recovery: false, ..ChaosConfig::default() });
        assert!(on.success_rate() >= 0.95, "recovery on: {}/{} queries", on.succeeded, on.queries);
        assert!(on.split_retries > 0, "recovery must actually have retried splits");
        assert!(
            off.success_rate() <= on.success_rate() - 0.25,
            "recovery off must be materially worse: {} vs {}",
            off.success_rate(),
            on.success_rate()
        );
        assert_eq!(off.split_retries, 0, "no recovery, no retries");
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let a = run(&ChaosConfig::default());
        let b = run(&ChaosConfig::default());
        assert_eq!(a.rows_digest, b.rows_digest);
        assert_eq!(a.trace_digest, b.trace_digest, "span trees must replay bit-for-bit");
        assert_eq!(a.succeeded, b.succeeded);
        assert_eq!(a.split_retries, b.split_retries);
        assert_eq!(a.worker_failures, b.worker_failures);
        assert_eq!(a.task_faults_injected, b.task_faults_injected);
        assert_eq!(a.virtual_ms, b.virtual_ms);
        // and a different seed gives a different schedule
        let c = run(&ChaosConfig { seed: 43, ..ChaosConfig::default() });
        assert_ne!(
            (a.split_retries, a.task_faults_injected),
            (c.split_retries, c.task_faults_injected)
        );
    }

    #[test]
    fn zero_fault_rate_is_failure_free_without_the_crash() {
        let r =
            run(&ChaosConfig { fault_rate: 0.0, crash_worker: false, ..ChaosConfig::default() });
        assert_eq!(r.succeeded, r.queries);
        assert_eq!(r.split_retries, 0);
        assert_eq!(r.worker_failures, 0);
        assert_eq!(r.crashes_injected, 0);
    }
}
