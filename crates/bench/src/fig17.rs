//! Fig 17: legacy vs new Parquet reader on a nested production-style
//! workload.
//!
//! "We take 21 of Uber production Presto queries, 4 of them are table scans,
//! where 2 of them are needle in a haystack type table scan. 5 of them are
//! group by queries, and another 12 of them are joins. ... our new Parquet
//! reader consistently achieves 2X – 10X speedup."
//!
//! The table is an Uber-trips-shaped nested schema (a `base` struct with 16
//! scalar fields, a nested struct, an array and a map — 20 leaves), written
//! with rows clustered by `city_id` so row-group statistics are tight, in
//! two `datestr` partitions.

use std::sync::Arc;
use std::time::{Duration, Instant};

use presto_common::metrics::CounterSet;
use presto_common::{Block, DataType, Field, Page, Schema, Value};
use presto_connectors::hive::{HiveConnector, HiveReaderConfig};
use presto_connectors::mysql::MySqlConnector;
use presto_core::{PrestoEngine, Session};
use presto_parquet::{WriterMode, WriterProperties};
use presto_storage::HdfsFileSystem;

/// Query category, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Plain table scan.
    Scan,
    /// Needle-in-a-haystack scan (benefits from stats/dictionary skipping).
    NeedleScan,
    /// GROUP BY aggregation.
    GroupBy,
    /// Join with a dimension table.
    Join,
}

/// One benchmark query.
pub struct Fig17Query {
    /// Label `q01`..`q21`.
    pub name: String,
    /// The SQL.
    pub sql: String,
    /// Category.
    pub kind: QueryKind,
}

/// The built workload.
pub struct Fig17Workload {
    /// Engine with `hive` + `mysql` catalogs.
    pub engine: PrestoEngine,
    /// The Hive connector (reader switchboard).
    pub hive: HiveConnector,
    /// The simulated HDFS (virtual I/O clock).
    pub hdfs: HdfsFileSystem,
    /// The 21 queries.
    pub queries: Vec<Fig17Query>,
}

/// Per-query comparison.
#[derive(Debug, Clone)]
pub struct Fig17Result {
    /// Query label.
    pub name: String,
    /// Category.
    pub kind: QueryKind,
    /// Legacy-reader wall time.
    pub old_reader: Duration,
    /// New-reader wall time.
    pub new_reader: Duration,
    /// old / new.
    pub speedup: f64,
}

/// The nested trips file schema (20 leaf columns).
pub fn trips_schema() -> Schema {
    let base_fields = vec![
        Field::new("driver_uuid", DataType::Varchar),
        Field::new("client_uuid", DataType::Varchar),
        Field::new("city_id", DataType::Bigint),
        Field::new("vehicle_id", DataType::Bigint),
        Field::new("status", DataType::Varchar),
        Field::new("product", DataType::Varchar),
        Field::new("fare", DataType::Double),
        Field::new("tip", DataType::Double),
        Field::new("distance_km", DataType::Double),
        Field::new("duration_s", DataType::Bigint),
        Field::new("surge", DataType::Double),
        Field::new("rating", DataType::Integer),
        Field::new("dest_lng", DataType::Double),
        Field::new("dest_lat", DataType::Double),
        Field::new("request_ts", DataType::Timestamp),
        Field::new("dropoff_ts", DataType::Timestamp),
        Field::new(
            "workflow",
            DataType::row(vec![
                Field::new("code", DataType::Integer),
                Field::new("tags", DataType::array(DataType::Varchar)),
            ]),
        ),
        Field::new("features", DataType::map(DataType::Varchar, DataType::Double)),
    ];
    Schema::new(vec![Field::new("base", DataType::row(base_fields))]).unwrap()
}

const STATUSES: [&str; 4] = ["completed", "canceled", "arrived", "dispatched"];
const PRODUCTS: [&str; 5] = ["uberx", "pool", "black", "xl", "eats"];

/// Build the warehouse and dimension table.
pub fn build(rows_per_partition: usize) -> Fig17Workload {
    let hdfs = HdfsFileSystem::with_defaults();
    let hive = HiveConnector::new(Arc::new(hdfs.clone()), CounterSet::new());
    hive.register_table(
        "rawdata",
        "trips",
        trips_schema(),
        "/warehouse/rawdata/trips",
        Some("datestr"),
    );
    let base_type = trips_schema().field_at(0).data_type.clone();
    let num_cities = 50i64;
    for day in ["2017-03-01", "2017-03-02"] {
        hive.add_partition("rawdata", "trips", day, true).unwrap();
        // rows clustered by city_id → tight row-group min/max stats
        let rows: Vec<Value> = (0..rows_per_partition)
            .map(|i| {
                let city = (i as i64 * num_cities) / rows_per_partition as i64;
                Value::Row(vec![
                    Value::Varchar(format!("driver-{:06}", i % 5000)),
                    Value::Varchar(format!("client-{:06}", i % 20_000)),
                    Value::Bigint(city),
                    Value::Bigint((i % 3000) as i64),
                    Value::Varchar(STATUSES[i % 4].into()),
                    Value::Varchar(PRODUCTS[i % 5].into()),
                    Value::Double(5.0 + (i % 80) as f64 * 0.5),
                    Value::Double((i % 10) as f64 * 0.25),
                    Value::Double(1.0 + (i % 300) as f64 / 10.0),
                    Value::Bigint(300 + (i % 3600) as i64),
                    Value::Double(1.0 + (i % 5) as f64 * 0.1),
                    Value::Integer((i % 5) as i32 + 1),
                    Value::Double(-122.4 + (i % 100) as f64 / 1000.0),
                    Value::Double(37.7 + (i % 100) as f64 / 1000.0),
                    Value::Timestamp(i as i64 * 1000),
                    Value::Timestamp(i as i64 * 1000 + 900_000),
                    Value::Row(vec![
                        Value::Integer((i % 7) as i32),
                        Value::Array(vec![Value::Varchar(format!("tag{}", i % 3))]),
                    ]),
                    Value::Map(vec![
                        (Value::Varchar("eta_error".into()), Value::Double((i % 9) as f64)),
                        (Value::Varchar("route_score".into()), Value::Double((i % 17) as f64)),
                    ]),
                ])
            })
            .collect();
        let page = Page::new(vec![Block::from_values(&base_type, &rows).unwrap()]).unwrap();
        hive.write_data_file(
            "rawdata",
            "trips",
            Some(day),
            "part-0.upq",
            &[page],
            WriterMode::Native,
            WriterProperties {
                row_group_rows: rows_per_partition / 16,
                ..WriterProperties::default()
            },
        )
        .unwrap();
    }

    let mysql = MySqlConnector::new();
    mysql
        .create_table(
            "ops",
            "cities",
            Schema::new(vec![
                Field::new("city_id", DataType::Bigint),
                Field::new("name", DataType::Varchar),
                Field::new("region", DataType::Varchar),
            ])
            .unwrap(),
        )
        .unwrap();
    mysql
        .insert(
            "ops",
            "cities",
            (0..num_cities)
                .map(|c| {
                    vec![
                        Value::Bigint(c),
                        Value::Varchar(format!("city{c}")),
                        Value::Varchar(format!("region{}", c % 5)),
                    ]
                })
                .collect(),
        )
        .unwrap();

    let engine = PrestoEngine::new();
    engine.register_catalog("hive", Arc::new(hive.clone()));
    engine.register_catalog("mysql", Arc::new(mysql));

    let q = |name: &str, kind: QueryKind, sql: &str| Fig17Query {
        name: name.into(),
        kind,
        sql: sql.into(),
    };
    let queries = vec![
        // ---- 4 table scans, 2 of them needle-in-a-haystack
        q("q01", QueryKind::Scan,
          "SELECT base.driver_uuid, base.client_uuid, base.fare, base.tip, base.distance_km, base.duration_s, base.surge, base.rating FROM trips WHERE datestr = '2017-03-01'"),
        q("q02", QueryKind::Scan,
          "SELECT base.city_id, base.status, base.product, base.workflow, base.features FROM trips"),
        q("q03", QueryKind::NeedleScan,
          "SELECT base.driver_uuid FROM trips WHERE datestr = '2017-03-02' AND base.city_id IN (12)"),
        q("q04", QueryKind::NeedleScan,
          "SELECT base.client_uuid FROM trips WHERE base.city_id = 49 AND base.rating = 5"),
        // ---- 5 group bys
        q("q05", QueryKind::GroupBy,
          "SELECT base.status, count(*), sum(base.fare), sum(base.tip), avg(base.distance_km) FROM trips GROUP BY 1"),
        q("q06", QueryKind::GroupBy,
          "SELECT base.city_id, sum(base.fare) FROM trips GROUP BY 1 ORDER BY 2 DESC LIMIT 10"),
        q("q07", QueryKind::GroupBy,
          "SELECT base.product, avg(base.distance_km) FROM trips WHERE datestr = '2017-03-01' GROUP BY 1"),
        q("q08", QueryKind::GroupBy,
          "SELECT base.rating, count(*), max(base.tip), min(base.fare), sum(base.duration_s) FROM trips GROUP BY 1 ORDER BY 1"),
        q("q09", QueryKind::GroupBy,
          "SELECT datestr, sum(base.surge * base.fare) FROM trips GROUP BY 1"),
        // ---- 12 joins
        q("q10", QueryKind::Join,
          "SELECT c.name, count(*), sum(t.base.fare), sum(t.base.tip), avg(t.base.surge) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id GROUP BY 1 ORDER BY 2 DESC LIMIT 5"),
        q("q11", QueryKind::Join,
          "SELECT c.region, sum(t.base.fare) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id GROUP BY 1"),
        q("q12", QueryKind::Join,
          "SELECT c.name, t.base.driver_uuid, t.base.client_uuid, t.base.status, t.base.fare FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id WHERE t.base.city_id = 7 LIMIT 20"),
        q("q13", QueryKind::Join,
          "SELECT c.region, avg(t.base.tip) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id WHERE t.datestr = '2017-03-01' GROUP BY 1"),
        q("q14", QueryKind::Join,
          "SELECT c.name, max(t.base.fare) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id WHERE t.base.status = 'completed' GROUP BY 1 ORDER BY 2 DESC LIMIT 10"),
        q("q15", QueryKind::Join,
          "SELECT c.region, count(*) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id WHERE t.base.product = 'pool' GROUP BY 1"),
        q("q16", QueryKind::Join,
          "SELECT t.base.driver_uuid, c.name FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id WHERE t.base.city_id IN (3, 5) AND t.base.rating >= 4 LIMIT 50"),
        q("q17", QueryKind::Join,
          "SELECT c.name, sum(t.base.duration_s) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id WHERE t.datestr = '2017-03-02' GROUP BY 1 ORDER BY 2 DESC LIMIT 8"),
        q("q18", QueryKind::Join,
          "SELECT c.region, min(t.base.fare), max(t.base.fare), sum(t.base.distance_km), sum(t.base.duration_s), count(*) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id GROUP BY 1"),
        q("q19", QueryKind::Join,
          "SELECT c.name, count(*) FROM trips t LEFT JOIN mysql.ops.cities c ON t.base.city_id = c.city_id GROUP BY 1 ORDER BY 2 DESC LIMIT 5"),
        q("q20", QueryKind::Join,
          "SELECT c.region, count(*) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id WHERE t.base.surge >= 1.3 GROUP BY 1"),
        q("q21", QueryKind::Join,
          "SELECT c.name, avg(t.base.distance_km) FROM trips t JOIN mysql.ops.cities c ON t.base.city_id = c.city_id WHERE t.base.status = 'canceled' AND t.datestr = '2017-03-01' GROUP BY 1 ORDER BY 1 LIMIT 10"),
    ];
    Fig17Workload { engine, hive, hdfs, queries }
}

/// Execute one query under a reader configuration. Latency = real CPU time
/// plus the virtual I/O time the simulated HDFS charged (the paper's testbed
/// pays real network/disk I/O; the legacy reader moves far more bytes).
pub fn time_query(workload: &Fig17Workload, sql: &str, legacy: bool) -> Duration {
    workload.hive.set_reader_config(HiveReaderConfig {
        use_legacy_reader: legacy,
        ..HiveReaderConfig::default()
    });
    let session = Session::new("hive", "rawdata");
    let io_before = workload.hdfs.clock().now();
    let start = Instant::now();
    workload.engine.execute_with_session(sql, &session).unwrap_or_else(|e| panic!("{sql}: {e}"));
    start.elapsed() + (workload.hdfs.clock().now() - io_before)
}

/// Run the full figure (one measured pass per reader per query).
pub fn run(rows_per_partition: usize) -> Vec<Fig17Result> {
    let workload = build(rows_per_partition);
    workload
        .queries
        .iter()
        .map(|q| {
            let old_reader = time_query(&workload, &q.sql, true);
            let new_reader = time_query(&workload, &q.sql, false);
            Fig17Result {
                name: q.name.clone(),
                kind: q.kind,
                old_reader,
                new_reader,
                speedup: old_reader.as_secs_f64() / new_reader.as_secs_f64().max(1e-12),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_matches_the_paper() {
        let w = build(2_000);
        assert_eq!(w.queries.len(), 21);
        let count = |k: QueryKind| w.queries.iter().filter(|q| q.kind == k).count();
        assert_eq!(count(QueryKind::Scan) + count(QueryKind::NeedleScan), 4);
        assert_eq!(count(QueryKind::NeedleScan), 2);
        assert_eq!(count(QueryKind::GroupBy), 5);
        assert_eq!(count(QueryKind::Join), 12);
        // the schema really is wide and nested
        assert_eq!(trips_schema().leaf_count(), 20);
        assert!(trips_schema().field_at(0).data_type.nesting_depth() >= 2);
    }

    #[test]
    fn both_readers_agree_on_every_query() {
        let w = build(2_000);
        let session = Session::new("hive", "rawdata");
        for q in &w.queries {
            w.hive.set_reader_config(HiveReaderConfig {
                use_legacy_reader: true,
                ..HiveReaderConfig::default()
            });
            let old = w
                .engine
                .execute_with_session(&q.sql, &session)
                .unwrap_or_else(|e| panic!("{} (legacy): {e}", q.name));
            w.hive.set_reader_config(HiveReaderConfig::default());
            let new = w
                .engine
                .execute_with_session(&q.sql, &session)
                .unwrap_or_else(|e| panic!("{} (new): {e}", q.name));
            let mut old_rows = old.rows();
            let mut new_rows = new.rows();
            let key =
                |r: &Vec<Value>| r.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("|");
            old_rows.sort_by_key(key);
            new_rows.sort_by_key(key);
            assert_eq!(old_rows, new_rows, "query {} disagrees", q.name);
        }
    }
}
