//! Telemetry replay experiment: the rush/lull autoscaling workload runs
//! while the cluster's lifecycle ticks sample busy-fraction, queue-depth,
//! memory and cache time series into the [`TelemetryRegistry`] — then the
//! busy-fraction-fed autoscaler is compared against the queue-depth-only
//! counterfactual on identical seeded arrivals.
//!
//! Gates (driven by `paper-experiments telemetry`):
//!
//! - same-seed runs must be bit-identical: workload digest, trace digest,
//!   telemetry digest, and the autoscaler's action trace;
//! - sampling must actually happen: snapshots > 0 and a populated fleet
//!   busy-fraction series;
//! - the busy-signal policy must **diverge** from the queue-depth-only
//!   counterfactual on the same arrivals — if the second signal never
//!   changes a decision it is dead weight.
//!
//! [`TelemetryRegistry`]: presto_common::telemetry::TelemetryRegistry

use presto_sim::SimConfig;

use crate::elastic::rush_lull_config;

/// Busy-fraction high-water mark the busy-signal variant runs with: a
/// fleet at/above this percentage counts as pressure even when the
/// dispatch queue is shallow.
pub const BUSY_HIGH_WATER_PCT: u64 = 60;

/// Busy-fraction low-water mark: scale-in additionally needs the busy
/// window's p95 at/below this.
pub const BUSY_LOW_WATER_PCT: u64 = 20;

/// The queue-depth-only policy on the seeded rush/lull workload — the
/// counterfactual baseline.
pub fn queue_only_config(seed: u64) -> SimConfig {
    rush_lull_config(seed)
}

/// The same seeded workload with the busy-fraction signal enabled on the
/// autoscaler. Everything else — arrivals, fleet, water marks, windows —
/// is identical to [`queue_only_config`], so any divergence in the action
/// trace is attributable to the second signal alone.
pub fn busy_signal_config(seed: u64) -> SimConfig {
    let mut config = rush_lull_config(seed);
    if let Some(plan) = &mut config.elastic {
        if let Some(auto) = &mut plan.autoscaler {
            auto.busy_signal = true;
            auto.busy_high_water_pct = BUSY_HIGH_WATER_PCT;
            auto.busy_low_water_pct = BUSY_LOW_WATER_PCT;
        }
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::metrics::names;
    use presto_sim::run_simulation;

    fn shrunk(mut config: SimConfig) -> SimConfig {
        config.queries = 600;
        config.tenants = 60;
        config
    }

    #[test]
    fn sampling_runs_and_same_seed_telemetry_digests_agree() {
        let config = shrunk(queue_only_config(7));
        let a = run_simulation(&config).unwrap();
        let b = run_simulation(&config).unwrap();
        assert!(a.telemetry_snapshots > 0, "lifecycle ticks must sample");
        assert_eq!(a.telemetry_digest, b.telemetry_digest);
        assert_eq!(a.telemetry_snapshots, b.telemetry_snapshots);
        let busy = &a.telemetry_series[names::TS_FLEET_BUSY_PCT];
        assert!(busy.samples() > 0, "fleet busy series must be populated");
        assert!(a.telemetry_series.contains_key(names::TS_QUEUE_DEPTH));
    }

    #[test]
    fn busy_signal_diverges_from_queue_only_on_the_same_seed() {
        let queue = run_simulation(&shrunk(queue_only_config(7))).unwrap();
        let busy = run_simulation(&shrunk(busy_signal_config(7))).unwrap();
        assert_eq!(queue.failed, 0);
        assert_eq!(busy.failed, 0);
        let queue_actions = queue.elastic.unwrap().actions;
        let busy_actions = busy.elastic.unwrap().actions;
        assert!(!queue_actions.is_empty(), "baseline must actually scale");
        assert_ne!(
            queue_actions, busy_actions,
            "the busy-fraction signal must change at least one decision"
        );
    }
}
