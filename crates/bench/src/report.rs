//! Tiny text-table and JSON reporting helpers for `paper-experiments`.

use presto_common::metrics::Histogram;
use presto_common::trace::json_escape;

/// A printable experiment table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A JSON value, hand-rolled (the workspace vendors no serde). Enough for
/// the flat `BENCH_<experiment>.json` dumps CI diffs between runs.
pub enum Json {
    /// An unsigned integer.
    U64(u64),
    /// A float (rendered with Rust's shortest-roundtrip `Display`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// `true`/`false`.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so dumps diff cleanly.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render compactly (no whitespace), deterministically.
    pub fn render(&self) -> String {
        match self {
            Json::U64(v) => v.to_string(),
            Json::F64(v) if v.is_finite() => v.to_string(),
            Json::F64(_) => "null".to_string(), // NaN/inf are not JSON
            Json::Str(s) => format!("\"{}\"", json_escape(s)),
            Json::Bool(b) => b.to_string(),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(pairs) => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Summarize a [`Histogram`] as a JSON object with the quantiles the paper's
/// dashboards watch (p50/p95/p99).
pub fn histogram_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::U64(h.count())),
        ("sum".into(), Json::U64(h.sum())),
        ("mean".into(), Json::U64(h.mean())),
        ("min".into(), Json::U64(h.min())),
        ("max".into(), Json::U64(h.max())),
        ("p50".into(), Json::U64(h.quantile(0.50))),
        ("p95".into(), Json::U64(h.quantile(0.95))),
        ("p99".into(), Json::U64(h.quantile(0.99))),
    ])
}

/// Write `BENCH_<experiment>.json` into the current directory and return the
/// file name. CI archives these so regressions show up as JSON diffs.
pub fn write_bench_json(experiment: &str, json: &Json) -> std::io::Result<String> {
    let path = format!("BENCH_{experiment}.json");
    std::fs::write(&path, format!("{}\n", json.render()))?;
    Ok(path)
}

/// Format a Duration as milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1000.0)
}

/// Format a throughput in MB/s.
pub fn mbps(bytes: usize, d: std::time::Duration) -> String {
    format!("{:.1} MB/s", bytes as f64 / (1024.0 * 1024.0) / d.as_secs_f64().max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_escaped_and_ordered() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("a \"quoted\" string".into())),
            ("n".into(), Json::U64(3)),
            ("xs".into(), Json::Arr(vec![Json::F64(1.5), Json::Bool(true)])),
        ]);
        assert_eq!(j.render(), r#"{"name":"a \"quoted\" string","n":3,"xs":[1.5,true]}"#);
    }

    #[test]
    fn histogram_json_carries_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        let text = histogram_json(&h).render();
        assert!(text.contains("\"count\":100"), "{text}");
        assert!(text.contains("\"p99\":"), "{text}");
    }

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a much longer name".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("## Demo"));
        assert!(text.lines().count() >= 4);
    }
}
