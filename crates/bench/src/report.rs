//! Tiny text-table reporting helpers for `paper-experiments`.

/// A printable experiment table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a Duration as milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1000.0)
}

/// Format a throughput in MB/s.
pub fn mbps(bytes: usize, d: std::time::Duration) -> String {
    format!("{:.1} MB/s", bytes as f64 / (1024.0 * 1024.0) / d.as_secs_f64().max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a much longer name".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("## Demo"));
        assert!(text.lines().count() >= 4);
    }
}
