//! Observability experiment: the §X-style dashboard workload, instrumented.
//!
//! A join+aggregation query stream runs against a small cluster; the
//! experiment reports what the paper's operators watch in production —
//! query-latency p50/p95/p99 (virtual time), admission queue waits, the
//! per-operator `EXPLAIN ANALYZE` breakdown of one representative query,
//! and its full span tree as a JSON event log.
//!
//! The warm-up phase is discarded with [`CounterSet::clear`] (not `reset`:
//! clear drops the warm-up keys entirely, so the measured snapshot contains
//! only counters the measured phase actually touched).
//!
//! [`CounterSet::clear`]: presto_common::metrics::CounterSet::clear

use std::collections::BTreeMap;
use std::sync::Arc;

use presto_cluster::{ClusterConfig, PrestoCluster};
use presto_common::metrics::{names, Histogram};
use presto_common::{Block, DataType, Field, Page, Schema, SimClock};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};

/// Observability run parameters.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Workers in the cluster.
    pub workers: u32,
    /// Warm-up queries (discarded).
    pub warmup: usize,
    /// Measured queries.
    pub queries: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { workers: 4, warmup: 8, queries: 64 }
    }
}

/// What the run observed.
#[derive(Debug, Clone)]
pub struct ObsResult {
    /// Measured queries (all must succeed — no faults are injected here).
    pub queries: usize,
    /// End-to-end query latency in virtual µs.
    pub latency: Histogram,
    /// Admission queue wait in virtual ms.
    pub queue_wait: Histogram,
    /// `EXPLAIN ANALYZE` of the representative query.
    pub explain: String,
    /// Human-rendered span tree of the sample query.
    pub trace_render: String,
    /// JSON event log of the sample query's spans.
    pub trace_json: String,
    /// Spans in the sample trace.
    pub trace_spans: usize,
    /// Canonical digest of the sample trace (same seed ⇒ same digest).
    pub trace_digest: u64,
    /// Cluster counters after the measured phase only (warm-up cleared).
    pub counters: BTreeMap<String, u64>,
}

/// Orders/rates tables sized so joins do real per-operator work: 8 pages →
/// 8 splits per scan, spread across the workers.
fn engine_with_tables() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let cities = ["sf", "nyc", "la", "chi", "sea"];
    let orders_schema = Schema::new(vec![
        Field::new("id", DataType::Bigint),
        Field::new("city", DataType::Varchar),
        Field::new("amount", DataType::Double),
    ])
    .unwrap_or_else(|e| panic!("obs schema: {e}"));
    let pages: Vec<Page> = (0..8)
        .map(|p| {
            let ids: Vec<i64> = (p * 64..p * 64 + 64).collect();
            let names: Vec<&str> = ids.iter().map(|&i| cities[i as usize % cities.len()]).collect();
            let amounts: Vec<f64> = ids.iter().map(|&i| (i % 97) as f64 * 1.5).collect();
            Page::new(vec![
                Block::bigint(ids.clone()),
                Block::varchar(&names),
                Block::double(amounts),
            ])
            .unwrap_or_else(|e| panic!("obs page: {e}"))
        })
        .collect();
    memory
        .create_table("default", "orders", orders_schema, pages)
        .unwrap_or_else(|e| panic!("obs orders: {e}"));
    let rates_schema = Schema::new(vec![
        Field::new("city", DataType::Varchar),
        Field::new("fee", DataType::Double),
    ])
    .unwrap_or_else(|e| panic!("obs schema: {e}"));
    let rates =
        Page::new(vec![Block::varchar(&cities), Block::double(vec![2.5, 3.0, 2.0, 1.5, 2.25])])
            .unwrap_or_else(|e| panic!("obs rates: {e}"));
    memory
        .create_table("default", "rates", rates_schema, vec![rates])
        .unwrap_or_else(|e| panic!("obs rates: {e}"));
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

/// The dashboard query family: join + aggregation, with a rotating filter so
/// latencies spread across histogram buckets instead of piling into one.
fn sql_for(i: usize) -> String {
    format!(
        "SELECT o.city, count(*), sum(o.amount) \
         FROM orders o JOIN rates r ON o.city = r.city \
         WHERE o.id >= {} GROUP BY 1 ORDER BY 1",
        (i % 7) * 64
    )
}

/// Run the observability workload.
pub fn run(config: &ObsConfig) -> ObsResult {
    let cluster = PrestoCluster::new(
        "obs",
        engine_with_tables(),
        ClusterConfig { initial_workers: config.workers, ..ClusterConfig::default() },
        SimClock::new(),
    );
    let session = Session::default();

    for i in 0..config.warmup {
        cluster
            .execute(&sql_for(i), &session)
            .unwrap_or_else(|e| panic!("obs warmup query failed: {e}"));
    }
    // Discard the warm-up: clear() drops the keys, so the measured snapshot
    // only contains what the measured phase touched.
    cluster.metrics().clear();
    cluster.histograms().clear();

    let mut sample = None;
    for i in 0..config.queries {
        let result = cluster
            .execute(&sql_for(i), &session)
            .unwrap_or_else(|e| panic!("obs query failed: {e}"));
        if sample.is_none() {
            sample = Some(result);
        }
    }
    let sample = sample.unwrap_or_else(|| panic!("obs ran zero queries"));

    let explain = cluster
        .engine()
        .execute(&format!("EXPLAIN ANALYZE {}", sql_for(0)))
        .unwrap_or_else(|e| panic!("obs explain analyze failed: {e}"))
        .rows()[0][0]
        .to_string();

    ObsResult {
        queries: config.queries,
        latency: cluster.histograms().get(names::HIST_CLUSTER_QUERY_LATENCY_US),
        queue_wait: cluster.engine().resources().admission().queue_wait_histogram(),
        explain,
        trace_render: sample.info.trace.render(),
        trace_json: sample.info.trace.to_json(),
        trace_spans: sample.info.trace.len(),
        trace_digest: sample.info.trace.digest(),
        counters: cluster.metrics().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_phase_is_fully_observed() {
        let r = run(&ObsConfig { workers: 3, warmup: 2, queries: 10 });
        assert_eq!(r.latency.count(), 10, "one latency sample per measured query");
        assert!(r.latency.quantile(0.5) <= r.latency.quantile(0.95));
        assert!(r.latency.quantile(0.95) <= r.latency.quantile(0.99));
        assert!(r.latency.min() > 0, "the cost model advances virtual time");
        // warm-up was cleared: the counter equals the measured count exactly
        assert_eq!(r.counters.get(names::CLUSTER_QUERIES), Some(&10));
        assert!(r.trace_spans > 0);
        assert!(r.trace_json.starts_with('['));
        assert!(r.explain.contains("TableScan"), "{}", r.explain);
        assert!(r.explain.contains("busy:"), "{}", r.explain);
    }

    #[test]
    fn same_workload_same_trace_digest() {
        let config = ObsConfig { workers: 3, warmup: 1, queries: 3 };
        assert_eq!(run(&config).trace_digest, run(&config).trace_digest);
    }
}
