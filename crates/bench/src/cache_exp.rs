//! §VII experiments: file-list cache and file-handle/footer cache under a
//! production-shaped trace.
//!
//! Paper results to reproduce:
//! - "With file list cache enabled for 5 of our most popular tables, our
//!   production traffic shows overall listFile calls is reduced to less
//!   than 40%."
//! - "With file handle and footer cache, our production traffic shows
//!   almost 90% of getFileInfo calls could be reduced."
//!
//! The trace: a skewed query stream where most scans hit the 5 hot tables
//! (with sealed partitions) and a tail hits cold tables and *open*
//! partitions (which must bypass the cache for freshness).

use std::sync::Arc;

use presto_cache::{FileHandleCache, FileListCache, FooterCache};
use presto_common::metrics::CounterSet;
use presto_common::{Block, DataType, Field, Page, Schema};
use presto_parquet::{FileWriter, WriterMode, WriterProperties};
use presto_storage::{FileSystem, HdfsFileSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trace shape parameters.
#[derive(Debug, Clone)]
pub struct CacheTrace {
    /// Hot (popular) tables — the paper's "5 of our most popular tables".
    pub hot_tables: usize,
    /// Cold tables.
    pub cold_tables: usize,
    /// Sealed partitions per table.
    pub sealed_partitions: usize,
    /// Open partitions per hot table (near-real-time ingestion).
    pub open_partitions: usize,
    /// Files per partition.
    pub files_per_partition: usize,
    /// Scan operations in the trace.
    pub scans: usize,
    /// Probability a scan hits a hot table.
    pub hot_fraction: f64,
}

impl Default for CacheTrace {
    fn default() -> Self {
        CacheTrace {
            hot_tables: 5,
            cold_tables: 20,
            sealed_partitions: 8,
            open_partitions: 1,
            files_per_partition: 4,
            scans: 2_000,
            hot_fraction: 0.85,
        }
    }
}

/// Results of the trace replay.
#[derive(Debug, Clone)]
pub struct CacheResult {
    /// listFiles issued *without* the cache (baseline = one per scan per
    /// partition listed).
    pub list_calls_baseline: u64,
    /// listFiles reaching HDFS *with* the cache.
    pub list_calls_cached: u64,
    /// getFileInfo issued without caches.
    pub getinfo_calls_baseline: u64,
    /// getFileInfo reaching HDFS with handle+footer caches.
    pub getinfo_calls_cached: u64,
}

impl CacheResult {
    /// listFiles remaining, as a percent of baseline (paper: <40%).
    pub fn list_remaining_pct(&self) -> f64 {
        self.list_calls_cached as f64 / self.list_calls_baseline.max(1) as f64 * 100.0
    }

    /// getFileInfo reduction percent (paper: ~90%).
    pub fn getinfo_reduction_pct(&self) -> f64 {
        (1.0 - self.getinfo_calls_cached as f64 / self.getinfo_calls_baseline.max(1) as f64) * 100.0
    }
}

struct Warehouse {
    hdfs: HdfsFileSystem,
    /// (table, partition dir, sealed)
    partitions: Vec<(usize, String, bool)>,
    files_per_partition: usize,
}

fn build_warehouse(trace: &CacheTrace) -> Warehouse {
    let hdfs = HdfsFileSystem::with_defaults();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
    let mut file_bytes = None;
    let mut partitions = Vec::new();
    for table in 0..trace.hot_tables + trace.cold_tables {
        let is_hot = table < trace.hot_tables;
        let sealed_n = trace.sealed_partitions;
        let open_n = if is_hot { trace.open_partitions } else { 0 };
        for p in 0..sealed_n + open_n {
            let dir = format!("/warehouse/t{table}/ds={p}");
            let sealed = p < sealed_n;
            for f in 0..trace.files_per_partition {
                let bytes = file_bytes
                    .get_or_insert_with(|| {
                        let mut w = FileWriter::new(
                            schema.clone(),
                            WriterProperties::default(),
                            WriterMode::Native,
                        )
                        .unwrap();
                        w.write_page(&Page::new(vec![Block::bigint((0..100).collect())]).unwrap())
                            .unwrap();
                        w.finish().unwrap()
                    })
                    .clone();
                hdfs.backing_store().write(&format!("{dir}/part-{f}"), &bytes).unwrap();
            }
            partitions.push((table, dir, sealed));
        }
    }
    Warehouse { hdfs, partitions, files_per_partition: trace.files_per_partition }
}

/// Replay the trace twice — without and with the caches — and compare the
/// HDFS call counts.
pub fn run(trace: &CacheTrace, seed: u64) -> CacheResult {
    let warehouse = build_warehouse(trace);
    let hdfs = &warehouse.hdfs;

    // Scan sequence: (partition index) per scan, hot-skewed; each scan lists
    // its partition then stats every file in it (split planning).
    let mut rng = StdRng::seed_from_u64(seed);
    let hot_parts: Vec<usize> = warehouse
        .partitions
        .iter()
        .enumerate()
        .filter(|(_, (t, _, _))| *t < trace.hot_tables)
        .map(|(i, _)| i)
        .collect();
    let cold_parts: Vec<usize> = warehouse
        .partitions
        .iter()
        .enumerate()
        .filter(|(_, (t, _, _))| *t >= trace.hot_tables)
        .map(|(i, _)| i)
        .collect();
    let scan_sequence: Vec<usize> = (0..trace.scans)
        .map(|_| {
            if rng.gen_bool(trace.hot_fraction) {
                hot_parts[rng.gen_range(0..hot_parts.len())]
            } else {
                cold_parts[rng.gen_range(0..cold_parts.len())]
            }
        })
        .collect();

    // ---- baseline: no caches
    hdfs.metrics().reset();
    for &part in &scan_sequence {
        let (_, dir, _) = &warehouse.partitions[part];
        let files = hdfs.list_files(dir).unwrap();
        for f in files.iter() {
            hdfs.get_file_info(&f.path).unwrap();
        }
    }
    let list_calls_baseline = hdfs.metrics().get("hdfs.list_files");
    let getinfo_calls_baseline = hdfs.metrics().get("hdfs.get_file_info");

    // ---- with caches: file-list cache on the coordinator (hot tables
    // only, per the paper), handle+footer cache on workers
    hdfs.metrics().reset();
    let metrics = CounterSet::new();
    let file_lists = FileListCache::new(Arc::new(hdfs.clone()), metrics.clone());
    let handles = FileHandleCache::new(Arc::new(hdfs.clone()), 8192, metrics.clone());
    let footers = FooterCache::new(handles.clone(), 4096, metrics);
    for &part in &scan_sequence {
        let (table, dir, sealed) = &warehouse.partitions[part];
        let cache_enabled = *table < trace.hot_tables;
        let files = if cache_enabled {
            file_lists.list_partition(dir, *sealed).unwrap()
        } else {
            Arc::new(hdfs.list_files(dir).unwrap())
        };
        for f in files.iter() {
            // workers open the footer (which needs the handle) per split
            footers.get_footer(&f.path).unwrap();
        }
    }
    let list_calls_cached = hdfs.metrics().get("hdfs.list_files");
    let getinfo_calls_cached = hdfs.metrics().get("hdfs.get_file_info");

    let _ = warehouse.files_per_partition;
    CacheResult {
        list_calls_baseline,
        list_calls_cached,
        getinfo_calls_baseline,
        getinfo_calls_cached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_section_vii_numbers() {
        let result = run(&CacheTrace::default(), 7);
        // paper: listFiles reduced to <40%
        assert!(
            result.list_remaining_pct() < 40.0,
            "listFiles remaining {:.1}%",
            result.list_remaining_pct()
        );
        // paper: ~90% of getFileInfo removed
        assert!(
            result.getinfo_reduction_pct() > 80.0,
            "getFileInfo reduction {:.1}%",
            result.getinfo_reduction_pct()
        );
    }
}
