#![warn(missing_docs)]

//! Benchmark workloads reproducing every figure and table of the paper's
//! evaluation (§X), plus the §VI/§VII/§VIII/§IX experiments reported in
//! prose. The `paper-experiments` binary drives these and prints
//! paper-claim-vs-measured tables; the Criterion benches under `benches/`
//! reuse the same builders for statistically careful wall-clock numbers.
//!
//! Scale disclaimer (DESIGN.md §2): the paper ran on 100–200-node clusters
//! against production petabytes. These workloads preserve the *mechanisms*
//! and report the *relative* numbers (who wins, by what factor); absolute
//! values are laptop-scale.

pub mod cache_bench;
pub mod cache_exp;
pub mod chaos;
pub mod elastic;
pub mod fig16;
pub mod fig17;
pub mod geo_exp;
pub mod obs;
pub mod report;
pub mod resource_exp;
pub mod s3_exp;
pub mod telemetry;
pub mod writers;
