//! §XII.C: resource management — the Fig 17 join workload under a capped
//! per-query memory budget, with and without the resource subsystem.
//!
//! Without per-query pools and spill, a query that outgrows its budget dies
//! with `INSUFFICIENT_RESOURCES` ("consider running this query on
//! Spark/Hive" — the paper's batch-fallback advice). With the subsystem
//! enabled the same query under the same cap spills its blocking operators
//! (hash join build, aggregation table, sort buffer) to the spill
//! filesystem, completes, and returns the same rows.
//!
//! The cap is self-calibrating: each query first runs unconstrained and the
//! constrained runs get half its `memory.reserved_peak`.

use std::sync::Arc;

use presto_common::{SimClock, Value};
use presto_core::Session;
use presto_resource::{ResourceConfig, ResourceManager};
use presto_storage::FileSystem;

use crate::fig17::{self, QueryKind};

/// One join query's fate under each regime.
#[derive(Debug, Clone)]
pub struct ResourceResult {
    /// Query label (`q10`..`q21`).
    pub name: String,
    /// Unconstrained peak memory reservation in bytes.
    pub peak_bytes: u64,
    /// The cap applied to both constrained runs (half the peak).
    pub budget_bytes: usize,
    /// Error code of the capped run WITHOUT the subsystem (`None` =
    /// completed within budget).
    pub unmanaged_error: Option<String>,
    /// Whether the capped run WITH spill enabled completed.
    pub managed_ok: bool,
    /// Bytes the managed run wrote to the spill filesystem.
    pub spilled_bytes: u64,
    /// Spill files the managed run created.
    pub spill_files: u64,
    /// Whether the managed run returned exactly the unconstrained rows.
    pub rows_match: bool,
}

impl ResourceResult {
    /// `true` when the unmanaged capped run was killed.
    pub fn unmanaged_killed(&self) -> bool {
        self.unmanaged_error.is_some()
    }
}

/// Row equality with a relative tolerance on doubles: spilling reorders
/// floating-point sums, which is correct but not bit-identical.
fn rows_approx_eq(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Double(x), Value::Double(y)) => {
                        (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
                    }
                    _ => va == vb,
                })
        })
}

/// Run the 12 Fig 17 joins at `rows_per_partition`, each capped at half its
/// unconstrained peak, spilling onto `spill_fs`.
pub fn run(rows_per_partition: usize, spill_fs: Arc<dyn FileSystem>) -> Vec<ResourceResult> {
    let workload = fig17::build(rows_per_partition);
    let engine = workload.engine.clone().with_resources(ResourceManager::with_spill_fs(
        ResourceConfig::default(),
        SimClock::new(),
        spill_fs,
    ));
    let session = Session::new("hive", "rawdata");
    workload
        .queries
        .iter()
        .filter(|q| q.kind == QueryKind::Join)
        .map(|q| {
            let unconstrained = engine
                .execute_with_session(&q.sql, &session)
                .unwrap_or_else(|e| panic!("{} (unconstrained): {e}", q.name));
            let expected: Vec<Vec<Value>> = unconstrained.rows();
            // LIMIT without ORDER BY may keep any N rows; spilling reorders
            // the join output, so only the row count is comparable there.
            let deterministic = !q.sql.contains("LIMIT") || q.sql.contains("ORDER BY");
            let peak = unconstrained.metrics.get("memory.reserved_peak");
            let budget = (peak / 2) as usize;

            let capped = session.clone().with_memory_budget(budget);
            let unmanaged_error =
                engine.execute_with_session(&q.sql, &capped).err().map(|e| e.code().to_string());

            let managed = engine.execute_with_session(&q.sql, &capped.with_spill(true));
            let (managed_ok, spilled_bytes, spill_files, rows_match) = match managed {
                Ok(result) => {
                    let rows = result.rows();
                    let rows_match = if deterministic {
                        rows_approx_eq(&rows, &expected)
                    } else {
                        rows.len() == expected.len()
                    };
                    (
                        true,
                        result.metrics.get("spill.bytes_written"),
                        result.metrics.get("spill.files"),
                        rows_match,
                    )
                }
                Err(_) => (false, 0, 0, false),
            };
            ResourceResult {
                name: q.name.clone(),
                peak_bytes: peak,
                budget_bytes: budget,
                unmanaged_error,
                managed_ok,
                spilled_bytes,
                spill_files,
                rows_match,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_storage::InMemoryFileSystem;

    #[test]
    fn managed_runs_complete_where_unmanaged_runs_die() {
        let results = run(2_000, Arc::new(InMemoryFileSystem::new()));
        assert_eq!(results.len(), 12);
        for r in &results {
            assert!(r.peak_bytes > 0, "{}: joins must reserve memory", r.name);
            assert!(r.unmanaged_killed(), "{}: half the peak must not fit without spill", r.name);
            assert_eq!(r.unmanaged_error.as_deref(), Some("INSUFFICIENT_RESOURCES"), "{}", r.name);
            assert!(r.managed_ok, "{}: spill must rescue the capped run", r.name);
            assert!(r.rows_match, "{}: spilled rows must match", r.name);
        }
        assert!(
            results.iter().any(|r| r.spilled_bytes > 0),
            "at least one join must actually spill"
        );
    }
}
