//! The Presto-Pinot connector (§IV.B).
//!
//! Uber "is leveraging Apache Pinot for real time streaming processing"
//! (§IV); like Druid, Pinot serves sub-second filtered aggregations from
//! inverted indexes, and the connector bridges it to full SQL via
//! aggregation pushdown. The store personality differs slightly: smaller
//! segments and a lower per-query base (Pinot's broker fan-out is lighter),
//! but the connector machinery is shared with [`crate::druid`].

use std::time::Duration;

use crate::realtime::{RealtimeConnector, RealtimeCostModel, RealtimeStore};

/// Default rows per Pinot segment.
pub const PINOT_ROWS_PER_SEGMENT: usize = 5_000;

/// A fresh Pinot store with the Pinot cost personality.
pub fn pinot_store() -> RealtimeStore {
    RealtimeStore::new(
        "pinot",
        PINOT_ROWS_PER_SEGMENT,
        RealtimeCostModel {
            per_segment_base: Duration::from_micros(400),
            per_matched_row: Duration::from_nanos(120),
            per_streamed_row: Duration::from_micros(2),
        },
    )
}

/// A connector over a fresh Pinot store.
pub fn pinot_connector() -> RealtimeConnector {
    RealtimeConnector::new(pinot_store())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spi::{AggregationPushdown, ColumnPath, Connector, ScanHooks, ScanRequest};
    use presto_common::{DataType, Field, Schema, Value};
    use presto_expr::AggregateFunction;

    #[test]
    fn pinot_connector_round_trip() {
        let c = pinot_connector();
        let schema = Schema::new(vec![
            Field::new("ts", DataType::Timestamp),
            Field::new("city", DataType::Varchar),
            Field::new("orders", DataType::Bigint),
        ])
        .unwrap();
        c.store().create_table("eats", "orders_rt", schema).unwrap();
        c.store()
            .ingest(
                "eats",
                "orders_rt",
                (0..12_000)
                    .map(|i| {
                        vec![
                            Value::Timestamp(i as i64),
                            Value::Varchar(format!("city{}", i % 3)),
                            Value::Bigint(1),
                        ]
                    })
                    .collect(),
            )
            .unwrap();

        assert_eq!(c.name(), "pinot");
        let request = ScanRequest {
            aggregation: Some(AggregationPushdown {
                group_by: vec![ColumnPath::whole("city")],
                aggregates: vec![(AggregateFunction::Sum, Some(ColumnPath::whole("orders")))],
            }),
            ..ScanRequest::default()
        };
        let splits = c.splits("eats", "orders_rt", &request).unwrap();
        let mut totals = std::collections::HashMap::new();
        for s in &splits {
            for p in c.scan_split(s, &request, &ScanHooks::none()).unwrap() {
                for i in 0..p.positions() {
                    let row = p.row(i);
                    *totals.entry(row[0].to_string()).or_insert(0i64) += row[1].as_i64().unwrap();
                }
            }
        }
        assert_eq!(totals["city0"], 4000);
        assert_eq!(totals["city1"], 4000);
        assert_eq!(totals["city2"], 4000);
    }
}
