//! MySQL connector over a simulated OLTP row store.
//!
//! §IV: "MySQL is used widely in all companies with transaction support" and
//! "users could join Hadoop data with MySQL data using Presto-Hive-connector
//! and Presto-MySQL-connector, no need to copy any data." The store also
//! backs the federation gateway's routing table (§VIII: "The user and group
//! to cluster mapping data is stored in MySQL. Presto administrators could
//! play with MySQL to dynamically redirect any traffic").
//!
//! Pushdown: "it is desirable to let MySQL only stream filtered, projected,
//! and limited rows into Presto, instead of streaming the whole table"
//! (§IV.A) — so predicate/projection/limit are applied store-side here and
//! counted, letting experiments show the bytes-over-the-wire difference.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use presto_common::ids::SplitId;
use presto_common::metrics::{names, CounterSet};
use presto_common::{Block, Page, PrestoError, Result, Schema, Value};

use crate::memory::{predicate_mask, project_column};
use crate::spi::{
    Connector, ConnectorSplit, ScanCapabilities, ScanHooks, ScanRequest, SplitPayload,
};

struct MySqlTable {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

/// The simulated MySQL server. Cloning shares the database.
///
/// Counters: `mysql.rows_scanned`, `mysql.rows_streamed`, `mysql.statements`.
#[derive(Clone, Default)]
pub struct MySqlConnector {
    tables: Arc<RwLock<BTreeMap<(String, String), MySqlTable>>>,
    metrics: CounterSet,
}

impl MySqlConnector {
    /// Empty server.
    pub fn new() -> MySqlConnector {
        MySqlConnector::default()
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// `CREATE TABLE`.
    pub fn create_table(&self, schema_name: &str, table: &str, schema: Schema) -> Result<()> {
        self.metrics.incr(names::MYSQL_STATEMENTS);
        self.tables
            .write()
            .insert((schema_name.into(), table.into()), MySqlTable { schema, rows: Vec::new() });
        Ok(())
    }

    /// `INSERT INTO ... VALUES ...` (multi-row).
    pub fn insert(&self, schema_name: &str, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        self.metrics.incr(names::MYSQL_STATEMENTS);
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(&(schema_name.to_string(), table.to_string()))
            .ok_or_else(|| PrestoError::Connector(format!("no table {schema_name}.{table}")))?;
        for row in &rows {
            if row.len() != t.schema.len() {
                return Err(PrestoError::Connector(format!(
                    "row width {} does not match table width {}",
                    row.len(),
                    t.schema.len()
                )));
            }
        }
        t.rows.extend(rows);
        Ok(())
    }

    /// `DELETE FROM ... WHERE col = value` (exact-match; returns rows
    /// removed). Enough transactional mutability for the routing-table use
    /// case.
    pub fn delete_where(
        &self,
        schema_name: &str,
        table: &str,
        column: &str,
        value: &Value,
    ) -> Result<usize> {
        self.metrics.incr(names::MYSQL_STATEMENTS);
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(&(schema_name.to_string(), table.to_string()))
            .ok_or_else(|| PrestoError::Connector(format!("no table {schema_name}.{table}")))?;
        let idx = t
            .schema
            .index_of(column)
            .ok_or_else(|| PrestoError::Connector(format!("no column '{column}'")))?;
        let before = t.rows.len();
        t.rows.retain(|row| row[idx] != *value);
        Ok(before - t.rows.len())
    }

    /// `UPDATE ... SET set_col = set_value WHERE where_col = where_value`;
    /// returns rows changed.
    pub fn update_where(
        &self,
        schema_name: &str,
        table: &str,
        set_col: &str,
        set_value: Value,
        where_col: &str,
        where_value: &Value,
    ) -> Result<usize> {
        self.metrics.incr(names::MYSQL_STATEMENTS);
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(&(schema_name.to_string(), table.to_string()))
            .ok_or_else(|| PrestoError::Connector(format!("no table {schema_name}.{table}")))?;
        let set_idx = t
            .schema
            .index_of(set_col)
            .ok_or_else(|| PrestoError::Connector(format!("no column '{set_col}'")))?;
        let where_idx = t
            .schema
            .index_of(where_col)
            .ok_or_else(|| PrestoError::Connector(format!("no column '{where_col}'")))?;
        let mut changed = 0;
        for row in &mut t.rows {
            if row[where_idx] == *where_value {
                row[set_idx] = set_value.clone();
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Point lookup used by the gateway: first row where `col = value`.
    pub fn lookup(
        &self,
        schema_name: &str,
        table: &str,
        column: &str,
        value: &Value,
    ) -> Result<Option<Vec<Value>>> {
        self.metrics.incr(names::MYSQL_STATEMENTS);
        let tables = self.tables.read();
        let t = tables
            .get(&(schema_name.to_string(), table.to_string()))
            .ok_or_else(|| PrestoError::Connector(format!("no table {schema_name}.{table}")))?;
        let idx = t
            .schema
            .index_of(column)
            .ok_or_else(|| PrestoError::Connector(format!("no column '{column}'")))?;
        Ok(t.rows.iter().find(|row| row[idx] == *value).cloned())
    }

    fn to_page(&self, schema: &Schema, rows: &[Vec<Value>]) -> Result<Page> {
        let mut blocks = Vec::with_capacity(schema.len());
        for (c, field) in schema.fields().iter().enumerate() {
            let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            blocks.push(Block::from_values(&field.data_type, &column)?);
        }
        if blocks.is_empty() {
            Ok(Page::zero_column(rows.len()))
        } else {
            Page::new(blocks)
        }
    }
}

impl Connector for MySqlConnector {
    fn name(&self) -> &str {
        "mysql"
    }

    fn list_schemas(&self) -> Vec<String> {
        let mut out: Vec<String> = self.tables.read().keys().map(|(s, _)| s.clone()).collect();
        out.dedup();
        out
    }

    fn list_tables(&self, schema: &str) -> Result<Vec<String>> {
        Ok(self.tables.read().keys().filter(|(s, _)| s == schema).map(|(_, t)| t.clone()).collect())
    }

    fn table_schema(&self, schema: &str, table: &str) -> Result<Schema> {
        self.tables
            .read()
            .get(&(schema.to_string(), table.to_string()))
            .map(|t| t.schema.clone())
            .ok_or_else(|| {
                PrestoError::Analysis(format!("table mysql.{schema}.{table} does not exist"))
            })
    }

    fn capabilities(&self) -> ScanCapabilities {
        ScanCapabilities {
            projection: true,
            nested_pruning: false, // row store has flat columns
            predicate: true,
            limit: true,
            aggregation: false,
        }
    }

    fn splits(
        &self,
        schema: &str,
        table: &str,
        _request: &ScanRequest,
    ) -> Result<Vec<ConnectorSplit>> {
        // An OLTP store streams through one connection: one split.
        self.table_schema(schema, table)?;
        Ok(vec![ConnectorSplit {
            id: SplitId(0),
            schema: schema.to_string(),
            table: table.to_string(),
            payload: SplitPayload::MySql,
        }])
    }

    fn scan_split(
        &self,
        split: &ConnectorSplit,
        request: &ScanRequest,
        hooks: &ScanHooks,
    ) -> Result<Vec<Page>> {
        if !matches!(split.payload, SplitPayload::MySql) {
            return Err(PrestoError::Connector("mysql connector got foreign split".into()));
        }
        let tables = self.tables.read();
        let t = tables
            .get(&(split.schema.clone(), split.table.clone()))
            .ok_or_else(|| PrestoError::Connector(format!("no table {}", split.table)))?;
        self.metrics.add(names::MYSQL_ROWS_SCANNED, t.rows.len() as u64);
        let full = self.to_page(&t.schema, &t.rows)?;

        // WHERE → row filter server-side (predicate pushdown)
        let filtered = if request.predicate.is_empty() {
            full
        } else {
            let mask = predicate_mask(&t.schema, &full, &request.predicate)?;
            full.filter(&mask)
        };
        // LIMIT server-side
        let limited = match request.limit {
            Some(l) if filtered.positions() > l => filtered.slice(0, l),
            _ => filtered,
        };
        // SELECT column list server-side (projection pushdown)
        let mut blocks = Vec::with_capacity(request.columns.len());
        for col in &request.columns {
            blocks.push(project_column(&t.schema, &limited, col)?);
        }
        let page = if blocks.is_empty() {
            Page::zero_column(limited.positions())
        } else {
            Page::new(blocks)?
        };
        hooks.on_page()?;
        self.metrics.add(names::MYSQL_ROWS_STREAMED, page.positions() as u64);
        Ok(vec![page])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spi::{ColumnPath, PushdownPredicate};
    use presto_common::{DataType, Field};
    use presto_parquet::ScalarPredicate;

    fn routing_table() -> MySqlConnector {
        let c = MySqlConnector::new();
        let schema = Schema::new(vec![
            Field::new("user_group", DataType::Varchar),
            Field::new("cluster", DataType::Varchar),
        ])
        .unwrap();
        c.create_table("presto", "routing", schema).unwrap();
        c.insert(
            "presto",
            "routing",
            vec![
                vec!["ads".into(), "dedicated-1".into()],
                vec!["growth".into(), "shared".into()],
                vec!["eats".into(), "dedicated-2".into()],
            ],
        )
        .unwrap();
        c
    }

    #[test]
    fn crud_operations() {
        let c = routing_table();
        assert_eq!(
            c.lookup("presto", "routing", "user_group", &"ads".into()).unwrap().unwrap()[1],
            Value::Varchar("dedicated-1".into())
        );
        assert_eq!(
            c.update_where(
                "presto",
                "routing",
                "cluster",
                "shared".into(),
                "user_group",
                &"ads".into()
            )
            .unwrap(),
            1
        );
        assert_eq!(
            c.lookup("presto", "routing", "user_group", &"ads".into()).unwrap().unwrap()[1],
            Value::Varchar("shared".into())
        );
        assert_eq!(c.delete_where("presto", "routing", "user_group", &"eats".into()).unwrap(), 1);
        assert!(c.lookup("presto", "routing", "user_group", &"eats".into()).unwrap().is_none());
        // width validation
        assert!(c.insert("presto", "routing", vec![vec!["x".into()]]).is_err());
    }

    #[test]
    fn scan_applies_pushdowns_server_side() {
        let c = routing_table();
        let request = ScanRequest {
            columns: vec![ColumnPath::whole("cluster")],
            predicate: vec![PushdownPredicate {
                target: ColumnPath::whole("user_group"),
                predicate: ScalarPredicate::Eq(Value::Varchar("growth".into())),
            }],
            limit: None,
            aggregation: None,
        };
        let splits = c.splits("presto", "routing", &request).unwrap();
        assert_eq!(splits.len(), 1);
        let pages = c.scan_split(&splits[0], &request, &ScanHooks::none()).unwrap();
        assert_eq!(pages[0].positions(), 1);
        assert_eq!(pages[0].row(0), vec![Value::Varchar("shared".into())]);
        // only the matching row crossed the wire
        assert_eq!(c.metrics().get(names::MYSQL_ROWS_SCANNED), 3);
        assert_eq!(c.metrics().get(names::MYSQL_ROWS_STREAMED), 1);
    }

    #[test]
    fn limit_pushdown_truncates_stream() {
        let c = routing_table();
        let request = ScanRequest {
            columns: vec![ColumnPath::whole("user_group")],
            limit: Some(2),
            ..ScanRequest::default()
        };
        let splits = c.splits("presto", "routing", &request).unwrap();
        let pages = c.scan_split(&splits[0], &request, &ScanHooks::none()).unwrap();
        assert_eq!(pages[0].positions(), 2);
        assert_eq!(c.metrics().get(names::MYSQL_ROWS_STREAMED), 2);
    }
}
