//! The connector SPI (§IV).
//!
//! The paper lists the interface pieces verbatim: *ConnectorMetadata* ("which
//! defines schemas, tables, columns"), *ConnectorSplitManager* ("how Presto
//! divide\[s\] the underlying data into splits, and process\[es\] them in
//! parallel"), *ConnectorSplit* ("one processing unit, or one shard of
//! underlying data"), and *ConnectorRecordSetProvider* ("upon getting data
//! streams from underlying systems, how Presto parse\[s\] and transform\[s\]
//! them into Presto engine" pages). [`Connector`] carries all four roles,
//! plus the pushdown contract of §IV.A/§IV.B.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use presto_common::fault::{FaultInjector, PageFault};
use presto_common::ids::SplitId;
use presto_common::{DataType, Page, PrestoError, Result, Schema};
use presto_expr::AggregateFunction;
use presto_parquet::ScalarPredicate;

/// A column reference with an optional nested struct sub-path — the unit of
/// projection pushdown, including nested column pruning (`base.city_id`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnPath {
    /// Top-level column name.
    pub column: String,
    /// Struct field path below it (empty = whole column).
    pub path: Vec<String>,
}

impl ColumnPath {
    /// Whole top-level column.
    pub fn whole(column: impl Into<String>) -> ColumnPath {
        ColumnPath { column: column.into(), path: Vec::new() }
    }

    /// Nested path.
    pub fn nested(column: impl Into<String>, path: &[&str]) -> ColumnPath {
        ColumnPath { column: column.into(), path: path.iter().map(|s| s.to_string()).collect() }
    }

    /// Dotted display / leaf-path form (`base.city_id`).
    pub fn dotted(&self) -> String {
        let mut s = self.column.clone();
        for p in &self.path {
            s.push('.');
            s.push_str(p);
        }
        s
    }

    /// Resolve this path's type against a table schema.
    pub fn resolve_type(&self, schema: &Schema) -> Result<DataType> {
        let field = schema
            .field(&self.column)
            .ok_or_else(|| PrestoError::Analysis(format!("no column '{}'", self.column)))?;
        let sub: Vec<&str> = self.path.iter().map(String::as_str).collect();
        Ok(field.data_type.resolve_path(&sub)?.clone())
    }
}

/// One conjunct of predicate pushdown, bound to a (possibly nested) column.
#[derive(Debug, Clone, PartialEq)]
pub struct PushdownPredicate {
    /// The column (or nested leaf) the predicate constrains.
    pub target: ColumnPath,
    /// The value-domain predicate.
    pub predicate: ScalarPredicate,
}

/// Aggregation pushdown (§IV.B, Fig 2): the connector executes the partial
/// aggregation and streams only aggregated rows; the engine runs the final
/// aggregation over the partials.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationPushdown {
    /// GROUP BY columns.
    pub group_by: Vec<ColumnPath>,
    /// Aggregates: function + argument (`None` = `count(*)`).
    pub aggregates: Vec<(AggregateFunction, Option<ColumnPath>)>,
}

/// What a scan asks of a connector. The planner only populates fields the
/// connector's [`ScanCapabilities`] advertise; everything populated is a
/// contract the connector must apply exactly (except `limit`, which is a
/// hint to stop early — the engine re-applies it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanRequest {
    /// Projection (with nested pruning paths). Ignored when `aggregation`
    /// is set (the output is the aggregation's).
    pub columns: Vec<ColumnPath>,
    /// Conjuncts to apply; rows streamed must satisfy all of them.
    pub predicate: Vec<PushdownPredicate>,
    /// Early-out hint.
    pub limit: Option<usize>,
    /// Aggregation to execute inside the connector.
    pub aggregation: Option<AggregationPushdown>,
}

impl ScanRequest {
    /// A plain projection scan.
    pub fn project(columns: Vec<ColumnPath>) -> ScanRequest {
        ScanRequest { columns, ..ScanRequest::default() }
    }

    /// The schema of pages this request produces against `table_schema`.
    pub fn output_schema(&self, table_schema: &Schema) -> Result<Schema> {
        match &self.aggregation {
            Some(agg) => {
                let mut fields = Vec::new();
                for g in &agg.group_by {
                    fields
                        .push(presto_common::Field::new(g.dotted(), g.resolve_type(table_schema)?));
                }
                for (i, (func, arg)) in agg.aggregates.iter().enumerate() {
                    let input = match arg {
                        Some(path) => Some(path.resolve_type(table_schema)?),
                        None => None,
                    };
                    let out = func.return_type(input.as_ref())?;
                    fields.push(presto_common::Field::new(format!("agg_{i}"), out));
                }
                Schema::new(fields)
            }
            None => {
                let mut fields = Vec::new();
                for c in &self.columns {
                    fields
                        .push(presto_common::Field::new(c.dotted(), c.resolve_type(table_schema)?));
                }
                Schema::new(fields)
            }
        }
    }
}

/// Which pushdowns a connector supports — what the planner consults before
/// populating a [`ScanRequest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCapabilities {
    /// Projection pushdown (always includes whole columns; `nested_pruning`
    /// additionally allows sub-paths).
    pub projection: bool,
    /// Nested column pruning within projections.
    pub nested_pruning: bool,
    /// Predicate pushdown.
    pub predicate: bool,
    /// Limit pushdown.
    pub limit: bool,
    /// Aggregation pushdown (§IV.B).
    pub aggregation: bool,
}

/// Connector-specific split payload — "one shard of underlying data".
#[derive(Debug, Clone, PartialEq)]
pub enum SplitPayload {
    /// One warehouse file (plus its partition column value, if any).
    HiveFile {
        /// File path on the connector's filesystem.
        path: String,
        /// `(partition_column, value)` when the table is partitioned.
        partition: Option<(String, String)>,
    },
    /// One chunk of an in-memory table.
    Memory {
        /// Chunk index.
        chunk: usize,
    },
    /// A whole row-store table (OLTP stores stream one split).
    MySql,
    /// A range of real-time segments.
    Segments {
        /// First segment (inclusive).
        start: usize,
        /// Last segment (exclusive).
        end: usize,
    },
    /// A generated TPC-H row range.
    Tpch {
        /// First row.
        start: usize,
        /// Row count.
        count: usize,
    },
    /// A whole `system` table, materialized from live cluster telemetry at
    /// scan time (one split per table; never cacheable — the rows change
    /// between snapshots).
    System,
}

/// A schedulable unit of scan work.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectorSplit {
    /// Unique id within the scan.
    pub id: SplitId,
    /// Target schema name.
    pub schema: String,
    /// Target table name.
    pub table: String,
    /// Connector-specific shard descriptor.
    pub payload: SplitPayload,
}

/// A storage system plugged into the engine. One instance = one catalog
/// (`catalog.schema.table` naming, §IV).
pub trait Connector: Send + Sync {
    /// Connector (catalog) kind name, e.g. `hive`, `mysql`, `druid`.
    fn name(&self) -> &str;

    /// ConnectorMetadata: schemas.
    fn list_schemas(&self) -> Vec<String>;

    /// ConnectorMetadata: tables of a schema.
    fn list_tables(&self, schema: &str) -> Result<Vec<String>>;

    /// ConnectorMetadata: a table's columns.
    fn table_schema(&self, schema: &str, table: &str) -> Result<Schema>;

    /// Pushdown capabilities.
    fn capabilities(&self) -> ScanCapabilities;

    /// ConnectorSplitManager: divide the scan into parallel splits. The
    /// request is visible so split pruning (e.g. Hive partition pruning) can
    /// use the predicate.
    fn splits(
        &self,
        schema: &str,
        table: &str,
        request: &ScanRequest,
    ) -> Result<Vec<ConnectorSplit>>;

    /// ConnectorRecordSetProvider: stream one split as engine pages, with
    /// every pushdown in `request` applied. Implementations call
    /// [`ScanHooks::on_page`] once per emitted page so mid-stream faults
    /// (stalls, torn streams) fire at realistic points inside the scan.
    fn scan_split(
        &self,
        split: &ConnectorSplit,
        request: &ScanRequest,
        hooks: &ScanHooks,
    ) -> Result<Vec<Page>>;
}

/// Mid-stream instrumentation threaded through [`Connector::scan_split`].
///
/// Connectors call [`ScanHooks::on_page`] once per page they are about to
/// emit; the hook consults the task's [`FaultInjector`] with the page's
/// 1-based ordinal. An injected stall is *accumulated* here (virtual time —
/// the coordinator adds it to the task's runtime; scan code never touches
/// the shared clock), and an injected tear surfaces as a retryable
/// [`PrestoError::WorkerFailed`] so the split is reassigned like any other
/// mid-flight worker loss. [`ScanHooks::none`] is the no-op default used by
/// local (non-cluster) execution and unit tests.
#[derive(Debug, Default)]
pub struct ScanHooks {
    injector: Option<Arc<FaultInjector>>,
    worker_id: u32,
    task_seq: u64,
    pages: AtomicU64,
    stalled_nanos: AtomicU64,
}

impl ScanHooks {
    /// No-op hooks: pages are counted, nothing ever stalls or tears.
    pub fn none() -> ScanHooks {
        ScanHooks::default()
    }

    /// Hooks wired to `injector` for the `task_seq`-th task (1-based) on
    /// worker `worker_id`.
    pub fn for_task(injector: Arc<FaultInjector>, worker_id: u32, task_seq: u64) -> ScanHooks {
        ScanHooks {
            injector: injector.is_enabled().then_some(injector),
            worker_id,
            task_seq,
            pages: AtomicU64::new(0),
            stalled_nanos: AtomicU64::new(0),
        }
    }

    /// Announce the next page of the stream. Returns an error if the plan
    /// tears the stream at this page; an injected stall is added to
    /// [`ScanHooks::stalled`] and the scan proceeds.
    pub fn on_page(&self) -> Result<()> {
        let ordinal = self.pages.fetch_add(1, Ordering::Relaxed) + 1;
        let Some(injector) = &self.injector else {
            return Ok(());
        };
        match injector.on_scan_page(self.worker_id, self.task_seq, ordinal) {
            PageFault::None => Ok(()),
            PageFault::Stall(delay) => {
                let nanos = u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX);
                self.stalled_nanos.fetch_add(nanos, Ordering::Relaxed);
                Ok(())
            }
            PageFault::Tear => Err(PrestoError::WorkerFailed {
                worker_id: self.worker_id,
                message: format!("scan stream tore at page {ordinal} (injected)"),
            }),
        }
    }

    /// Pages announced so far.
    pub fn pages_emitted(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    /// Total virtual stall time injected into this scan so far.
    pub fn stalled(&self) -> Duration {
        Duration::from_nanos(self.stalled_nanos.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("city", DataType::Varchar),
            Field::new("base", DataType::row(vec![Field::new("city_id", DataType::Bigint)])),
            Field::new("fare", DataType::Double),
        ])
        .unwrap()
    }

    #[test]
    fn column_paths_resolve_types() {
        let s = schema();
        assert_eq!(ColumnPath::whole("fare").resolve_type(&s).unwrap(), DataType::Double);
        let nested = ColumnPath::nested("base", &["city_id"]);
        assert_eq!(nested.resolve_type(&s).unwrap(), DataType::Bigint);
        assert_eq!(nested.dotted(), "base.city_id");
        assert!(ColumnPath::whole("missing").resolve_type(&s).is_err());
    }

    #[test]
    fn projection_request_output_schema() {
        let req = ScanRequest::project(vec![
            ColumnPath::nested("base", &["city_id"]),
            ColumnPath::whole("fare"),
        ]);
        let out = req.output_schema(&schema()).unwrap();
        assert_eq!(out.fields()[0].name, "base.city_id");
        assert_eq!(out.fields()[0].data_type, DataType::Bigint);
        assert_eq!(out.fields()[1].data_type, DataType::Double);
    }

    #[test]
    fn aggregation_request_output_schema() {
        let req = ScanRequest {
            aggregation: Some(AggregationPushdown {
                group_by: vec![ColumnPath::whole("city")],
                aggregates: vec![
                    (AggregateFunction::CountStar, None),
                    (AggregateFunction::Max, Some(ColumnPath::whole("fare"))),
                ],
            }),
            ..ScanRequest::default()
        };
        let out = req.output_schema(&schema()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.fields()[0].name, "city");
        assert_eq!(out.fields()[1].data_type, DataType::Bigint); // count
        assert_eq!(out.fields()[2].data_type, DataType::Double); // max(fare)
    }
}
