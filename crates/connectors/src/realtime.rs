//! Real-time OLAP store simulator — the substrate behind the Druid and
//! Pinot connectors (§IV.B).
//!
//! "Druid and Pinot are real time systems, which have in memory bitmap
//! indices, inverted indices, pre-aggregations or dictionaries, enabling
//! sub-second query latency." This store models exactly those mechanisms:
//!
//! - data lands in immutable **segments** of dictionary-encoded dimension
//!   columns with **inverted indexes** (value id → row ids) plus raw metric
//!   columns;
//! - a **native query API** ([`RealtimeStore::execute_native`]) evaluates
//!   filter + group-by + aggregate *inside* the store using the indexes and
//!   returns aggregated rows with a virtual cost — the sub-second path;
//! - a **raw scan API** ([`RealtimeStore::scan_segments`]) streams (filtered,
//!   projected) rows out, charging per streamed row — what a connector
//!   without aggregation pushdown falls back to.
//!
//! Virtual costs are returned per call so benchmarks can model parallel
//! split execution (latency = max over splits) rather than serializing on a
//! global clock.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use presto_common::metrics::{names, CounterSet};
use presto_common::{DataType, PrestoError, Result, Schema, Value};
use presto_expr::{Accumulator, AggregateFunction};
use presto_parquet::ScalarPredicate;

/// Store cost model (virtual time).
#[derive(Debug, Clone)]
pub struct RealtimeCostModel {
    /// Fixed broker/query-planning overhead per native query per segment.
    pub per_segment_base: Duration,
    /// Cost per row that survives the index filter and is aggregated.
    pub per_matched_row: Duration,
    /// Cost per row streamed out of the raw scan path.
    pub per_streamed_row: Duration,
}

impl Default for RealtimeCostModel {
    fn default() -> Self {
        RealtimeCostModel {
            per_segment_base: Duration::from_micros(500),
            per_matched_row: Duration::from_nanos(150),
            per_streamed_row: Duration::from_micros(2),
        }
    }
}

/// One dictionary-encoded dimension column with its inverted index.
#[derive(Debug)]
struct DimColumn {
    dictionary: Vec<String>,
    ids: Vec<u32>,
    /// value id → sorted row ids (the "in memory bitmap index").
    inverted: HashMap<u32, Vec<u32>>,
}

/// One immutable segment.
#[derive(Debug)]
pub struct Segment {
    rows: usize,
    /// Event timestamps (millis), ascending within the segment.
    time: Vec<i64>,
    dims: Vec<DimColumn>,
    metrics: Vec<Vec<f64>>,
}

/// A table: time column + dimension columns (varchar) + metric columns
/// (bigint/double), the classic Druid/Pinot shape.
pub struct RealtimeTable {
    schema: Schema,
    /// Indices into `schema` for dims, parallel to `Segment::dims`.
    dim_cols: Vec<usize>,
    /// Indices into `schema` for metrics, parallel to `Segment::metrics`.
    metric_cols: Vec<usize>,
    /// Index into `schema` of the time column.
    time_col: usize,
    segments: Vec<Segment>,
}

impl RealtimeTable {
    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total rows.
    pub fn row_count(&self) -> usize {
        self.segments.iter().map(|s| s.rows).sum()
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// A native filter + group-by + aggregate query.
#[derive(Debug, Clone, Default)]
pub struct NativeQuery {
    /// Conjunctive filters by column name.
    pub filters: Vec<(String, ScalarPredicate)>,
    /// GROUP BY dimension names.
    pub group_by: Vec<String>,
    /// Aggregates: function + metric name (`None` = count(*)).
    pub aggregates: Vec<(AggregateFunction, Option<String>)>,
    /// LIMIT on output rows.
    pub limit: Option<usize>,
}

/// Virtual cost of one scan, decomposed so latency models can treat the
/// per-segment filter work as parallel and the stream-out as serialized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCost {
    /// Slowest segment's filter/aggregate work (parallel across segments).
    pub filter: Duration,
    /// Rows-over-the-wire cost (serialized toward the consumer).
    pub stream: Duration,
}

impl ScanCost {
    /// Total as a single duration.
    pub fn total(&self) -> Duration {
        self.filter + self.stream
    }
}

/// Result of a native query: output rows plus the virtual cost incurred.
#[derive(Debug)]
pub struct NativeResult {
    /// Output rows: group-by values then aggregate values.
    pub rows: Vec<Vec<Value>>,
    /// Virtual execution cost.
    pub cost: Duration,
    /// Rows that survived the index filter (work actually done).
    pub rows_matched: u64,
}

/// Counters recorded: `rt.native_queries`, `rt.rows_matched`,
/// `rt.rows_streamed`.
type RealtimeTables = BTreeMap<(String, String), Arc<RealtimeTable>>;

/// The store: named tables of segments. Cloning shares the data.
#[derive(Clone)]
pub struct RealtimeStore {
    kind: &'static str,
    tables: Arc<RwLock<RealtimeTables>>,
    cost: Arc<RealtimeCostModel>,
    metrics: CounterSet,
    rows_per_segment: usize,
}

impl RealtimeStore {
    /// New store; `kind` is `druid` or `pinot` (for messages/metrics only).
    pub fn new(
        kind: &'static str,
        rows_per_segment: usize,
        cost: RealtimeCostModel,
    ) -> RealtimeStore {
        RealtimeStore {
            kind,
            tables: Arc::new(RwLock::new(BTreeMap::new())),
            cost: Arc::new(cost),
            metrics: CounterSet::new(),
            rows_per_segment: rows_per_segment.max(1),
        }
    }

    /// Store kind name.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The shared counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Create a table. The schema must be: one `timestamp` column, then any
    /// number of varchar dimensions and numeric metrics.
    pub fn create_table(&self, schema_name: &str, table: &str, schema: Schema) -> Result<()> {
        let mut time_col = None;
        let mut dim_cols = Vec::new();
        let mut metric_cols = Vec::new();
        for (i, f) in schema.fields().iter().enumerate() {
            match &f.data_type {
                DataType::Timestamp if time_col.is_none() => time_col = Some(i),
                DataType::Varchar => dim_cols.push(i),
                DataType::Bigint | DataType::Double | DataType::Integer => metric_cols.push(i),
                other => {
                    return Err(PrestoError::Connector(format!(
                        "{} does not support column type {other}",
                        self.kind
                    )))
                }
            }
        }
        let time_col = time_col.ok_or_else(|| {
            PrestoError::Connector(format!("{} tables need a timestamp column", self.kind))
        })?;
        self.tables.write().insert(
            (schema_name.into(), table.into()),
            Arc::new(RealtimeTable {
                schema,
                dim_cols,
                metric_cols,
                time_col,
                segments: Vec::new(),
            }),
        );
        Ok(())
    }

    /// Ingest rows (in event-time order), sealing segments of
    /// `rows_per_segment` with dictionaries and inverted indexes.
    ///
    /// Columns are effectively NOT NULL, like Druid's default ingestion:
    /// NULL dimensions coerce to `""` and NULL metrics to `0` at ingest.
    /// Queries (pushed down or not) see the coerced values consistently.
    pub fn ingest(&self, schema_name: &str, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        let mut tables = self.tables.write();
        let key = (schema_name.to_string(), table.to_string());
        let existing = tables
            .get(&key)
            .ok_or_else(|| PrestoError::Connector(format!("no table {schema_name}.{table}")))?;
        // Rebuild with appended segments (tables are Arc-shared snapshots).
        let mut segments: Vec<Segment> =
            Vec::with_capacity(existing.segments.len() + rows.len() / self.rows_per_segment + 1);
        let old = tables.remove(&key).expect("checked above");
        let old = match Arc::try_unwrap(old) {
            Ok(table) => table,
            Err(shared) => {
                // a scan holds a snapshot: put the table back untouched
                // before erroring, or it would vanish from the catalog
                tables.insert(key, shared);
                return Err(PrestoError::Connector(
                    "cannot ingest while scans hold table snapshots".into(),
                ));
            }
        };
        let RealtimeTable { schema, dim_cols, metric_cols, time_col, segments: old_segments } = old;
        segments.extend(old_segments);
        for chunk in rows.chunks(self.rows_per_segment) {
            segments.push(build_segment(&schema, &dim_cols, &metric_cols, time_col, chunk)?);
        }
        tables.insert(
            key,
            Arc::new(RealtimeTable { schema, dim_cols, metric_cols, time_col, segments }),
        );
        Ok(())
    }

    /// Look up a table snapshot.
    pub fn table(&self, schema_name: &str, table: &str) -> Result<Arc<RealtimeTable>> {
        self.tables.read().get(&(schema_name.to_string(), table.to_string())).cloned().ok_or_else(
            || {
                PrestoError::Analysis(format!(
                    "table {}.{schema_name}.{table} does not exist",
                    self.kind
                ))
            },
        )
    }

    /// All `(schema, table)` names.
    pub fn table_names(&self) -> Vec<(String, String)> {
        self.tables.read().keys().cloned().collect()
    }

    /// Execute a native query over a segment range (`None` = all segments).
    /// This is the sub-second path: inverted indexes produce matching row
    /// ids, only those rows are aggregated.
    pub fn execute_native(
        &self,
        schema_name: &str,
        table: &str,
        query: &NativeQuery,
        segment_range: Option<(usize, usize)>,
    ) -> Result<NativeResult> {
        self.metrics.incr(names::RT_NATIVE_QUERIES);
        let t = self.table(schema_name, table)?;
        let (start, end) = segment_range.unwrap_or((0, t.segments.len()));
        // Segments are scanned by parallel historicals: the query's latency
        // is the slowest segment's cost, not the sum.
        let mut cost = Duration::ZERO;
        let mut matched_total = 0u64;

        // group key → accumulators
        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        let make_accs = |q: &NativeQuery| -> Vec<Accumulator> {
            q.aggregates.iter().map(|(f, _)| f.new_accumulator()).collect()
        };

        for seg in &t.segments[start..end.min(t.segments.len())] {
            let matching = match_rows(&t, seg, &query.filters)?;
            matched_total += matching.len() as u64;
            let seg_cost =
                self.cost.per_segment_base + self.cost.per_matched_row * matching.len() as u32;
            cost = cost.max(seg_cost);
            for &row in &matching {
                let key: Vec<Value> = query
                    .group_by
                    .iter()
                    .map(|d| column_value(&t, seg, d, row as usize))
                    .collect::<Result<Vec<_>>>()?;
                let accs = groups.entry(key).or_insert_with(|| make_accs(query));
                for (acc, (func, arg)) in accs.iter_mut().zip(query.aggregates.iter()) {
                    match (func, arg) {
                        (AggregateFunction::CountStar, _) | (_, None) => acc.add_count(1),
                        (_, Some(metric)) => acc.add(&column_value(&t, seg, metric, row as usize)?),
                    }
                }
            }
        }
        self.metrics.add(names::RT_ROWS_MATCHED, matched_total);

        let mut rows: Vec<Vec<Value>> = groups
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(accs.iter().map(Accumulator::finish));
                key
            })
            .collect();
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }
        Ok(NativeResult { rows, cost, rows_matched: matched_total })
    }

    /// Raw scan of a segment range: stream (filtered, projected) rows out —
    /// the no-aggregation-pushdown path. Returns rows plus virtual cost.
    #[allow(clippy::type_complexity)]
    pub fn scan_segments(
        &self,
        schema_name: &str,
        table: &str,
        columns: &[String],
        filters: &[(String, ScalarPredicate)],
        limit: Option<usize>,
        segment_range: Option<(usize, usize)>,
    ) -> Result<(Vec<Vec<Value>>, ScanCost)> {
        let t = self.table(schema_name, table)?;
        let (start, end) = segment_range.unwrap_or((0, t.segments.len()));
        let mut out = Vec::new();
        // parallel historicals again: max per-segment filter cost, plus
        // serialized stream-out of every row that crosses the wire
        let mut filter_cost = Duration::ZERO;
        'segments: for seg in &t.segments[start..end.min(t.segments.len())] {
            let matching = match_rows(&t, seg, filters)?;
            let seg_cost =
                self.cost.per_segment_base + self.cost.per_matched_row * matching.len() as u32;
            filter_cost = filter_cost.max(seg_cost);
            for &row in &matching {
                let mut record = Vec::with_capacity(columns.len());
                for c in columns {
                    record.push(column_value(&t, seg, c, row as usize)?);
                }
                out.push(record);
                if let Some(l) = limit {
                    if out.len() >= l {
                        break 'segments;
                    }
                }
            }
        }
        self.metrics.add(names::RT_ROWS_STREAMED, out.len() as u64);
        let stream = self.cost.per_streamed_row * out.len() as u32;
        Ok((out, ScanCost { filter: filter_cost, stream }))
    }
}

/// Build one sealed segment from raw rows.
fn build_segment(
    schema: &Schema,
    dim_cols: &[usize],
    metric_cols: &[usize],
    time_col: usize,
    rows: &[Vec<Value>],
) -> Result<Segment> {
    let mut time = Vec::with_capacity(rows.len());
    for r in rows {
        if r.len() != schema.len() {
            return Err(PrestoError::Connector("row width mismatch at ingest".into()));
        }
        time.push(r[time_col].as_i64().unwrap_or(0));
    }
    let mut dims = Vec::with_capacity(dim_cols.len());
    for &c in dim_cols {
        let mut dictionary: Vec<String> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut ids = Vec::with_capacity(rows.len());
        let mut inverted: HashMap<u32, Vec<u32>> = HashMap::new();
        for (row_id, r) in rows.iter().enumerate() {
            let s = r[c].as_str().unwrap_or("").to_string();
            let id = *index.entry(s.clone()).or_insert_with(|| {
                dictionary.push(s);
                (dictionary.len() - 1) as u32
            });
            ids.push(id);
            inverted.entry(id).or_default().push(row_id as u32);
        }
        dims.push(DimColumn { dictionary, ids, inverted });
    }
    let mut metrics = Vec::with_capacity(metric_cols.len());
    for &c in metric_cols {
        metrics.push(rows.iter().map(|r| r[c].as_f64().unwrap_or(0.0)).collect());
    }
    Ok(Segment { rows: rows.len(), time, dims, metrics })
}

/// Row ids in a segment matching all filters, using inverted indexes for
/// dimension equality/IN and scans otherwise.
fn match_rows(
    t: &RealtimeTable,
    seg: &Segment,
    filters: &[(String, ScalarPredicate)],
) -> Result<Vec<u32>> {
    // Start from the most selective index-answerable filter.
    let mut candidate: Option<Vec<u32>> = None;
    let mut residual: Vec<(&String, &ScalarPredicate)> = Vec::new();
    for (col, pred) in filters {
        if let Some(dim_pos) = t.dim_cols.iter().position(|&c| t.schema.field_at(c).name == *col) {
            let dim = &seg.dims[dim_pos];
            match pred {
                ScalarPredicate::Eq(Value::Varchar(s)) => {
                    let rows = dim
                        .dictionary
                        .iter()
                        .position(|d| d == s)
                        .and_then(|id| dim.inverted.get(&(id as u32)))
                        .cloned()
                        .unwrap_or_default();
                    candidate = Some(intersect(candidate, rows));
                    continue;
                }
                ScalarPredicate::In(values) => {
                    let mut rows: Vec<u32> = Vec::new();
                    for v in values {
                        if let Value::Varchar(s) = v {
                            if let Some(id) = dim.dictionary.iter().position(|d| d == s) {
                                if let Some(r) = dim.inverted.get(&(id as u32)) {
                                    rows.extend_from_slice(r);
                                }
                            }
                        }
                    }
                    rows.sort_unstable();
                    rows.dedup();
                    candidate = Some(intersect(candidate, rows));
                    continue;
                }
                _ => {}
            }
        }
        residual.push((col, pred));
    }
    let base: Vec<u32> = match candidate {
        Some(rows) => rows,
        None => (0..seg.rows as u32).collect(),
    };
    if residual.is_empty() {
        return Ok(base);
    }
    let mut out = Vec::with_capacity(base.len());
    for row in base {
        let mut keep = true;
        for (col, pred) in &residual {
            let v = column_value(t, seg, col, row as usize)?;
            if !pred.matches(&v) {
                keep = false;
                break;
            }
        }
        if keep {
            out.push(row);
        }
    }
    Ok(out)
}

fn intersect(acc: Option<Vec<u32>>, rows: Vec<u32>) -> Vec<u32> {
    match acc {
        None => rows,
        Some(prev) => {
            let set: std::collections::HashSet<u32> = rows.into_iter().collect();
            prev.into_iter().filter(|r| set.contains(r)).collect()
        }
    }
}

/// Read one cell from a segment by column name.
fn column_value(t: &RealtimeTable, seg: &Segment, column: &str, row: usize) -> Result<Value> {
    let idx = t
        .schema
        .index_of(column)
        .ok_or_else(|| PrestoError::Connector(format!("no column '{column}'")))?;
    if idx == t.time_col {
        return Ok(Value::Timestamp(seg.time[row]));
    }
    if let Some(pos) = t.dim_cols.iter().position(|&c| c == idx) {
        let dim = &seg.dims[pos];
        return Ok(Value::Varchar(dim.dictionary[dim.ids[row] as usize].clone()));
    }
    if let Some(pos) = t.metric_cols.iter().position(|&c| c == idx) {
        let raw = seg.metrics[pos][row];
        return Ok(match t.schema.field_at(idx).data_type {
            DataType::Double => Value::Double(raw),
            DataType::Integer => Value::Integer(raw as i32),
            _ => Value::Bigint(raw as i64),
        });
    }
    Err(PrestoError::Internal(format!("column '{column}' not classified")))
}

// --------------------------------------------------------------- connector

use crate::spi::{
    Connector, ConnectorSplit, ScanCapabilities, ScanHooks, ScanRequest, SplitPayload,
};
use presto_common::ids::SplitId;
use presto_common::{Block, Page};

/// Segments per split when the split manager shards a table.
const SEGMENTS_PER_SPLIT: usize = 4;

/// The Presto connector over a [`RealtimeStore`] — shared by the Druid and
/// Pinot connectors, which differ only in store personality.
///
/// With **aggregation pushdown** (§IV.B, Fig 2), each split executes the
/// partial aggregation natively in the store ("only stream aggregated
/// results to Presto"); without it, splits stream raw (filtered, projected)
/// rows the slow way. The virtual cost of store work for the *last* scan is
/// exposed via [`RealtimeConnector::take_last_scan_cost`] so benchmarks can
/// model parallel splits.
#[derive(Clone)]
pub struct RealtimeConnector {
    store: RealtimeStore,
    last_scan_costs: Arc<RwLock<Vec<ScanCost>>>,
}

impl RealtimeConnector {
    /// Wrap a store.
    pub fn new(store: RealtimeStore) -> RealtimeConnector {
        RealtimeConnector { store, last_scan_costs: Arc::new(RwLock::new(Vec::new())) }
    }

    /// The underlying store (for ingest and native-path baselines).
    pub fn store(&self) -> &RealtimeStore {
        &self.store
    }

    /// Total virtual store cost accumulated since the last call.
    pub fn take_last_scan_cost(&self) -> Duration {
        self.take_last_scan_costs().into_iter().map(|c| c.total()).sum()
    }

    /// Per-split virtual costs since the last call. Splits execute on
    /// parallel workers, so a latency model takes the max of the filter
    /// parts and (for unlimited scans) the sum of the stream parts.
    pub fn take_last_scan_costs(&self) -> Vec<ScanCost> {
        std::mem::take(&mut *self.last_scan_costs.write())
    }

    fn add_cost(&self, c: ScanCost) {
        self.last_scan_costs.write().push(c);
    }

    fn request_filters(request: &ScanRequest) -> Result<Vec<(String, ScalarPredicate)>> {
        request
            .predicate
            .iter()
            .map(|p| {
                if !p.target.path.is_empty() {
                    return Err(PrestoError::Connector(
                        "realtime stores have flat columns; nested predicate unsupported".into(),
                    ));
                }
                Ok((p.target.column.clone(), p.predicate.clone()))
            })
            .collect()
    }
}

impl Connector for RealtimeConnector {
    fn name(&self) -> &str {
        self.store.kind()
    }

    fn list_schemas(&self) -> Vec<String> {
        let mut out: Vec<String> = self.store.table_names().into_iter().map(|(s, _)| s).collect();
        out.dedup();
        out
    }

    fn list_tables(&self, schema: &str) -> Result<Vec<String>> {
        Ok(self
            .store
            .table_names()
            .into_iter()
            .filter(|(s, _)| s == schema)
            .map(|(_, t)| t)
            .collect())
    }

    fn table_schema(&self, schema: &str, table: &str) -> Result<Schema> {
        Ok(self.store.table(schema, table)?.schema().clone())
    }

    fn capabilities(&self) -> ScanCapabilities {
        ScanCapabilities {
            projection: true,
            nested_pruning: false,
            predicate: true,
            limit: true,
            aggregation: true,
        }
    }

    fn splits(
        &self,
        schema: &str,
        table: &str,
        _request: &ScanRequest,
    ) -> Result<Vec<ConnectorSplit>> {
        let t = self.store.table(schema, table)?;
        let n = t.segment_count().max(1);
        let mut splits = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + SEGMENTS_PER_SPLIT).min(n);
            splits.push(ConnectorSplit {
                id: SplitId(splits.len() as u64),
                schema: schema.to_string(),
                table: table.to_string(),
                payload: SplitPayload::Segments { start, end },
            });
            start = end;
        }
        Ok(splits)
    }

    fn scan_split(
        &self,
        split: &ConnectorSplit,
        request: &ScanRequest,
        hooks: &ScanHooks,
    ) -> Result<Vec<Page>> {
        let (start, end) = match &split.payload {
            SplitPayload::Segments { start, end } => (*start, *end),
            other => {
                return Err(PrestoError::Connector(format!(
                    "{} connector got foreign split {other:?}",
                    self.name()
                )))
            }
        };
        let table_schema = self.table_schema(&split.schema, &split.table)?;
        let filters = Self::request_filters(request)?;

        match &request.aggregation {
            Some(agg) => {
                // Aggregation pushdown: run the partial aggregation natively
                // per split; stream only aggregated rows (Fig 2 right side).
                let query = NativeQuery {
                    filters,
                    group_by: agg.group_by.iter().map(|g| g.column.clone()).collect(),
                    aggregates: agg
                        .aggregates
                        .iter()
                        .map(|(f, arg)| (*f, arg.as_ref().map(|a| a.column.clone())))
                        .collect(),
                    // limits cannot be applied to partials before the final
                    // aggregation, so they stay in the engine
                    limit: None,
                };
                let result = self.store.execute_native(
                    &split.schema,
                    &split.table,
                    &query,
                    Some((start, end)),
                )?;
                self.add_cost(ScanCost { filter: result.cost, stream: Duration::ZERO });
                hooks.on_page()?;
                let out_schema = request.output_schema(&table_schema)?;
                Ok(vec![rows_to_page(&out_schema, &result.rows)?])
            }
            None => {
                let columns: Vec<String> =
                    request.columns.iter().map(|c| c.column.clone()).collect();
                let (rows, cost) = self.store.scan_segments(
                    &split.schema,
                    &split.table,
                    &columns,
                    &filters,
                    request.limit,
                    Some((start, end)),
                )?;
                self.add_cost(cost);
                hooks.on_page()?;
                let out_schema = request.output_schema(&table_schema)?;
                Ok(vec![rows_to_page(&out_schema, &rows)?])
            }
        }
    }
}

/// Columnarize result rows.
fn rows_to_page(schema: &Schema, rows: &[Vec<Value>]) -> Result<Page> {
    if schema.is_empty() {
        return Ok(Page::zero_column(rows.len()));
    }
    let mut blocks = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
        blocks.push(Block::from_values(&field.data_type, &column)?);
    }
    Page::new(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::Field;

    fn events_schema() -> Schema {
        Schema::new(vec![
            Field::new("ts", DataType::Timestamp),
            Field::new("country", DataType::Varchar),
            Field::new("device", DataType::Varchar),
            Field::new("clicks", DataType::Bigint),
            Field::new("revenue", DataType::Double),
        ])
        .unwrap()
    }

    fn store_with_events(rows: usize, rows_per_segment: usize) -> RealtimeStore {
        let store = RealtimeStore::new("druid", rows_per_segment, RealtimeCostModel::default());
        store.create_table("default", "events", events_schema()).unwrap();
        let countries = ["us", "in", "br", "de"];
        let devices = ["ios", "android"];
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Timestamp(i as i64 * 1000),
                    Value::Varchar(countries[i % 4].into()),
                    Value::Varchar(devices[i % 2].into()),
                    Value::Bigint((i % 10) as i64),
                    Value::Double(i as f64 * 0.5),
                ]
            })
            .collect();
        store.ingest("default", "events", data).unwrap();
        store
    }

    #[test]
    fn ingest_builds_segments_with_dictionaries() {
        let store = store_with_events(1000, 250);
        let t = store.table("default", "events").unwrap();
        assert_eq!(t.segment_count(), 4);
        assert_eq!(t.row_count(), 1000);
    }

    #[test]
    fn native_group_by_aggregation() {
        let store = store_with_events(1000, 250);
        let q = NativeQuery {
            filters: vec![],
            group_by: vec!["country".into()],
            aggregates: vec![
                (AggregateFunction::CountStar, None),
                (AggregateFunction::Sum, Some("clicks".into())),
            ],
            limit: None,
        };
        let result = store.execute_native("default", "events", &q, None).unwrap();
        assert_eq!(result.rows.len(), 4);
        // each country has 250 rows
        for row in &result.rows {
            assert_eq!(row[1], Value::Bigint(250));
        }
        assert_eq!(result.rows_matched, 1000);
        assert!(result.cost > Duration::ZERO);
    }

    #[test]
    fn inverted_index_filter_reduces_matched_rows() {
        let store = store_with_events(1000, 250);
        let q = NativeQuery {
            filters: vec![("country".into(), ScalarPredicate::Eq(Value::Varchar("us".into())))],
            group_by: vec!["device".into()],
            aggregates: vec![(AggregateFunction::CountStar, None)],
            limit: None,
        };
        let result = store.execute_native("default", "events", &q, None).unwrap();
        assert_eq!(result.rows_matched, 250, "index must narrow to the us rows only");
        let total: i64 = result.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(total, 250);
    }

    #[test]
    fn compound_filters_intersect_indexes_and_residuals() {
        let store = store_with_events(1000, 250);
        let q = NativeQuery {
            filters: vec![
                ("country".into(), ScalarPredicate::In(vec!["us".into(), "in".into()])),
                ("device".into(), ScalarPredicate::Eq(Value::Varchar("ios".into()))),
                (
                    "clicks".into(),
                    ScalarPredicate::Range { min: Some(Value::Bigint(5)), max: None },
                ),
            ],
            group_by: vec![],
            aggregates: vec![(AggregateFunction::CountStar, None)],
            limit: None,
        };
        let result = store.execute_native("default", "events", &q, None).unwrap();
        // oracle
        let expected = (0..1000)
            .filter(|i| (i % 4 == 0 || i % 4 == 1) && i % 2 == 0 && i % 10 >= 5)
            .count() as i64;
        assert_eq!(result.rows[0][0], Value::Bigint(expected));
    }

    #[test]
    fn segment_ranges_partition_the_work() {
        let store = store_with_events(1000, 250);
        let q = NativeQuery {
            filters: vec![],
            group_by: vec![],
            aggregates: vec![(AggregateFunction::Sum, Some("clicks".into()))],
            limit: None,
        };
        let whole = store.execute_native("default", "events", &q, None).unwrap();
        let a = store.execute_native("default", "events", &q, Some((0, 2))).unwrap();
        let b = store.execute_native("default", "events", &q, Some((2, 4))).unwrap();
        let sum = |r: &NativeResult| r.rows[0][0].as_i64().unwrap();
        assert_eq!(sum(&whole), sum(&a) + sum(&b));
    }

    #[test]
    fn raw_scan_streams_filtered_rows_with_cost() {
        let store = store_with_events(1000, 250);
        let (rows, cost) = store
            .scan_segments(
                "default",
                "events",
                &["country".into(), "revenue".into()],
                &[("device".into(), ScalarPredicate::Eq(Value::Varchar("ios".into())))],
                None,
                None,
            )
            .unwrap();
        assert_eq!(rows.len(), 500);
        assert!(cost.total() > Duration::ZERO);
        // limit stops the stream early
        let (limited, _) = store
            .scan_segments("default", "events", &["country".into()], &[], Some(10), None)
            .unwrap();
        assert_eq!(limited.len(), 10);
    }

    #[test]
    fn scan_is_costlier_than_native_for_aggregations() {
        // The §IV.B argument: streaming raw rows out costs far more than
        // shipping the aggregation to the store.
        let store = store_with_events(10_000, 1000);
        let q = NativeQuery {
            filters: vec![],
            group_by: vec!["country".into()],
            aggregates: vec![(AggregateFunction::Sum, Some("revenue".into()))],
            limit: None,
        };
        let native = store.execute_native("default", "events", &q, None).unwrap();
        let (_, scan_cost) = store
            .scan_segments(
                "default",
                "events",
                &["country".into(), "revenue".into()],
                &[],
                None,
                None,
            )
            .unwrap();
        assert!(
            scan_cost.total() > native.cost * 3,
            "raw streaming ({scan_cost:?}) should dwarf native ({:?})",
            native.cost
        );
    }

    #[test]
    fn rejects_bad_schemas_and_unknown_tables() {
        let store = RealtimeStore::new("pinot", 100, RealtimeCostModel::default());
        let no_time = Schema::new(vec![Field::new("d", DataType::Varchar)]).unwrap();
        assert!(store.create_table("s", "t", no_time).is_err());
        let nested = Schema::new(vec![
            Field::new("ts", DataType::Timestamp),
            Field::new("x", DataType::array(DataType::Bigint)),
        ])
        .unwrap();
        assert!(store.create_table("s", "t", nested).is_err());
        assert!(store.table("s", "missing").is_err());
    }
}
