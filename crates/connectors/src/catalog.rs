//! Catalog registry: `catalog.schema.table` resolution (§IV: "Presto
//! connector introduces catalog.schema.table for each table. catalog marks
//! connector name.").

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use presto_common::{PrestoError, Result, Schema};

use crate::spi::Connector;

/// Thread-safe registry of catalogs. Cloning shares the registry.
#[derive(Clone, Default)]
pub struct CatalogRegistry {
    catalogs: Arc<RwLock<BTreeMap<String, Arc<dyn Connector>>>>,
}

impl CatalogRegistry {
    /// Empty registry.
    pub fn new() -> CatalogRegistry {
        CatalogRegistry::default()
    }

    /// Register a connector under a catalog name (e.g. `hive`, `mysql`).
    pub fn register(&self, catalog: impl Into<String>, connector: Arc<dyn Connector>) {
        self.catalogs.write().insert(catalog.into(), connector);
    }

    /// Look up a catalog.
    pub fn get(&self, catalog: &str) -> Result<Arc<dyn Connector>> {
        self.catalogs
            .read()
            .get(catalog)
            .cloned()
            .ok_or_else(|| PrestoError::Analysis(format!("unknown catalog '{catalog}'")))
    }

    /// All catalog names.
    pub fn catalog_names(&self) -> Vec<String> {
        self.catalogs.read().keys().cloned().collect()
    }

    /// Resolve a qualified table's schema.
    pub fn table_schema(&self, catalog: &str, schema: &str, table: &str) -> Result<Schema> {
        self.get(catalog)?.table_schema(schema, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryConnector;

    #[test]
    fn register_and_resolve() {
        let registry = CatalogRegistry::new();
        assert!(registry.get("memory").is_err());
        registry.register("memory", Arc::new(MemoryConnector::new()));
        assert!(registry.get("memory").is_ok());
        assert_eq!(registry.catalog_names(), vec!["memory".to_string()]);
        // unknown table errors propagate
        assert!(registry.table_schema("memory", "default", "nope").is_err());
    }
}
