#![warn(missing_docs)]

//! The connector framework (§IV) and its implementations.
//!
//! "Presto has a connector interface and implementations to run SQL queries
//! on heterogeneous storage systems." The SPI ([`spi`]) mirrors the paper's
//! pieces: connector metadata (schemas/tables/columns), the split manager
//! (how a table divides into parallel units), splits, and the record-set
//! provider (how a split's data streams into engine pages) — plus the
//! pushdown capability negotiation that §IV.A/§IV.B are about: projection,
//! predicate, limit, and aggregation pushdown.
//!
//! Connectors implemented (every system named by the paper's experiments):
//!
//! | module | models | pushdowns |
//! |--------|--------|-----------|
//! | [`hive`] | HDFS + Parquet warehouse | projection (incl. nested pruning), predicate (stats/dictionary/lazy via the new reader), limit, partition pruning |
//! | [`mysql`] | OLTP row store (also backs the gateway's routing table, §VIII) | projection, predicate, limit |
//! | [`druid`] / [`pinot`] | real-time OLAP stores with inverted indexes + rollup (§IV.B, Fig 16) | projection, predicate, limit, **aggregation** |
//! | [`memory`] | in-memory tables for tests/examples | projection, predicate, limit |
//! | [`tpch`] | TPC-H LINEITEM generator (Figs 18–20 workloads) | projection |

pub mod catalog;
pub mod druid;
pub mod hive;
pub mod memory;
pub mod mysql;
pub mod pinot;
pub mod realtime;
pub mod spi;
pub mod system;
pub mod tpch;

pub use catalog::CatalogRegistry;
pub use spi::{
    AggregationPushdown, ColumnPath, Connector, ConnectorSplit, PushdownPredicate,
    ScanCapabilities, ScanHooks, ScanRequest, SplitPayload,
};
pub use system::SystemConnector;
