//! In-memory connector: the simplest record-set provider, used by tests,
//! examples, and as the scan-side workhorse for engine unit tests.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use presto_common::ids::SplitId;
use presto_common::{Page, PrestoError, Result, Schema, Value};

use crate::spi::{
    ColumnPath, Connector, ConnectorSplit, PushdownPredicate, ScanCapabilities, ScanHooks,
    ScanRequest, SplitPayload,
};

struct MemoryTable {
    schema: Schema,
    pages: Vec<Page>,
}

type MemoryTables = BTreeMap<(String, String), Arc<MemoryTable>>;

/// In-memory tables organized as `schema.table`. Cloning shares the data.
#[derive(Clone, Default)]
pub struct MemoryConnector {
    tables: Arc<RwLock<MemoryTables>>,
}

impl MemoryConnector {
    /// Empty connector.
    pub fn new() -> MemoryConnector {
        MemoryConnector::default()
    }

    /// Create (or replace) a table with data.
    pub fn create_table(
        &self,
        schema_name: &str,
        table: &str,
        schema: Schema,
        pages: Vec<Page>,
    ) -> Result<()> {
        for p in &pages {
            if p.column_count() != schema.len() {
                return Err(PrestoError::Connector(format!(
                    "page width {} does not match schema width {}",
                    p.column_count(),
                    schema.len()
                )));
            }
        }
        self.tables.write().insert(
            (schema_name.to_string(), table.to_string()),
            Arc::new(MemoryTable { schema, pages }),
        );
        Ok(())
    }

    fn table(&self, schema: &str, table: &str) -> Result<Arc<MemoryTable>> {
        self.tables.read().get(&(schema.to_string(), table.to_string())).cloned().ok_or_else(|| {
            PrestoError::Analysis(format!("table memory.{schema}.{table} does not exist"))
        })
    }
}

impl Connector for MemoryConnector {
    fn name(&self) -> &str {
        "memory"
    }

    fn list_schemas(&self) -> Vec<String> {
        let mut out: Vec<String> = self.tables.read().keys().map(|(s, _)| s.clone()).collect();
        out.dedup();
        out
    }

    fn list_tables(&self, schema: &str) -> Result<Vec<String>> {
        Ok(self.tables.read().keys().filter(|(s, _)| s == schema).map(|(_, t)| t.clone()).collect())
    }

    fn table_schema(&self, schema: &str, table: &str) -> Result<Schema> {
        Ok(self.table(schema, table)?.schema.clone())
    }

    fn capabilities(&self) -> ScanCapabilities {
        ScanCapabilities {
            projection: true,
            nested_pruning: true,
            predicate: true,
            limit: true,
            aggregation: false,
        }
    }

    fn splits(
        &self,
        schema: &str,
        table: &str,
        _request: &ScanRequest,
    ) -> Result<Vec<ConnectorSplit>> {
        let t = self.table(schema, table)?;
        Ok((0..t.pages.len().max(1))
            .map(|chunk| ConnectorSplit {
                id: SplitId(chunk as u64),
                schema: schema.to_string(),
                table: table.to_string(),
                payload: SplitPayload::Memory { chunk },
            })
            .collect())
    }

    fn scan_split(
        &self,
        split: &ConnectorSplit,
        request: &ScanRequest,
        hooks: &ScanHooks,
    ) -> Result<Vec<Page>> {
        let t = self.table(&split.schema, &split.table)?;
        let chunk = match &split.payload {
            SplitPayload::Memory { chunk } => *chunk,
            other => {
                return Err(PrestoError::Connector(format!(
                    "memory connector got foreign split {other:?}"
                )))
            }
        };
        let Some(page) = t.pages.get(chunk) else {
            return Ok(Vec::new());
        };
        hooks.on_page()?;
        Ok(vec![apply_request(&t.schema, page, request)?])
    }
}

/// Apply predicate + projection + limit to a full-schema page — the shared
/// scan path for row-oriented connectors (memory, mysql).
pub(crate) fn apply_request(schema: &Schema, page: &Page, request: &ScanRequest) -> Result<Page> {
    if request.aggregation.is_some() {
        return Err(PrestoError::Connector(
            "this connector does not support aggregation pushdown".into(),
        ));
    }
    // predicate
    let mut page = if request.predicate.is_empty() {
        page.clone()
    } else {
        let mask = predicate_mask(schema, page, &request.predicate)?;
        page.filter(&mask)
    };
    // limit (early-out hint)
    if let Some(limit) = request.limit {
        if page.positions() > limit {
            page = page.slice(0, limit);
        }
    }
    // projection
    let mut blocks = Vec::with_capacity(request.columns.len());
    for col in &request.columns {
        blocks.push(project_column(schema, &page, col)?);
    }
    if blocks.is_empty() {
        Ok(Page::zero_column(page.positions()))
    } else {
        Page::new(blocks)
    }
}

/// Evaluate conjuncts row-by-row (row-oriented stores pay a per-row cost,
/// which is exactly why pushing work *into* columnar connectors matters).
pub(crate) fn predicate_mask(
    schema: &Schema,
    page: &Page,
    conjuncts: &[PushdownPredicate],
) -> Result<Vec<bool>> {
    let mut mask = vec![true; page.positions()];
    for conjunct in conjuncts {
        let idx = schema.index_of(&conjunct.target.column).ok_or_else(|| {
            PrestoError::Connector(format!("no column '{}'", conjunct.target.column))
        })?;
        let column_type = schema.field_at(idx).data_type.clone();
        let block = page.block(idx);
        for (i, keep) in mask.iter_mut().enumerate() {
            if *keep {
                let v = extract_path(&block.value(i), &column_type, &conjunct.target.path);
                *keep = conjunct.predicate.matches(&v);
            }
        }
    }
    Ok(mask)
}

/// Build one projected block, navigating nested paths value-by-value.
pub(crate) fn project_column(
    schema: &Schema,
    page: &Page,
    col: &ColumnPath,
) -> Result<presto_common::Block> {
    let idx = schema
        .index_of(&col.column)
        .ok_or_else(|| PrestoError::Connector(format!("no column '{}'", col.column)))?;
    let block = page.block(idx);
    if col.path.is_empty() {
        return Ok(block.clone());
    }
    let column_type = schema.field_at(idx).data_type.clone();
    let out_type = col.resolve_type(schema)?;
    let values: Vec<Value> = (0..page.positions())
        .map(|i| extract_path(&block.value(i), &column_type, &col.path))
        .collect();
    presto_common::Block::from_values(&out_type, &values)
}

/// Navigate a struct value along field names; `dt` translates names to the
/// positional layout of `Value::Row`.
fn extract_path(v: &Value, dt: &presto_common::DataType, path: &[String]) -> Value {
    if path.is_empty() {
        return v.clone();
    }
    match (v, dt) {
        (Value::Null, _) => Value::Null,
        (Value::Row(items), presto_common::DataType::Row(fields)) => {
            match fields.iter().position(|f| f.name == path[0]) {
                Some(i) => extract_path(&items[i], &fields[i].data_type, &path[1..]),
                None => Value::Null,
            }
        }
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Block, DataType, Field};
    use presto_parquet::ScalarPredicate;

    fn setup() -> MemoryConnector {
        let connector = MemoryConnector::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Bigint),
            Field::new("city", DataType::Varchar),
        ])
        .unwrap();
        let pages = vec![
            Page::new(vec![Block::bigint(vec![1, 2, 3]), Block::varchar(&["sf", "nyc", "sf"])])
                .unwrap(),
            Page::new(vec![Block::bigint(vec![4]), Block::varchar(&["la"])]).unwrap(),
        ];
        connector.create_table("default", "t", schema, pages).unwrap();
        connector
    }

    #[test]
    fn metadata_and_splits() {
        let c = setup();
        assert_eq!(c.list_schemas(), vec!["default"]);
        assert_eq!(c.list_tables("default").unwrap(), vec!["t"]);
        assert_eq!(c.table_schema("default", "t").unwrap().len(), 2);
        let splits = c.splits("default", "t", &ScanRequest::default()).unwrap();
        assert_eq!(splits.len(), 2);
    }

    #[test]
    fn scan_with_predicate_projection_limit() {
        let c = setup();
        let request = ScanRequest {
            columns: vec![ColumnPath::whole("id")],
            predicate: vec![PushdownPredicate {
                target: ColumnPath::whole("city"),
                predicate: ScalarPredicate::Eq(Value::Varchar("sf".into())),
            }],
            limit: Some(1),
            aggregation: None,
        };
        let splits = c.splits("default", "t", &request).unwrap();
        let pages = c.scan_split(&splits[0], &request, &ScanHooks::none()).unwrap();
        assert_eq!(pages[0].positions(), 1); // limit applied
        assert_eq!(pages[0].column_count(), 1); // projection applied
        assert_eq!(pages[0].row(0), vec![Value::Bigint(1)]);
    }

    #[test]
    fn create_table_validates_width() {
        let c = MemoryConnector::new();
        let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
        let bad = Page::new(vec![Block::bigint(vec![1]), Block::bigint(vec![2])]).unwrap();
        assert!(c.create_table("s", "t", schema, vec![bad]).is_err());
    }
}
