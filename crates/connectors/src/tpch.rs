//! TPC-H data generator and connector.
//!
//! Figures 18–20 benchmark the Parquet writers on "All Lineitem columns" —
//! this module generates a faithful LINEITEM table (16 columns, realistic
//! value distributions, correlated dates) plus the narrower synthetic column
//! workloads the figures name (bigint sequential/random, small/large
//! varchar, dictionary varchar, maps, arrays).

use presto_common::ids::SplitId;
use presto_common::{Block, DataType, Field, Page, PrestoError, Result, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spi::{
    Connector, ConnectorSplit, ScanCapabilities, ScanHooks, ScanRequest, SplitPayload,
};

/// The LINEITEM schema (TPC-H column order).
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Field::new("orderkey", DataType::Bigint),
        Field::new("partkey", DataType::Bigint),
        Field::new("suppkey", DataType::Bigint),
        Field::new("linenumber", DataType::Integer),
        Field::new("quantity", DataType::Double),
        Field::new("extendedprice", DataType::Double),
        Field::new("discount", DataType::Double),
        Field::new("tax", DataType::Double),
        Field::new("returnflag", DataType::Varchar),
        Field::new("linestatus", DataType::Varchar),
        Field::new("shipdate", DataType::Date),
        Field::new("commitdate", DataType::Date),
        Field::new("receiptdate", DataType::Date),
        Field::new("shipinstruct", DataType::Varchar),
        Field::new("shipmode", DataType::Varchar),
        Field::new("comment", DataType::Varchar),
    ])
    .unwrap()
}

const RETURN_FLAGS: [&str; 3] = ["R", "A", "N"];
const LINE_STATUS: [&str; 2] = ["O", "F"];
const SHIP_INSTRUCT: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const SHIP_MODE: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const COMMENT_WORDS: [&str; 12] = [
    "carefully",
    "quickly",
    "furiously",
    "final",
    "pending",
    "ironic",
    "express",
    "deposits",
    "requests",
    "accounts",
    "packages",
    "theodolites",
];

/// Generate `rows` LINEITEM rows starting at `start_row`, as one page.
pub fn generate_lineitem(start_row: usize, rows: usize, seed: u64) -> Result<Page> {
    let mut rng = StdRng::seed_from_u64(seed ^ start_row as u64);
    let mut orderkey = Vec::with_capacity(rows);
    let mut partkey = Vec::with_capacity(rows);
    let mut suppkey = Vec::with_capacity(rows);
    let mut linenumber = Vec::with_capacity(rows);
    let mut quantity = Vec::with_capacity(rows);
    let mut extendedprice = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut tax = Vec::with_capacity(rows);
    let mut returnflag = Vec::with_capacity(rows);
    let mut linestatus = Vec::with_capacity(rows);
    let mut shipdate = Vec::with_capacity(rows);
    let mut commitdate = Vec::with_capacity(rows);
    let mut receiptdate = Vec::with_capacity(rows);
    let mut shipinstruct = Vec::with_capacity(rows);
    let mut shipmode = Vec::with_capacity(rows);
    let mut comment: Vec<String> = Vec::with_capacity(rows);

    for i in 0..rows {
        let row = start_row + i;
        orderkey.push((row / 4) as i64 + 1);
        partkey.push(rng.gen_range(1..200_000i64));
        suppkey.push(rng.gen_range(1..10_000i64));
        linenumber.push((row % 4) as i32 + 1);
        let q = rng.gen_range(1..=50) as f64;
        quantity.push(q);
        extendedprice.push((q * rng.gen_range(900.0..100_000.0) / 50.0 * 100.0).round() / 100.0);
        discount.push(rng.gen_range(0..=10) as f64 / 100.0);
        tax.push(rng.gen_range(0..=8) as f64 / 100.0);
        returnflag.push(RETURN_FLAGS[rng.gen_range(0..3)]);
        linestatus.push(LINE_STATUS[rng.gen_range(0..2)]);
        let ship = rng.gen_range(8766..11322); // 1994..2001 in days-since-epoch
        shipdate.push(ship);
        commitdate.push(ship + rng.gen_range(-30..60));
        receiptdate.push(ship + rng.gen_range(1..30));
        shipinstruct.push(SHIP_INSTRUCT[rng.gen_range(0..4)]);
        shipmode.push(SHIP_MODE[rng.gen_range(0..7)]);
        let words = rng.gen_range(3..9);
        let mut c = String::new();
        for w in 0..words {
            if w > 0 {
                c.push(' ');
            }
            c.push_str(COMMENT_WORDS[rng.gen_range(0..12)]);
        }
        comment.push(c);
    }

    Page::new(vec![
        Block::bigint(orderkey),
        Block::bigint(partkey),
        Block::bigint(suppkey),
        Block::integer(linenumber),
        Block::double(quantity),
        Block::double(extendedprice),
        Block::double(discount),
        Block::double(tax),
        Block::varchar(&returnflag),
        Block::varchar(&linestatus),
        Block::Date { values: shipdate, nulls: None },
        Block::Date { values: commitdate, nulls: None },
        Block::Date { values: receiptdate, nulls: None },
        Block::varchar(&shipinstruct),
        Block::varchar(&shipmode),
        Block::varchar(&comment),
    ])
}

/// Rows per generated split.
const ROWS_PER_SPLIT: usize = 10_000;

/// A connector serving generated TPC-H data: `tpch.<schema>.lineitem`, where
/// the schema names a scale (`tiny` = 20k rows, `small` = 100k, `sf1`-ish
/// sizes are out of scope for a laptop reproduction).
pub struct TpchConnector {
    seed: u64,
}

impl Default for TpchConnector {
    fn default() -> Self {
        TpchConnector { seed: 42 }
    }
}

impl TpchConnector {
    /// Connector with the default seed.
    pub fn new() -> TpchConnector {
        TpchConnector::default()
    }

    fn scale_rows(schema: &str) -> Result<usize> {
        match schema {
            "tiny" => Ok(20_000),
            "small" => Ok(100_000),
            other => Err(PrestoError::Analysis(format!("unknown tpch schema '{other}'"))),
        }
    }
}

impl Connector for TpchConnector {
    fn name(&self) -> &str {
        "tpch"
    }

    fn list_schemas(&self) -> Vec<String> {
        vec!["tiny".into(), "small".into()]
    }

    fn list_tables(&self, _schema: &str) -> Result<Vec<String>> {
        Ok(vec!["lineitem".into()])
    }

    fn table_schema(&self, schema: &str, table: &str) -> Result<Schema> {
        Self::scale_rows(schema)?;
        if table != "lineitem" {
            return Err(PrestoError::Analysis(format!("unknown tpch table '{table}'")));
        }
        Ok(lineitem_schema())
    }

    fn capabilities(&self) -> ScanCapabilities {
        ScanCapabilities {
            projection: true,
            nested_pruning: false,
            predicate: true,
            limit: true,
            aggregation: false,
        }
    }

    fn splits(
        &self,
        schema: &str,
        table: &str,
        _request: &ScanRequest,
    ) -> Result<Vec<ConnectorSplit>> {
        let rows = Self::scale_rows(schema)?;
        if table != "lineitem" {
            return Err(PrestoError::Analysis(format!("unknown tpch table '{table}'")));
        }
        let mut splits = Vec::new();
        let mut start = 0;
        while start < rows {
            let count = ROWS_PER_SPLIT.min(rows - start);
            splits.push(ConnectorSplit {
                id: SplitId(splits.len() as u64),
                schema: schema.to_string(),
                table: table.to_string(),
                payload: SplitPayload::Tpch { start, count },
            });
            start += count;
        }
        Ok(splits)
    }

    fn scan_split(
        &self,
        split: &ConnectorSplit,
        request: &ScanRequest,
        hooks: &ScanHooks,
    ) -> Result<Vec<Page>> {
        let (start, count) = match &split.payload {
            SplitPayload::Tpch { start, count } => (*start, *count),
            other => {
                return Err(PrestoError::Connector(format!(
                    "tpch connector got foreign split {other:?}"
                )))
            }
        };
        hooks.on_page()?;
        let page = generate_lineitem(start, count, self.seed)?;
        let schema = lineitem_schema();
        Ok(vec![crate::memory::apply_request(&schema, &page, request)?])
    }
}

// ------------------------------------------------- writer bench workloads

/// The column workloads of Figs 18–20, by the paper's series names.
pub fn writer_workload(name: &str, rows: usize, seed: u64) -> Result<(Schema, Page)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema_of = |dt: DataType| Schema::new(vec![Field::new("c", dt)]).unwrap();
    match name {
        "all_lineitem_columns" => {
            let page = generate_lineitem(0, rows, seed)?;
            Ok((lineitem_schema(), page))
        }
        "bigint_sequential" => {
            let page = Page::new(vec![Block::bigint((0..rows as i64).collect())])?;
            Ok((schema_of(DataType::Bigint), page))
        }
        "bigint_random" => {
            let values: Vec<i64> = (0..rows).map(|_| rng.gen()).collect();
            Ok((schema_of(DataType::Bigint), Page::new(vec![Block::bigint(values)])?))
        }
        "small_varchar" => {
            let values: Vec<String> =
                (0..rows).map(|_| format!("{:06x}", rng.gen::<u32>() & 0xFFFFFF)).collect();
            Ok((schema_of(DataType::Varchar), Page::new(vec![Block::varchar(&values)])?))
        }
        "large_varchar" => {
            let values: Vec<String> = (0..rows)
                .map(|_| {
                    (0..16)
                        .map(|_| COMMENT_WORDS[rng.gen_range(0..12)])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Ok((schema_of(DataType::Varchar), Page::new(vec![Block::varchar(&values)])?))
        }
        "varchar_dictionary" => {
            let values: Vec<&str> = (0..rows).map(|_| SHIP_MODE[rng.gen_range(0..7)]).collect();
            Ok((schema_of(DataType::Varchar), Page::new(vec![Block::varchar(&values)])?))
        }
        "map_varchar_to_double" => map_workload(rows, &mut rng, 4, false),
        "large_map_varchar_to_double" => map_workload(rows, &mut rng, 20, false),
        "map_int_to_double" => map_workload(rows, &mut rng, 4, true),
        "large_map_int_to_double" => map_workload(rows, &mut rng, 20, true),
        "array_varchar" => {
            let dt = DataType::array(DataType::Varchar);
            let values: Vec<Value> = (0..rows)
                .map(|_| {
                    let n = rng.gen_range(0..6);
                    Value::Array(
                        (0..n)
                            .map(|_| Value::Varchar(COMMENT_WORDS[rng.gen_range(0..12)].into()))
                            .collect(),
                    )
                })
                .collect();
            let block = Block::from_values(&dt, &values)?;
            Ok((schema_of(dt), Page::new(vec![block])?))
        }
        other => Err(PrestoError::Analysis(format!("unknown writer workload '{other}'"))),
    }
}

/// Every workload name of Figs 18–20, in the figures' order.
pub fn writer_workload_names() -> &'static [&'static str] {
    &[
        "all_lineitem_columns",
        "bigint_sequential",
        "bigint_random",
        "small_varchar",
        "large_varchar",
        "varchar_dictionary",
        "map_varchar_to_double",
        "large_map_varchar_to_double",
        "map_int_to_double",
        "large_map_int_to_double",
        "array_varchar",
    ]
}

fn map_workload(
    rows: usize,
    rng: &mut StdRng,
    entries: usize,
    int_keys: bool,
) -> Result<(Schema, Page)> {
    let key_type = if int_keys { DataType::Bigint } else { DataType::Varchar };
    let dt = DataType::map(key_type, DataType::Double);
    let values: Vec<Value> = (0..rows)
        .map(|_| {
            Value::Map(
                (0..entries)
                    .map(|k| {
                        let key = if int_keys {
                            Value::Bigint(k as i64)
                        } else {
                            Value::Varchar(format!("feature_{k}"))
                        };
                        (key, Value::Double(rng.gen()))
                    })
                    .collect(),
            )
        })
        .collect();
    let block = Block::from_values(&dt, &values)?;
    Ok((Schema::new(vec![Field::new("c", dt)]).unwrap(), Page::new(vec![block])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spi::{ColumnPath, PushdownPredicate};
    use presto_parquet::ScalarPredicate;

    #[test]
    fn lineitem_generation_is_deterministic_and_shaped() {
        let a = generate_lineitem(0, 100, 42).unwrap();
        let b = generate_lineitem(0, 100, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.column_count(), 16);
        // orderkey groups of 4, linenumber cycles 1..4
        assert_eq!(a.row(0)[0], Value::Bigint(1));
        assert_eq!(a.row(5)[3], Value::Integer(2));
        // receiptdate after shipdate
        for i in 0..100 {
            let row = a.row(i);
            let ship = row[10].as_i64().unwrap();
            let receipt = row[12].as_i64().unwrap();
            assert!(receipt > ship);
        }
    }

    #[test]
    fn connector_scans_with_pushdown() {
        let c = TpchConnector::new();
        assert_eq!(c.table_schema("tiny", "lineitem").unwrap().len(), 16);
        let request = ScanRequest {
            columns: vec![ColumnPath::whole("returnflag")],
            predicate: vec![PushdownPredicate {
                target: ColumnPath::whole("returnflag"),
                predicate: ScalarPredicate::Eq(Value::Varchar("R".into())),
            }],
            limit: Some(50),
            aggregation: None,
        };
        let splits = c.splits("tiny", "lineitem", &request).unwrap();
        assert_eq!(splits.len(), 2);
        let pages = c.scan_split(&splits[0], &request, &ScanHooks::none()).unwrap();
        assert_eq!(pages[0].positions(), 50);
        assert!(pages[0].rows().iter().all(|r| r[0] == Value::Varchar("R".into())));
        assert!(c.table_schema("huge", "lineitem").is_err());
        assert!(c.table_schema("tiny", "orders").is_err());
    }

    #[test]
    fn every_writer_workload_generates() {
        for name in writer_workload_names() {
            let (schema, page) = writer_workload(name, 500, 7).unwrap();
            assert_eq!(page.positions(), 500, "workload {name}");
            assert_eq!(page.column_count(), schema.len());
        }
        assert!(writer_workload("bogus", 10, 0).is_err());
    }
}
