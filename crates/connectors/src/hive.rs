//! The Hive connector: partitioned Parquet-format tables on a (simulated)
//! distributed filesystem — the batch-analytics backbone of §II's
//! deployments and the substrate of the Fig 17 reader experiment.
//!
//! Pieces wired together here:
//! - an in-memory **metastore** (tables, partitions, sealed/open flags) —
//!   "Schemas are managed as a service outside of Presto" (§V.A);
//! - **partition pruning** in the split manager (predicate on the partition
//!   column prunes directories before any listFiles);
//! - the §VII.A **file-list cache** for sealed partitions;
//! - the §VII.B **file-handle cache** (footer caching lives with the reader);
//! - both **reader generations**: the connector can run with the legacy
//!   reader (`use_legacy_reader`) or the new reader with per-feature
//!   toggles — the Fig 17 ablation switchboard.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use presto_cache::{FileHandleCache, FileListCache};
use presto_common::ids::SplitId;
use presto_common::metrics::{names, CounterSet};
use presto_common::{Block, Page, PrestoError, Result, Schema, Value};
use presto_parquet::reader::FsSource;
use presto_parquet::reader_new::{self, ProjectedColumn, ReadOptions};
use presto_parquet::reader_old;
use presto_parquet::{ColumnPredicate, FilePredicate, FileWriter, WriterMode, WriterProperties};
use presto_storage::FileSystem;

use crate::memory::{predicate_mask, project_column};
use crate::spi::{
    ColumnPath, Connector, ConnectorSplit, PushdownPredicate, ScanCapabilities, ScanHooks,
    ScanRequest, SplitPayload,
};

/// A partition entry in the metastore.
#[derive(Debug, Clone)]
pub struct HivePartition {
    /// Partition column value (e.g. `2017-03-02`).
    pub value: String,
    /// Directory holding the partition's files.
    pub path: String,
    /// Sealed partitions are immutable and cacheable (§VII.A); open
    /// partitions receive near-real-time ingestion and bypass the cache.
    pub sealed: bool,
}

#[derive(Debug, Clone)]
struct HiveTableDef {
    /// Schema of the *files* (partition column not included).
    file_schema: Schema,
    location: String,
    partition_column: Option<String>,
    partitions: Vec<HivePartition>,
}

impl HiveTableDef {
    /// Table schema as queries see it: file columns + partition column.
    fn table_schema(&self) -> Result<Schema> {
        match &self.partition_column {
            None => Ok(self.file_schema.clone()),
            Some(p) => {
                let mut fields = self.file_schema.fields().to_vec();
                fields.push(presto_common::Field::new(p.clone(), presto_common::DataType::Varchar));
                Schema::new(fields)
            }
        }
    }
}

/// Reader configuration — the Fig 17 switchboard.
#[derive(Debug, Clone)]
pub struct HiveReaderConfig {
    /// Use the legacy reader end to end.
    pub use_legacy_reader: bool,
    /// New reader: stats-based row-group skipping.
    pub stats_pushdown: bool,
    /// New reader: dictionary-based row-group skipping.
    pub dictionary_pushdown: bool,
    /// New reader: lazy projection decoding.
    pub lazy_reads: bool,
    /// New reader: vectorized decoding.
    pub vectorized: bool,
}

impl Default for HiveReaderConfig {
    fn default() -> Self {
        HiveReaderConfig {
            use_legacy_reader: false,
            stats_pushdown: true,
            dictionary_pushdown: true,
            lazy_reads: true,
            vectorized: true,
        }
    }
}

/// The Hive connector. Cloning shares metastore, caches and filesystem.
#[derive(Clone)]
pub struct HiveConnector {
    fs: Arc<dyn FileSystem>,
    tables: Arc<RwLock<BTreeMap<(String, String), HiveTableDef>>>,
    file_lists: FileListCache,
    handles: FileHandleCache,
    reader_config: Arc<RwLock<HiveReaderConfig>>,
    metrics: CounterSet,
}

impl HiveConnector {
    /// Connector over a filesystem, with caches reporting to `metrics`.
    pub fn new(fs: Arc<dyn FileSystem>, metrics: CounterSet) -> HiveConnector {
        HiveConnector {
            file_lists: FileListCache::new(fs.clone(), metrics.clone()),
            handles: FileHandleCache::new(fs.clone(), 4096, metrics.clone()),
            fs,
            tables: Arc::new(RwLock::new(BTreeMap::new())),
            reader_config: Arc::new(RwLock::new(HiveReaderConfig::default())),
            metrics,
        }
    }

    /// The shared counters (cache + reader activity).
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Swap the reader configuration (ablation experiments).
    pub fn set_reader_config(&self, config: HiveReaderConfig) {
        *self.reader_config.write() = config;
    }

    /// Current reader configuration.
    pub fn reader_config(&self) -> HiveReaderConfig {
        self.reader_config.read().clone()
    }

    /// Register a table. `file_schema` is the schema of the files (without
    /// the partition column).
    pub fn register_table(
        &self,
        schema_name: &str,
        table: &str,
        file_schema: Schema,
        location: &str,
        partition_column: Option<&str>,
    ) {
        self.tables.write().insert(
            (schema_name.into(), table.into()),
            HiveTableDef {
                file_schema,
                location: location.to_string(),
                partition_column: partition_column.map(str::to_string),
                partitions: Vec::new(),
            },
        );
    }

    /// Add a partition (directory `location/<col>=<value>`).
    pub fn add_partition(
        &self,
        schema_name: &str,
        table: &str,
        value: &str,
        sealed: bool,
    ) -> Result<String> {
        let mut tables = self.tables.write();
        let def = tables
            .get_mut(&(schema_name.to_string(), table.to_string()))
            .ok_or_else(|| PrestoError::Connector(format!("no table {schema_name}.{table}")))?;
        let col = def
            .partition_column
            .clone()
            .ok_or_else(|| PrestoError::Connector(format!("table {table} is not partitioned")))?;
        let path = format!("{}/{col}={value}", def.location);
        def.partitions.push(HivePartition { value: value.to_string(), path: path.clone(), sealed });
        Ok(path)
    }

    /// Seal an open partition (ingestion finished); its file list becomes
    /// cacheable.
    pub fn seal_partition(&self, schema_name: &str, table: &str, value: &str) -> Result<()> {
        let mut tables = self.tables.write();
        let def = tables
            .get_mut(&(schema_name.to_string(), table.to_string()))
            .ok_or_else(|| PrestoError::Connector(format!("no table {schema_name}.{table}")))?;
        for p in &mut def.partitions {
            if p.value == value {
                p.sealed = true;
                return Ok(());
            }
        }
        Err(PrestoError::Connector(format!("no partition {value}")))
    }

    /// Write pages as one file into a partition (or the table root for
    /// unpartitioned tables) and return its path.
    #[allow(clippy::too_many_arguments)]
    pub fn write_data_file(
        &self,
        schema_name: &str,
        table: &str,
        partition_value: Option<&str>,
        file_name: &str,
        pages: &[Page],
        mode: WriterMode,
        props: WriterProperties,
    ) -> Result<String> {
        let def = self
            .tables
            .read()
            .get(&(schema_name.to_string(), table.to_string()))
            .cloned()
            .ok_or_else(|| PrestoError::Connector(format!("no table {schema_name}.{table}")))?;
        let dir = match (partition_value, &def.partition_column) {
            (Some(v), Some(col)) => format!("{}/{col}={v}", def.location),
            (None, None) => def.location.clone(),
            _ => {
                return Err(PrestoError::Connector(
                    "partition value must match table partitioning".into(),
                ))
            }
        };
        let mut writer = FileWriter::new(def.file_schema.clone(), props, mode)?;
        for page in pages {
            writer.write_page(page)?;
        }
        let path = format!("{dir}/{file_name}");
        self.fs.write(&path, &writer.finish()?)?;
        // the directory's cached listing (sealed partitions and the
        // unpartitioned table root are cacheable) no longer matches disk
        self.file_lists.invalidate(&dir);
        Ok(path)
    }

    fn table_def(&self, schema: &str, table: &str) -> Result<HiveTableDef> {
        self.tables.read().get(&(schema.to_string(), table.to_string())).cloned().ok_or_else(|| {
            PrestoError::Analysis(format!("table hive.{schema}.{table} does not exist"))
        })
    }
}

impl Connector for HiveConnector {
    fn name(&self) -> &str {
        "hive"
    }

    fn list_schemas(&self) -> Vec<String> {
        let mut out: Vec<String> = self.tables.read().keys().map(|(s, _)| s.clone()).collect();
        out.dedup();
        out
    }

    fn list_tables(&self, schema: &str) -> Result<Vec<String>> {
        Ok(self.tables.read().keys().filter(|(s, _)| s == schema).map(|(_, t)| t.clone()).collect())
    }

    fn table_schema(&self, schema: &str, table: &str) -> Result<Schema> {
        self.table_def(schema, table)?.table_schema()
    }

    fn capabilities(&self) -> ScanCapabilities {
        ScanCapabilities {
            projection: true,
            nested_pruning: true,
            predicate: true,
            limit: true,
            aggregation: false,
        }
    }

    fn splits(
        &self,
        schema: &str,
        table: &str,
        request: &ScanRequest,
    ) -> Result<Vec<ConnectorSplit>> {
        let def = self.table_def(schema, table)?;
        let mut splits = Vec::new();
        let mut next_id = 0u64;
        let mut push_files = |dir: &str,
                              sealed: bool,
                              partition: Option<(String, String)>,
                              splits: &mut Vec<ConnectorSplit>|
         -> Result<()> {
            for file in self.file_lists.list_partition(dir, sealed)?.iter() {
                splits.push(ConnectorSplit {
                    id: SplitId(next_id),
                    schema: schema.to_string(),
                    table: table.to_string(),
                    payload: SplitPayload::HiveFile {
                        path: file.path.clone(),
                        partition: partition.clone(),
                    },
                });
                next_id += 1;
            }
            Ok(())
        };

        match &def.partition_column {
            None => push_files(&def.location, true, None, &mut splits)?,
            Some(col) => {
                for p in &def.partitions {
                    // Partition pruning: predicate conjuncts on the partition
                    // column filter directories before any listFiles.
                    let survives = request
                        .predicate
                        .iter()
                        .filter(|c| c.target.column == *col && c.target.path.is_empty())
                        .all(|c| c.predicate.matches(&Value::Varchar(p.value.clone())));
                    if !survives {
                        self.metrics.incr(names::HIVE_PARTITIONS_PRUNED);
                        continue;
                    }
                    push_files(
                        &p.path,
                        p.sealed,
                        Some((col.clone(), p.value.clone())),
                        &mut splits,
                    )?;
                }
            }
        }
        Ok(splits)
    }

    fn scan_split(
        &self,
        split: &ConnectorSplit,
        request: &ScanRequest,
        hooks: &ScanHooks,
    ) -> Result<Vec<Page>> {
        if request.aggregation.is_some() {
            return Err(PrestoError::Connector(
                "hive connector does not support aggregation pushdown".into(),
            ));
        }
        let (path, partition) = match &split.payload {
            SplitPayload::HiveFile { path, partition } => (path, partition),
            other => {
                return Err(PrestoError::Connector(format!(
                    "hive connector got foreign split {other:?}"
                )))
            }
        };
        let def = self.table_def(&split.schema, &split.table)?;
        let config = self.reader_config();

        // Separate partition-column projections/predicates (virtual column)
        // from file-column ones.
        let part_col = partition.as_ref().map(|(c, _)| c.as_str());
        let file_columns: Vec<&ColumnPath> =
            request.columns.iter().filter(|c| Some(c.column.as_str()) != part_col).collect();
        let file_predicates: Vec<&PushdownPredicate> = request
            .predicate
            .iter()
            .filter(|p| Some(p.target.column.as_str()) != part_col)
            .collect();
        // Partition predicates were used for pruning, but Range conjuncts may
        // not have pruned exactly — re-verify against the value.
        if let Some((col, value)) = partition {
            for p in &request.predicate {
                if p.target.column == *col && !p.predicate.matches(&Value::Varchar(value.clone())) {
                    return Ok(Vec::new());
                }
            }
        }

        // File handle via the worker-side cache (§VII.B saves getFileInfo).
        let status = self.handles.get_file_info(path)?;
        let source = FsSource::open_with_size(self.fs.clone(), path, status.size);

        let mut pages = if config.use_legacy_reader {
            // Legacy path: whole top-level columns, no pushdown of any kind;
            // predicate and nested projection applied row-wise afterwards
            // (Fig 4 step 3: "evaluate predicates on columnar blocks").
            let mut top_columns: Vec<String> = Vec::new();
            for c in &file_columns {
                if !top_columns.contains(&c.column) {
                    top_columns.push(c.column.clone());
                }
            }
            for p in &file_predicates {
                if !top_columns.contains(&p.target.column) {
                    top_columns.push(p.target.column.clone());
                }
            }
            let read_schema = def
                .file_schema
                .project(&top_columns.iter().map(String::as_str).collect::<Vec<_>>())?;
            let (raw_pages, stats) = reader_old::read(&source, &def.file_schema, &top_columns)?;
            self.metrics.add(names::HIVE_LEAVES_DECODED, stats.leaves_decoded as u64);
            let mut out = Vec::with_capacity(raw_pages.len());
            for page in raw_pages {
                let filtered = if file_predicates.is_empty() {
                    page
                } else {
                    let conjuncts: Vec<PushdownPredicate> =
                        file_predicates.iter().map(|p| (*p).clone()).collect();
                    let mask = predicate_mask(&read_schema, &page, &conjuncts)?;
                    page.filter(&mask)
                };
                let mut blocks = Vec::with_capacity(file_columns.len());
                for c in &file_columns {
                    blocks.push(project_column(&read_schema, &filtered, c)?);
                }
                out.push(if blocks.is_empty() {
                    Page::zero_column(filtered.positions())
                } else {
                    Page::new(blocks)?
                });
            }
            out
        } else {
            // New reader: pruned projections + pushed predicate.
            let projections: Vec<ProjectedColumn> = file_columns
                .iter()
                .map(|c| ProjectedColumn { column: c.column.clone(), sub_path: c.path.clone() })
                .collect();
            let predicate = FilePredicate {
                conjuncts: file_predicates
                    .iter()
                    .map(|p| ColumnPredicate {
                        leaf_path: p.target.dotted(),
                        predicate: p.predicate.clone(),
                    })
                    .collect(),
            };
            let options = ReadOptions {
                projections,
                predicate,
                stats_pushdown: config.stats_pushdown,
                dictionary_pushdown: config.dictionary_pushdown,
                lazy_reads: config.lazy_reads,
                vectorized: config.vectorized,
            };
            let (pages, stats) = reader_new::read(&source, &def.file_schema, &options)?;
            self.metrics.add(names::HIVE_LEAVES_DECODED, stats.leaves_decoded as u64);
            self.metrics.add(
                names::HIVE_ROW_GROUPS_SKIPPED,
                (stats.skipped_by_stats + stats.skipped_by_dictionary + stats.skipped_by_lazy)
                    as u64,
            );
            pages
        };
        for _ in &pages {
            hooks.on_page()?;
        }

        // Limit pushdown: stop after `limit` rows.
        if let Some(limit) = request.limit {
            let mut kept = 0usize;
            let mut truncated = Vec::new();
            for page in pages {
                if kept >= limit {
                    break;
                }
                let take = (limit - kept).min(page.positions());
                kept += take;
                truncated.push(if take == page.positions() { page } else { page.slice(0, take) });
            }
            pages = truncated;
        }

        // Append the partition column where projected (constant per split).
        if let Some((col, value)) = partition {
            let positions: Vec<usize> = request
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.column == *col)
                .map(|(i, _)| i)
                .collect();
            if !positions.is_empty() {
                let mut with_part = Vec::with_capacity(pages.len());
                for page in pages {
                    let rows = page.positions();
                    let mut blocks: Vec<Option<Block>> = vec![None; request.columns.len()];
                    let mut file_iter = page.into_blocks().into_iter();
                    for (i, c) in request.columns.iter().enumerate() {
                        if c.column == *col {
                            blocks[i] = Some(Block::varchar(&vec![value.as_str(); rows]));
                        } else {
                            blocks[i] = file_iter.next();
                        }
                    }
                    with_part.push(Page::new(
                        blocks.into_iter().map(|b| b.expect("all slots filled")).collect(),
                    )?);
                }
                pages = with_part;
            }
        }
        Ok(pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Field};
    use presto_parquet::ScalarPredicate;
    use presto_storage::HdfsFileSystem;

    fn trips_file_schema() -> Schema {
        Schema::new(vec![Field::new(
            "base",
            DataType::row(vec![
                Field::new("driver_uuid", DataType::Varchar),
                Field::new("city_id", DataType::Bigint),
                Field::new("fare", DataType::Double),
            ]),
        )])
        .unwrap()
    }

    fn loaded_hive() -> (HiveConnector, HdfsFileSystem) {
        let hdfs = HdfsFileSystem::with_defaults();
        let hive = HiveConnector::new(Arc::new(hdfs.clone()), CounterSet::new());
        hive.register_table(
            "rawdata",
            "trips",
            trips_file_schema(),
            "/warehouse/rawdata/trips",
            Some("datestr"),
        );
        for (day, sealed) in [("2017-03-01", true), ("2017-03-02", true), ("2017-03-03", false)] {
            hive.add_partition("rawdata", "trips", day, sealed).unwrap();
            let base_type = trips_file_schema().field_at(0).data_type.clone();
            let rows: Vec<Value> = (0..100)
                .map(|i| {
                    Value::Row(vec![
                        Value::Varchar(format!("drv-{day}-{i}")),
                        Value::Bigint(i % 20),
                        Value::Double(i as f64),
                    ])
                })
                .collect();
            let page = Page::new(vec![Block::from_values(&base_type, &rows).unwrap()]).unwrap();
            hive.write_data_file(
                "rawdata",
                "trips",
                Some(day),
                "part-0.upq",
                &[page],
                WriterMode::Native,
                WriterProperties { row_group_rows: 25, ..WriterProperties::default() },
            )
            .unwrap();
        }
        (hive, hdfs)
    }

    /// The paper's example query: SELECT base.driver_uuid FROM trips WHERE
    /// datestr = '2017-03-02' AND base.city_id IN (12)
    fn paper_query_request() -> ScanRequest {
        ScanRequest {
            columns: vec![ColumnPath::nested("base", &["driver_uuid"])],
            predicate: vec![
                PushdownPredicate {
                    target: ColumnPath::whole("datestr"),
                    predicate: ScalarPredicate::Eq(Value::Varchar("2017-03-02".into())),
                },
                PushdownPredicate {
                    target: ColumnPath::nested("base", &["city_id"]),
                    predicate: ScalarPredicate::In(vec![Value::Bigint(12)]),
                },
            ],
            limit: None,
            aggregation: None,
        }
    }

    #[test]
    fn partition_pruning_limits_splits() {
        let (hive, _) = loaded_hive();
        let request = paper_query_request();
        let splits = hive.splits("rawdata", "trips", &request).unwrap();
        assert_eq!(splits.len(), 1, "only the 2017-03-02 partition survives");
        assert_eq!(hive.metrics().get(names::HIVE_PARTITIONS_PRUNED), 2);
    }

    #[test]
    fn paper_query_new_and_legacy_readers_agree() {
        let (hive, _) = loaded_hive();
        let request = paper_query_request();
        let splits = hive.splits("rawdata", "trips", &request).unwrap();

        let run = |legacy: bool| -> Vec<Vec<Value>> {
            hive.set_reader_config(HiveReaderConfig {
                use_legacy_reader: legacy,
                ..HiveReaderConfig::default()
            });
            splits
                .iter()
                .flat_map(|s| hive.scan_split(s, &request, &ScanHooks::none()).unwrap())
                .flat_map(|p| p.rows())
                .collect()
        };
        let new_rows = run(false);
        let old_rows = run(true);
        assert_eq!(new_rows, old_rows);
        // city_id in (12): rows 12, 32, 52, 72, 92 → 5 rows
        assert_eq!(new_rows.len(), 5);
        assert!(new_rows.iter().all(|r| r[0].as_str().unwrap().starts_with("drv-2017-03-02-")));
    }

    #[test]
    fn new_reader_decodes_far_fewer_leaves() {
        let (hive, _) = loaded_hive();
        let request = paper_query_request();
        let splits = hive.splits("rawdata", "trips", &request).unwrap();

        hive.metrics().reset();
        hive.set_reader_config(HiveReaderConfig::default());
        for s in &splits {
            hive.scan_split(s, &request, &ScanHooks::none()).unwrap();
        }
        let new_leaves = hive.metrics().get(names::HIVE_LEAVES_DECODED);

        hive.metrics().reset();
        hive.set_reader_config(HiveReaderConfig {
            use_legacy_reader: true,
            ..HiveReaderConfig::default()
        });
        for s in &splits {
            hive.scan_split(s, &request, &ScanHooks::none()).unwrap();
        }
        let old_leaves = hive.metrics().get(names::HIVE_LEAVES_DECODED);
        assert!(
            new_leaves < old_leaves,
            "pruning+skipping must reduce decode work: {new_leaves} vs {old_leaves}"
        );
    }

    #[test]
    fn partition_column_projects_as_constant() {
        let (hive, _) = loaded_hive();
        let request = ScanRequest {
            columns: vec![ColumnPath::whole("datestr"), ColumnPath::nested("base", &["city_id"])],
            predicate: vec![PushdownPredicate {
                target: ColumnPath::whole("datestr"),
                predicate: ScalarPredicate::Eq(Value::Varchar("2017-03-01".into())),
            }],
            limit: Some(3),
            aggregation: None,
        };
        let splits = hive.splits("rawdata", "trips", &request).unwrap();
        let pages: Vec<Page> = splits
            .iter()
            .flat_map(|s| hive.scan_split(s, &request, &ScanHooks::none()).unwrap())
            .collect();
        let rows: Vec<Vec<Value>> = pages.iter().flat_map(|p| p.rows()).collect();
        assert_eq!(rows.len(), 3); // limit pushdown
        for r in &rows {
            assert_eq!(r[0], Value::Varchar("2017-03-01".into()));
        }
    }

    #[test]
    fn writes_invalidate_cached_file_lists() {
        let hdfs = HdfsFileSystem::with_defaults();
        let hive = HiveConnector::new(Arc::new(hdfs), CounterSet::new());
        // unpartitioned table: its root directory listing is cacheable
        let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
        hive.register_table("s", "flat", schema, "/w/flat", None);
        let one_page = || {
            Page::new(vec![Block::from_values(&DataType::Bigint, &[Value::Bigint(1)]).unwrap()])
                .unwrap()
        };
        hive.write_data_file(
            "s",
            "flat",
            None,
            "part-0.upq",
            &[one_page()],
            WriterMode::Native,
            WriterProperties::default(),
        )
        .unwrap();
        let request = ScanRequest::project(vec![ColumnPath::whole("x")]);
        assert_eq!(hive.splits("s", "flat", &request).unwrap().len(), 1);
        // a new file arrives: the next scan must see it, not the cached list
        hive.write_data_file(
            "s",
            "flat",
            None,
            "part-1.upq",
            &[one_page()],
            WriterMode::Native,
            WriterProperties::default(),
        )
        .unwrap();
        assert_eq!(hive.splits("s", "flat", &request).unwrap().len(), 2);
    }

    #[test]
    fn sealed_partition_listings_are_cached_open_are_not() {
        let (hive, hdfs) = loaded_hive();
        let request = ScanRequest::project(vec![ColumnPath::nested("base", &["city_id"])]);
        hdfs.metrics().reset();
        for _ in 0..5 {
            hive.splits("rawdata", "trips", &request).unwrap();
        }
        // 2 sealed partitions: 1 listFiles each (cached after); 1 open
        // partition: 5 listFiles (bypass every time)
        assert_eq!(hdfs.metrics().get(names::HDFS_LIST_FILES), 2 + 5);
    }
}
