//! The `system` connector: live cluster telemetry as ordinary SQL tables.
//!
//! Presto exposes its own runtime state back through SQL — operators run
//! `SELECT * FROM system.runtime.queries` against the very cluster serving
//! them. This connector reproduces that loop over the deterministic
//! [`TelemetryRegistry`]: `system.runtime.queries`, `system.runtime.tasks`
//! and `system.runtime.workers` materialize the registry's row sets, and
//! `system.metrics` (schema `default`, like Presto's flat
//! `system.metrics`) lists every time series and gauge. Rows come out of
//! `BTreeMap`s in key order, so the same seed always yields bit-identical
//! pages — system tables are queryable *and* replayable.

use std::sync::Arc;

use presto_common::ids::SplitId;
use presto_common::telemetry::TelemetryRegistry;
use presto_common::{Block, DataType, Field, Page, PrestoError, Result, Schema};

use crate::memory::apply_request;
use crate::spi::{
    Connector, ConnectorSplit, ScanCapabilities, ScanHooks, ScanRequest, SplitPayload,
};

/// Schema holding the runtime tables (`queries`, `tasks`, `workers`).
pub const RUNTIME_SCHEMA: &str = "runtime";

/// Schema holding the flat `metrics` table.
pub const DEFAULT_SCHEMA: &str = "default";

/// The `system` catalog connector, reading a shared [`TelemetryRegistry`].
pub struct SystemConnector {
    telemetry: Arc<TelemetryRegistry>,
}

impl SystemConnector {
    /// Connector over the cluster's shared telemetry registry.
    pub fn new(telemetry: Arc<TelemetryRegistry>) -> SystemConnector {
        SystemConnector { telemetry }
    }

    fn schema_of(table_schema: &str, table: &str) -> Result<Schema> {
        match (table_schema, table) {
            (RUNTIME_SCHEMA, "workers") => Schema::new(vec![
                Field::new("worker_id", DataType::Bigint),
                Field::new("class", DataType::Varchar),
                Field::new("lifecycle", DataType::Varchar),
                Field::new("active_tasks", DataType::Bigint),
                Field::new("completed_tasks", DataType::Bigint),
                Field::new("busy_pct", DataType::Bigint),
            ]),
            (RUNTIME_SCHEMA, "queries") => Schema::new(vec![
                Field::new("query_id", DataType::Bigint),
                Field::new("state", DataType::Varchar),
                Field::new("latency_us", DataType::Bigint),
                Field::new("peak_memory_bytes", DataType::Bigint),
                Field::new("peak_busy_pct", DataType::Bigint),
                Field::new("snapshots", DataType::Bigint),
            ]),
            (RUNTIME_SCHEMA, "tasks") => Schema::new(vec![
                Field::new("task_id", DataType::Bigint),
                Field::new("query_id", DataType::Bigint),
                Field::new("worker_id", DataType::Bigint),
                Field::new("state", DataType::Varchar),
                Field::new("runtime_us", DataType::Bigint),
            ]),
            (DEFAULT_SCHEMA, "metrics") => Schema::new(vec![
                Field::new("name", DataType::Varchar),
                Field::new("kind", DataType::Varchar),
                Field::new("value", DataType::Bigint),
                Field::new("samples", DataType::Bigint),
            ]),
            _ => Err(PrestoError::Analysis(format!(
                "table system.{table_schema}.{table} does not exist"
            ))),
        }
    }

    /// Materialize a table's full page in canonical (BTree) row order.
    fn page_of(&self, table_schema: &str, table: &str) -> Result<Page> {
        match (table_schema, table) {
            (RUNTIME_SCHEMA, "workers") => {
                let rows = self.telemetry.workers();
                Page::new(vec![
                    Block::bigint(rows.iter().map(|w| i64::from(w.worker_id)).collect()),
                    Block::varchar(&rows.iter().map(|w| w.class.as_str()).collect::<Vec<_>>()),
                    Block::varchar(&rows.iter().map(|w| w.lifecycle.as_str()).collect::<Vec<_>>()),
                    Block::bigint(rows.iter().map(|w| w.active_tasks as i64).collect()),
                    Block::bigint(rows.iter().map(|w| w.completed_tasks as i64).collect()),
                    Block::bigint(rows.iter().map(|w| w.busy_pct as i64).collect()),
                ])
            }
            (RUNTIME_SCHEMA, "queries") => {
                let rows = self.telemetry.queries();
                Page::new(vec![
                    Block::bigint(rows.iter().map(|q| q.query_id as i64).collect()),
                    Block::varchar(&rows.iter().map(|q| q.state.as_str()).collect::<Vec<_>>()),
                    Block::bigint(rows.iter().map(|q| q.latency_us as i64).collect()),
                    Block::bigint(rows.iter().map(|q| q.peak_memory_bytes as i64).collect()),
                    Block::bigint(rows.iter().map(|q| q.peak_busy_pct as i64).collect()),
                    Block::bigint(rows.iter().map(|q| q.snapshots as i64).collect()),
                ])
            }
            (RUNTIME_SCHEMA, "tasks") => {
                let rows = self.telemetry.tasks();
                Page::new(vec![
                    Block::bigint(rows.iter().map(|t| t.task_id as i64).collect()),
                    Block::bigint(rows.iter().map(|t| t.query_id as i64).collect()),
                    Block::bigint(rows.iter().map(|t| i64::from(t.worker_id)).collect()),
                    Block::varchar(&rows.iter().map(|t| t.state.as_str()).collect::<Vec<_>>()),
                    Block::bigint(rows.iter().map(|t| t.runtime_us as i64).collect()),
                ])
            }
            (DEFAULT_SCHEMA, "metrics") => {
                let rows = self.telemetry.metric_rows();
                Page::new(vec![
                    Block::varchar(&rows.iter().map(|(n, _, _, _)| n.as_str()).collect::<Vec<_>>()),
                    Block::varchar(&rows.iter().map(|(_, k, _, _)| k.as_str()).collect::<Vec<_>>()),
                    Block::bigint(rows.iter().map(|&(_, _, v, _)| v as i64).collect()),
                    Block::bigint(rows.iter().map(|&(_, _, _, s)| s as i64).collect()),
                ])
            }
            _ => Err(PrestoError::Analysis(format!(
                "table system.{table_schema}.{table} does not exist"
            ))),
        }
    }
}

impl Connector for SystemConnector {
    fn name(&self) -> &str {
        "system"
    }

    fn list_schemas(&self) -> Vec<String> {
        vec![DEFAULT_SCHEMA.to_string(), RUNTIME_SCHEMA.to_string()]
    }

    fn list_tables(&self, schema: &str) -> Result<Vec<String>> {
        match schema {
            RUNTIME_SCHEMA => {
                Ok(vec!["queries".to_string(), "tasks".to_string(), "workers".to_string()])
            }
            DEFAULT_SCHEMA => Ok(vec!["metrics".to_string()]),
            other => Err(PrestoError::Analysis(format!("schema system.{other} does not exist"))),
        }
    }

    fn table_schema(&self, schema: &str, table: &str) -> Result<Schema> {
        SystemConnector::schema_of(schema, table)
    }

    fn capabilities(&self) -> ScanCapabilities {
        ScanCapabilities {
            projection: true,
            nested_pruning: false,
            predicate: true,
            limit: true,
            aggregation: false,
        }
    }

    fn splits(
        &self,
        schema: &str,
        table: &str,
        _request: &ScanRequest,
    ) -> Result<Vec<ConnectorSplit>> {
        SystemConnector::schema_of(schema, table)?;
        // one split per table: the rows are a point-in-time view of shared
        // state, and a single materialization keeps that view consistent
        Ok(vec![ConnectorSplit {
            id: SplitId(0),
            schema: schema.to_string(),
            table: table.to_string(),
            payload: SplitPayload::System,
        }])
    }

    fn scan_split(
        &self,
        split: &ConnectorSplit,
        request: &ScanRequest,
        hooks: &ScanHooks,
    ) -> Result<Vec<Page>> {
        if split.payload != SplitPayload::System {
            return Err(PrestoError::Connector(format!(
                "system connector got foreign split {:?}",
                split.payload
            )));
        }
        let schema = SystemConnector::schema_of(&split.schema, &split.table)?;
        let page = self.page_of(&split.schema, &split.table)?;
        hooks.on_page()?;
        Ok(vec![apply_request(&schema, &page, request)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::telemetry::WorkerRow;
    use presto_common::Value;

    fn registry() -> Arc<TelemetryRegistry> {
        let t = TelemetryRegistry::new();
        for (id, lifecycle, busy) in [(0, "active", 80), (1, "draining", 15), (2, "active", 55)] {
            t.record_worker(WorkerRow {
                worker_id: id,
                class: "ondemand".to_string(),
                lifecycle: lifecycle.to_string(),
                active_tasks: 0,
                completed_tasks: 4,
                busy_pct: busy,
            });
        }
        Arc::new(t)
    }

    #[test]
    fn metadata_lists_all_four_tables() {
        let c = SystemConnector::new(registry());
        assert_eq!(c.list_schemas(), vec!["default", "runtime"]);
        let mut runtime = c.list_tables(RUNTIME_SCHEMA).unwrap();
        runtime.sort();
        assert_eq!(runtime, vec!["queries", "tasks", "workers"]);
        assert_eq!(c.list_tables(DEFAULT_SCHEMA).unwrap(), vec!["metrics"]);
        assert!(c.list_tables("nope").is_err());
        assert!(c.table_schema(RUNTIME_SCHEMA, "workers").is_ok());
        assert!(c.table_schema(RUNTIME_SCHEMA, "nope").is_err());
    }

    #[test]
    fn workers_scan_applies_pushdowns_in_key_order() {
        let c = SystemConnector::new(registry());
        let request = ScanRequest::project(vec![
            crate::spi::ColumnPath::whole("worker_id"),
            crate::spi::ColumnPath::whole("lifecycle"),
        ]);
        let splits = c.splits(RUNTIME_SCHEMA, "workers", &request).unwrap();
        assert_eq!(splits.len(), 1);
        let pages = c.scan_split(&splits[0], &request, &ScanHooks::none()).unwrap();
        assert_eq!(pages[0].positions(), 3);
        assert_eq!(pages[0].row(0), vec![Value::Bigint(0), Value::Varchar("active".into())]);
        assert_eq!(pages[0].row(1), vec![Value::Bigint(1), Value::Varchar("draining".into())]);
    }

    #[test]
    fn foreign_split_is_refused() {
        let c = SystemConnector::new(registry());
        let split = ConnectorSplit {
            id: SplitId(0),
            schema: RUNTIME_SCHEMA.to_string(),
            table: "workers".to_string(),
            payload: SplitPayload::Memory { chunk: 0 },
        };
        assert!(c.scan_split(&split, &ScanRequest::default(), &ScanHooks::none()).is_err());
    }
}
