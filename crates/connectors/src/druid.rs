//! The Presto-Druid connector (§IV.B, Fig 16).
//!
//! Twitter "is running Apache Druid for real time analytics" (§IV); the Fig
//! 16 experiment compares 20 production queries run natively on Druid
//! against the same queries through the Presto-Druid connector with
//! predicate, limit and aggregation pushdown — the connector adds <15%
//! overhead, so "users could get sub-second query latency via the
//! Presto-Druid-connector, and get full SQL support".

use std::time::Duration;

use crate::realtime::{RealtimeConnector, RealtimeCostModel, RealtimeStore};

/// Default rows per Druid segment.
pub const DRUID_ROWS_PER_SEGMENT: usize = 10_000;

/// A fresh Druid store with the Druid cost personality.
pub fn druid_store() -> RealtimeStore {
    RealtimeStore::new(
        "druid",
        DRUID_ROWS_PER_SEGMENT,
        RealtimeCostModel {
            per_segment_base: Duration::from_micros(600),
            per_matched_row: Duration::from_nanos(150),
            per_streamed_row: Duration::from_micros(2),
        },
    )
}

/// A connector over a fresh Druid store.
pub fn druid_connector() -> RealtimeConnector {
    RealtimeConnector::new(druid_store())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spi::{
        AggregationPushdown, ColumnPath, Connector, PushdownPredicate, ScanHooks, ScanRequest,
    };
    use presto_common::{DataType, Field, Schema, Value};
    use presto_expr::AggregateFunction;
    use presto_parquet::ScalarPredicate;

    fn loaded_connector() -> RealtimeConnector {
        let c = druid_connector();
        let schema = Schema::new(vec![
            Field::new("ts", DataType::Timestamp),
            Field::new("campaign", DataType::Varchar),
            Field::new("impressions", DataType::Bigint),
        ])
        .unwrap();
        c.store().create_table("ads", "events", schema).unwrap();
        let rows: Vec<Vec<Value>> = (0..50_000)
            .map(|i| {
                vec![
                    Value::Timestamp(i as i64),
                    Value::Varchar(format!("c{}", i % 7)),
                    Value::Bigint((i % 100) as i64),
                ]
            })
            .collect();
        c.store().ingest("ads", "events", rows).unwrap();
        c
    }

    #[test]
    fn aggregation_pushdown_streams_partials_only() {
        let c = loaded_connector();
        let request = ScanRequest {
            aggregation: Some(AggregationPushdown {
                group_by: vec![ColumnPath::whole("campaign")],
                aggregates: vec![
                    (AggregateFunction::CountStar, None),
                    (AggregateFunction::Sum, Some(ColumnPath::whole("impressions"))),
                ],
            }),
            ..ScanRequest::default()
        };
        let splits = c.splits("ads", "events", &request).unwrap();
        assert!(splits.len() > 1, "50k rows / 10k per segment / 4 per split");
        let mut partial_rows = 0usize;
        let mut total_count = 0i64;
        for split in &splits {
            let pages = c.scan_split(split, &request, &ScanHooks::none()).unwrap();
            for p in &pages {
                partial_rows += p.positions();
                for i in 0..p.positions() {
                    total_count += p.row(i)[1].as_i64().unwrap();
                }
            }
        }
        // only ≤ 7 groups per split crossed the wire, not 50 000 rows
        assert!(partial_rows <= 7 * splits.len());
        assert_eq!(total_count, 50_000);
        assert!(c.take_last_scan_cost() > Duration::ZERO);
    }

    #[test]
    fn predicate_pushdown_on_raw_scan() {
        let c = loaded_connector();
        let request = ScanRequest {
            columns: vec![ColumnPath::whole("impressions")],
            predicate: vec![PushdownPredicate {
                target: ColumnPath::whole("campaign"),
                predicate: ScalarPredicate::Eq(Value::Varchar("c3".into())),
            }],
            ..ScanRequest::default()
        };
        let splits = c.splits("ads", "events", &request).unwrap();
        let total: usize = splits
            .iter()
            .map(|s| {
                c.scan_split(s, &request, &ScanHooks::none())
                    .unwrap()
                    .iter()
                    .map(|p| p.positions())
                    .sum::<usize>()
            })
            .sum();
        // every 7th row is c3
        assert_eq!(total, 50_000 / 7 + 1);
    }

    #[test]
    fn connector_metadata() {
        let c = loaded_connector();
        assert_eq!(c.name(), "druid");
        assert_eq!(c.list_schemas(), vec!["ads"]);
        assert_eq!(c.list_tables("ads").unwrap(), vec!["events"]);
        assert!(c.capabilities().aggregation);
        assert!(c.table_schema("ads", "missing").is_err());
    }
}
