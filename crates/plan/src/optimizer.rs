//! The rule-based optimizer.
//!
//! Rules run in a fixed order (fold constants → fuse TopN → geospatial
//! rewrite → predicate pushdown → scan projection pruning → aggregation
//! pushdown → limit pushdown); each rule is individually toggleable so
//! experiments can ablate them.

use presto_common::{DataType, Result, Value};
use presto_connectors::{
    AggregationPushdown, CatalogRegistry, ColumnPath, PushdownPredicate, ScanRequest,
};
use presto_expr::{AggregateFunction, Evaluator, RowExpression, SpecialForm};
use presto_parquet::ScalarPredicate;

use crate::logical::{AggregateExpr, AggregateStep, JoinKind, LogicalPlan, SortKey};

/// Rule switches, all on by default.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Fold constant subexpressions.
    pub constant_folding: bool,
    /// Fuse Sort+Limit into TopN.
    pub topn_fusion: bool,
    /// Rewrite `st_contains` cross joins into QuadTree GeoJoins (Fig 13).
    pub geo_rewrite: bool,
    /// Push predicates through projects/joins and into scans (§IV.A).
    pub predicate_pushdown: bool,
    /// Prune scan projections, including nested column pruning (§V.D).
    pub projection_pushdown: bool,
    /// Push aggregations into connectors that support them (§IV.B).
    pub aggregation_pushdown: bool,
    /// Push limits into scans (§IV.A).
    pub limit_pushdown: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            constant_folding: true,
            topn_fusion: true,
            geo_rewrite: true,
            predicate_pushdown: true,
            projection_pushdown: true,
            aggregation_pushdown: true,
            limit_pushdown: true,
        }
    }
}

/// Optimize a plan against the registered catalogs.
pub fn optimize(
    plan: LogicalPlan,
    catalogs: &CatalogRegistry,
    evaluator: &Evaluator,
    config: &OptimizerConfig,
) -> Result<LogicalPlan> {
    let mut plan = plan;
    if config.constant_folding {
        plan = rewrite_expressions(plan, &|e| fold_expression(e, evaluator));
    }
    if config.topn_fusion {
        plan = transform_up(plan, &fuse_topn)?;
    }
    if config.geo_rewrite {
        plan = transform_up(plan, &rewrite_geo_join)?;
    }
    if config.predicate_pushdown {
        plan = push_predicates(plan, catalogs)?;
    }
    if config.projection_pushdown {
        // Normalize: every Aggregate / Sort-free consumer of raw columns
        // gets an explicit Project naming exactly the accesses it uses...
        plan = transform_up(plan, &project_below_aggregate)?;
        // ...then projections sink through joins toward the scans (a few
        // fixpoint rounds cover left-deep multi-join trees)...
        for _ in 0..4 {
            plan = transform_up(plan, &push_project_into_join)?;
            plan = transform_up(plan, &merge_projects)?;
        }
        // ...and finally Project→[Filter]→Scan becomes pruned scan columns
        // (including nested column pruning, §V.D).
        plan = transform_up(plan, &|p| prune_scan_projection(p, catalogs))?;
    }
    if config.aggregation_pushdown {
        plan = transform_up(plan, &|p| push_aggregation(p, catalogs))?;
    }
    if config.limit_pushdown {
        plan = transform_up(plan, &|p| push_limit(p, catalogs))?;
    }
    Ok(plan)
}

// ------------------------------------------------------------ plumbing

/// Rebuild the tree bottom-up through `f`.
fn transform_up(
    plan: LogicalPlan,
    f: &impl Fn(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    let with_children = map_children(plan, &|child| transform_up(child, f))?;
    f(with_children)
}

fn map_children(
    plan: LogicalPlan,
    f: &impl Fn(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(f(*input)?), predicate }
        }
        LogicalPlan::Project { input, expressions } => {
            LogicalPlan::Project { input: Box::new(f(*input)?), expressions }
        }
        LogicalPlan::Aggregate { input, group_by, aggregates, step } => {
            LogicalPlan::Aggregate { input: Box::new(f(*input)?), group_by, aggregates, step }
        }
        LogicalPlan::Join { left, right, kind, on, residual } => LogicalPlan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            kind,
            on,
            residual,
        },
        LogicalPlan::GeoJoin { probe, fences, probe_lng, probe_lat, fence_shape } => {
            LogicalPlan::GeoJoin {
                probe: Box::new(f(*probe)?),
                fences: Box::new(f(*fences)?),
                probe_lng,
                probe_lat,
                fence_shape,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(f(*input)?), keys }
        }
        LogicalPlan::TopN { input, keys, count } => {
            LogicalPlan::TopN { input: Box::new(f(*input)?), keys, count }
        }
        LogicalPlan::Limit { input, count } => {
            LogicalPlan::Limit { input: Box::new(f(*input)?), count }
        }
        LogicalPlan::Output { input, names } => {
            LogicalPlan::Output { input: Box::new(f(*input)?), names }
        }
        LogicalPlan::Union { inputs } => {
            LogicalPlan::Union { inputs: inputs.into_iter().map(f).collect::<Result<Vec<_>>>()? }
        }
        leaf => leaf,
    })
}

/// Rewrite every expression in the plan through `f`.
fn rewrite_expressions(
    plan: LogicalPlan,
    f: &impl Fn(RowExpression) -> RowExpression,
) -> LogicalPlan {
    let rewrite_keys = |keys: Vec<SortKey>| -> Vec<SortKey> {
        keys.into_iter()
            .map(|k| SortKey { expr: k.expr.rewrite(f), descending: k.descending })
            .collect()
    };
    match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite_expressions(*input, f)),
            predicate: predicate.rewrite(f),
        },
        LogicalPlan::Project { input, expressions } => LogicalPlan::Project {
            input: Box::new(rewrite_expressions(*input, f)),
            expressions: expressions.into_iter().map(|(n, e)| (n, e.rewrite(f))).collect(),
        },
        LogicalPlan::Aggregate { input, group_by, aggregates, step } => LogicalPlan::Aggregate {
            input: Box::new(rewrite_expressions(*input, f)),
            group_by: group_by.into_iter().map(|e| e.rewrite(f)).collect(),
            aggregates: aggregates
                .into_iter()
                .map(|a| AggregateExpr {
                    function: a.function,
                    argument: a.argument.map(|e| e.rewrite(f)),
                    name: a.name,
                })
                .collect(),
            step,
        },
        LogicalPlan::Join { left, right, kind, on, residual } => LogicalPlan::Join {
            left: Box::new(rewrite_expressions(*left, f)),
            right: Box::new(rewrite_expressions(*right, f)),
            kind,
            on: on.into_iter().map(|(l, r)| (l.rewrite(f), r.rewrite(f))).collect(),
            residual: residual.map(|e| e.rewrite(f)),
        },
        LogicalPlan::GeoJoin { probe, fences, probe_lng, probe_lat, fence_shape } => {
            LogicalPlan::GeoJoin {
                probe: Box::new(rewrite_expressions(*probe, f)),
                fences: Box::new(rewrite_expressions(*fences, f)),
                probe_lng: probe_lng.rewrite(f),
                probe_lat: probe_lat.rewrite(f),
                fence_shape: fence_shape.rewrite(f),
            }
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite_expressions(*input, f)),
            keys: rewrite_keys(keys),
        },
        LogicalPlan::TopN { input, keys, count } => LogicalPlan::TopN {
            input: Box::new(rewrite_expressions(*input, f)),
            keys: rewrite_keys(keys),
            count,
        },
        LogicalPlan::Limit { input, count } => {
            LogicalPlan::Limit { input: Box::new(rewrite_expressions(*input, f)), count }
        }
        LogicalPlan::Output { input, names } => {
            LogicalPlan::Output { input: Box::new(rewrite_expressions(*input, f)), names }
        }
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(|i| rewrite_expressions(i, f)).collect(),
        },
        leaf => leaf,
    }
}

// -------------------------------------------------------- constant folding

fn fold_expression(expr: RowExpression, evaluator: &Evaluator) -> RowExpression {
    // Lambdas are not foldable, and IS_NULL-type forms over constants are
    // handled fine by the scalar evaluator.
    if !expr.is_constant() {
        return expr;
    }
    if matches!(expr, RowExpression::Constant { .. }) {
        return expr;
    }
    let data_type = expr.data_type();
    match evaluator.evaluate_scalar(&expr, &[]) {
        Ok(value) => RowExpression::Constant { value, data_type },
        // leave failing expressions (e.g. 1/0) in place: they must error at
        // execution time, not silently at plan time
        Err(_) => expr,
    }
}

// ------------------------------------------------------------- TopN fusion

fn fuse_topn(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Limit { input, count } => match *input {
            LogicalPlan::Sort { input: sorted, keys } => {
                LogicalPlan::TopN { input: sorted, keys, count }
            }
            other => LogicalPlan::Limit { input: Box::new(other), count },
        },
        other => other,
    })
}

// -------------------------------------------------------------- geo rewrite

/// Fig 13: `Filter[st_contains(shape, st_point(lng, lat))]` over a cross
/// join becomes a GeoJoin that builds a QuadTree over the fence side.
fn rewrite_geo_join(plan: LogicalPlan) -> Result<LogicalPlan> {
    let LogicalPlan::Filter { input, predicate } = plan else {
        return Ok(plan);
    };
    let LogicalPlan::Join { left, right, kind: JoinKind::Inner, on, residual } = *input else {
        return Ok(LogicalPlan::Filter { input, predicate });
    };
    if !on.is_empty() {
        return Ok(LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join { left, right, kind: JoinKind::Inner, on, residual }),
            predicate,
        });
    }
    let left_width = left.output_schema()?.len();

    let mut conjuncts = predicate.conjuncts();
    if let Some(res) = &residual {
        conjuncts.extend(res.conjuncts());
    }
    let mut geo: Option<(RowExpression, RowExpression, RowExpression)> = None;
    let mut rest = Vec::new();
    for conjunct in conjuncts {
        if geo.is_none() {
            if let Some(parts) = match_st_contains(&conjunct, left_width) {
                geo = Some(parts);
                continue;
            }
        }
        rest.push(conjunct);
    }
    let Some((shape, lng, lat)) = geo else {
        return Ok(LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left,
                right,
                kind: JoinKind::Inner,
                on: vec![],
                residual,
            }),
            predicate,
        });
    };

    // probe = left (point side), fences = right (shape side); remap the
    // shape expression to fence-local channels.
    let shape_local = shift_columns(shape, -(left_width as isize));
    let geo_join = LogicalPlan::GeoJoin {
        probe: left,
        fences: right,
        probe_lng: lng,
        probe_lat: lat,
        fence_shape: shape_local,
    };
    Ok(match RowExpression::combine_conjuncts(rest) {
        Some(remaining) => LogicalPlan::Filter { input: Box::new(geo_join), predicate: remaining },
        None => geo_join,
    })
}

/// Match `st_contains(<right-side shape>, st_point(<left lng>, <left lat>))`,
/// returning `(shape over concat schema, lng over left, lat over left)`.
fn match_st_contains(
    expr: &RowExpression,
    left_width: usize,
) -> Option<(RowExpression, RowExpression, RowExpression)> {
    let RowExpression::Call { handle, args } = expr else {
        return None;
    };
    if handle.name != "st_contains" || args.len() != 2 {
        return None;
    }
    let shape = &args[0];
    let RowExpression::Call { handle: point_handle, args: point_args } = &args[1] else {
        return None;
    };
    if point_handle.name != "st_point" || point_args.len() != 2 {
        return None;
    }
    let from_right = |e: &RowExpression| {
        !e.referenced_columns().is_empty()
            && e.referenced_columns().iter().all(|&c| c >= left_width)
    };
    let from_left = |e: &RowExpression| e.referenced_columns().iter().all(|&c| c < left_width);
    if from_right(shape) && from_left(&point_args[0]) && from_left(&point_args[1]) {
        Some((shape.clone(), point_args[0].clone(), point_args[1].clone()))
    } else {
        None
    }
}

fn shift_columns(expr: RowExpression, delta: isize) -> RowExpression {
    expr.rewrite(&|e| match e {
        RowExpression::VariableReference { name, index, data_type } => {
            RowExpression::VariableReference {
                name,
                index: (index as isize + delta) as usize,
                data_type,
            }
        }
        other => other,
    })
}

// ------------------------------------------------------ predicate pushdown

fn push_predicates(plan: LogicalPlan, catalogs: &CatalogRegistry) -> Result<LogicalPlan> {
    // Process this node, then recurse into (possibly new) children.
    let plan = match plan {
        LogicalPlan::Filter { input, predicate } => push_filter(*input, predicate, catalogs)?,
        other => other,
    };
    map_children(plan, &|child| push_predicates(child, catalogs))
}

/// Push the conjuncts of `predicate` as deep as possible over `input`.
fn push_filter(
    input: LogicalPlan,
    predicate: RowExpression,
    catalogs: &CatalogRegistry,
) -> Result<LogicalPlan> {
    match input {
        // merge stacked filters
        LogicalPlan::Filter { input: inner, predicate: inner_pred } => {
            let combined = RowExpression::combine_conjuncts(vec![inner_pred, predicate])
                .expect("two conjuncts");
            push_filter(*inner, combined, catalogs)
        }
        // inline project expressions into the predicate and push below
        LogicalPlan::Project { input: inner, expressions } => {
            let inlined = inline_projection(&predicate, &expressions);
            let pushed = push_filter(*inner, inlined, catalogs)?;
            Ok(LogicalPlan::Project { input: Box::new(pushed), expressions })
        }
        // route conjuncts to join sides; promote equi conjuncts to keys
        LogicalPlan::Join { left, right, kind, mut on, residual } => {
            let left_width = left.output_schema()?.len();
            let mut left_conjuncts = Vec::new();
            let mut right_conjuncts = Vec::new();
            let mut kept = Vec::new();
            let mut all = predicate.conjuncts();
            // An INNER join's ON residual is semantically a WHERE conjunct,
            // so it can be routed with the rest. A LEFT join's ON residual
            // decides *matching*, not row survival — it must stay attached
            // to the join untouched.
            let mut join_residual = None;
            match (kind, residual) {
                (JoinKind::Inner, Some(res)) => all.extend(res.conjuncts()),
                (_, res) => join_residual = res,
            }
            for conjunct in all {
                let refs = conjunct.referenced_columns();
                let all_left = refs.iter().all(|&c| c < left_width);
                let all_right = !refs.is_empty() && refs.iter().all(|&c| c >= left_width);
                if all_left && kind == JoinKind::Inner {
                    left_conjuncts.push(conjunct);
                } else if all_left && kind == JoinKind::Left {
                    // left-side conjuncts are safe to push below a left join
                    left_conjuncts.push(conjunct);
                } else if all_right && kind == JoinKind::Inner {
                    right_conjuncts.push(shift_columns(conjunct, -(left_width as isize)));
                } else if kind == JoinKind::Inner {
                    // try to promote eq(left, right) to a join key
                    if let RowExpression::Call { handle, args } = &conjunct {
                        if handle.name == "eq" && args.len() == 2 {
                            let l_refs = args[0].referenced_columns();
                            let r_refs = args[1].referenced_columns();
                            let zero_left = |v: &Vec<usize>| v.iter().all(|&c| c < left_width);
                            let zero_right = |v: &Vec<usize>| {
                                !v.is_empty() && v.iter().all(|&c| c >= left_width)
                            };
                            if zero_left(&l_refs) && zero_right(&r_refs) {
                                on.push((
                                    args[0].clone(),
                                    shift_columns(args[1].clone(), -(left_width as isize)),
                                ));
                                continue;
                            }
                            if zero_left(&r_refs) && zero_right(&l_refs) {
                                on.push((
                                    args[1].clone(),
                                    shift_columns(args[0].clone(), -(left_width as isize)),
                                ));
                                continue;
                            }
                        }
                    }
                    kept.push(conjunct);
                } else {
                    kept.push(conjunct);
                }
            }
            let new_left = match RowExpression::combine_conjuncts(left_conjuncts) {
                Some(p) => push_filter(*left, p, catalogs)?,
                None => *left,
            };
            let new_right = match RowExpression::combine_conjuncts(right_conjuncts) {
                Some(p) => push_filter(*right, p, catalogs)?,
                None => *right,
            };
            let join = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
                residual: join_residual,
            };
            Ok(match RowExpression::combine_conjuncts(kept) {
                Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
                None => join,
            })
        }
        // convert eligible conjuncts into connector predicates
        LogicalPlan::TableScan { catalog, schema, table, table_schema, mut request } => {
            let connector = catalogs.get(&catalog)?;
            let mut residual = Vec::new();
            if connector.capabilities().predicate && request.aggregation.is_none() {
                for conjunct in predicate.conjuncts() {
                    match convert_to_pushdown(&conjunct, &request) {
                        Some(pushdown) => request.predicate.push(pushdown),
                        None => residual.push(conjunct),
                    }
                }
            } else {
                residual = predicate.conjuncts();
            }
            let scan = LogicalPlan::TableScan { catalog, schema, table, table_schema, request };
            Ok(match RowExpression::combine_conjuncts(residual) {
                Some(p) => LogicalPlan::Filter { input: Box::new(scan), predicate: p },
                None => scan,
            })
        }
        // barriers: keep the filter here
        other => Ok(LogicalPlan::Filter { input: Box::new(other), predicate }),
    }
}

/// Substitute projection expressions for their output channels inside `expr`.
fn inline_projection(
    expr: &RowExpression,
    expressions: &[(String, RowExpression)],
) -> RowExpression {
    expr.clone().rewrite(&|e| match e {
        RowExpression::VariableReference { index, .. } => expressions[index].1.clone(),
        other => other,
    })
}

/// Try to express a conjunct as a connector pushdown predicate. Supported
/// shapes: `col <op> literal`, `literal <op> col`, `col BETWEEN a AND b`,
/// `col IN (...)` where `col` is a scan output channel or a dereference
/// chain over one (nested predicate, e.g. `base.city_id = 12`).
fn convert_to_pushdown(
    conjunct: &RowExpression,
    request: &ScanRequest,
) -> Option<PushdownPredicate> {
    let column_of = |e: &RowExpression| -> Option<ColumnPath> { deref_chain(e, request) };
    let literal_of = |e: &RowExpression| -> Option<Value> {
        match e {
            RowExpression::Constant { value, .. } if !value.is_null() => Some(value.clone()),
            _ => None,
        }
    };
    match conjunct {
        RowExpression::Call { handle, args } if args.len() == 2 => {
            let (target, value, flipped) = match (column_of(&args[0]), literal_of(&args[1])) {
                (Some(c), Some(v)) => (c, v, false),
                _ => match (column_of(&args[1]), literal_of(&args[0])) {
                    (Some(c), Some(v)) => (c, v, true),
                    _ => return None,
                },
            };
            let predicate = match (handle.name.as_str(), flipped) {
                ("eq", _) => ScalarPredicate::Eq(value),
                ("gte", false) | ("lte", true) => {
                    ScalarPredicate::Range { min: Some(value), max: None }
                }
                ("lte", false) | ("gte", true) => {
                    ScalarPredicate::Range { min: None, max: Some(value) }
                }
                // strict bounds stay in the engine (our reader ranges are
                // inclusive); pushing them would change results
                _ => return None,
            };
            Some(PushdownPredicate { target, predicate })
        }
        RowExpression::SpecialForm { form: SpecialForm::Between, args, .. } => {
            let target = column_of(&args[0])?;
            let min = literal_of(&args[1])?;
            let max = literal_of(&args[2])?;
            Some(PushdownPredicate {
                target,
                predicate: ScalarPredicate::Range { min: Some(min), max: Some(max) },
            })
        }
        RowExpression::SpecialForm { form: SpecialForm::In, args, .. } => {
            let target = column_of(&args[0])?;
            let values: Option<Vec<Value>> = args[1..].iter().map(literal_of).collect();
            Some(PushdownPredicate { target, predicate: ScalarPredicate::In(values?) })
        }
        _ => None,
    }
}

/// Resolve a bare column or a dereference chain over a scan output channel
/// into the scan's [`ColumnPath`] vocabulary.
fn deref_chain(expr: &RowExpression, request: &ScanRequest) -> Option<ColumnPath> {
    match expr {
        RowExpression::VariableReference { index, .. } => request.columns.get(*index).cloned(),
        RowExpression::SpecialForm {
            form: SpecialForm::Dereference { field_index }, args, ..
        } => {
            let base = deref_chain(&args[0], request)?;
            // recover the field name from the base expression's row type
            let base_type = args[0].data_type();
            let DataType::Row(fields) = base_type else {
                return None;
            };
            let field = fields.get(*field_index)?;
            let mut path = base.path.clone();
            path.push(field.name.clone());
            Some(ColumnPath { column: base.column, path })
        }
        _ => None,
    }
}

// ------------------------------------------ projection pushdown (general)

/// True when `e` is an *access*: a bare column reference or a dereference
/// chain over one — the unit of projection pushdown.
fn is_access(e: &RowExpression) -> bool {
    match e {
        RowExpression::VariableReference { .. } => true,
        RowExpression::SpecialForm { form: SpecialForm::Dereference { .. }, args, .. } => {
            is_access(&args[0])
        }
        _ => false,
    }
}

/// Collect the distinct maximal accesses appearing in `e`. Lambda bodies are
/// skipped (their references are lambda-local).
fn collect_access_exprs(e: &RowExpression, out: &mut Vec<RowExpression>) {
    if is_access(e) {
        if !out.contains(e) {
            out.push(e.clone());
        }
        return;
    }
    match e {
        RowExpression::Call { args, .. } | RowExpression::SpecialForm { args, .. } => {
            for a in args {
                if matches!(a, RowExpression::LambdaDefinition { .. }) {
                    continue;
                }
                collect_access_exprs(a, out);
            }
        }
        _ => {}
    }
}

/// Replace each occurrence of `accesses[i]` in `e` with a reference to
/// channel `base + i`.
fn replace_accesses(e: &RowExpression, accesses: &[RowExpression], base: usize) -> RowExpression {
    if let Some(i) = accesses.iter().position(|a| a == e) {
        return RowExpression::column(access_name(&accesses[i]), base + i, e.data_type());
    }
    match e {
        RowExpression::Call { handle, args } => RowExpression::Call {
            handle: handle.clone(),
            args: args.iter().map(|a| replace_accesses(a, accesses, base)).collect(),
        },
        RowExpression::SpecialForm { form, args, return_type } => RowExpression::SpecialForm {
            form: form.clone(),
            args: args.iter().map(|a| replace_accesses(a, accesses, base)).collect(),
            return_type: return_type.clone(),
        },
        other => other.clone(),
    }
}

/// Display name for an access expression (`base.city_id`).
fn access_name(e: &RowExpression) -> String {
    match e {
        RowExpression::VariableReference { name, .. } => name.clone(),
        RowExpression::SpecialForm {
            form: SpecialForm::Dereference { field_index }, args, ..
        } => {
            let base = access_name(&args[0]);
            match args[0].data_type() {
                DataType::Row(fields) => {
                    format!("{base}.{}", fields[*field_index].name)
                }
                _ => format!("{base}.<{field_index}>"),
            }
        }
        other => format!("{other}"),
    }
}

/// True when `accesses` is exactly the identity projection of a `width`-wide
/// input (so wrapping in a Project would be useless churn).
fn is_identity_access_list(accesses: &[RowExpression], width: usize) -> bool {
    accesses.len() == width
        && accesses.iter().enumerate().all(
            |(i, a)| matches!(a, RowExpression::VariableReference { index, .. } if *index == i),
        )
}

/// Insert an explicit Project naming the accesses an Aggregate uses, so the
/// scan-pruning rule can see them (turns `Aggregate → Scan` into
/// `Aggregate → Project → Scan`).
fn project_below_aggregate(plan: LogicalPlan) -> Result<LogicalPlan> {
    let LogicalPlan::Aggregate { input, group_by, aggregates, step } = plan else {
        return Ok(plan);
    };
    if matches!(*input, LogicalPlan::Project { .. }) || step != AggregateStep::Single {
        return Ok(LogicalPlan::Aggregate { input, group_by, aggregates, step });
    }
    let width = input.output_schema()?.len();
    let mut accesses = Vec::new();
    for g in &group_by {
        collect_access_exprs(g, &mut accesses);
    }
    for a in &aggregates {
        if let Some(arg) = &a.argument {
            collect_access_exprs(arg, &mut accesses);
        }
    }
    if accesses.is_empty() || is_identity_access_list(&accesses, width) {
        return Ok(LogicalPlan::Aggregate { input, group_by, aggregates, step });
    }
    let expressions: Vec<(String, RowExpression)> =
        accesses.iter().map(|a| (access_name(a), a.clone())).collect();
    let new_group: Vec<RowExpression> =
        group_by.iter().map(|g| replace_accesses(g, &accesses, 0)).collect();
    let new_aggs: Vec<AggregateExpr> = aggregates
        .iter()
        .map(|a| AggregateExpr {
            function: a.function,
            argument: a.argument.as_ref().map(|arg| replace_accesses(arg, &accesses, 0)),
            name: a.name.clone(),
        })
        .collect();
    Ok(LogicalPlan::Aggregate {
        input: Box::new(LogicalPlan::Project { input, expressions }),
        group_by: new_group,
        aggregates: new_aggs,
        step,
    })
}

/// Push a Project's column requirements through a Join: each side gets its
/// own Project of exactly the accesses used by the outer projection, the
/// join keys, and the residual.
fn push_project_into_join(plan: LogicalPlan) -> Result<LogicalPlan> {
    let LogicalPlan::Project { input, expressions } = plan else {
        return Ok(plan);
    };
    let LogicalPlan::Join { left, right, kind, on, residual } = *input else {
        return Ok(LogicalPlan::Project { input, expressions });
    };
    let lw = left.output_schema()?.len();
    let rw = right.output_schema()?.len();

    // Accesses in combined-schema indexing (outer exprs + residual)...
    let mut combined: Vec<RowExpression> = Vec::new();
    for (_, e) in &expressions {
        collect_access_exprs(e, &mut combined);
    }
    if let Some(res) = &residual {
        collect_access_exprs(res, &mut combined);
    }
    // ...and side-local accesses from the join keys.
    let mut left_accesses: Vec<RowExpression> = Vec::new();
    let mut right_accesses: Vec<RowExpression> = Vec::new();
    for (l, r) in &on {
        collect_access_exprs(l, &mut left_accesses);
        collect_access_exprs(r, &mut right_accesses);
    }
    for access in &combined {
        let refs = access.referenced_columns();
        debug_assert_eq!(refs.len(), 1, "an access references exactly one channel");
        if refs[0] < lw {
            if !left_accesses.contains(access) {
                left_accesses.push(access.clone());
            }
        } else {
            let local = shift_columns(access.clone(), -(lw as isize));
            if !right_accesses.contains(&local) {
                right_accesses.push(local);
            }
        }
    }

    // Nothing to prune when both sides would keep everything.
    if is_identity_access_list(&left_accesses, lw) && is_identity_access_list(&right_accesses, rw) {
        return Ok(LogicalPlan::Project {
            input: Box::new(LogicalPlan::Join { left, right, kind, on, residual }),
            expressions,
        });
    }

    let wrap = |side: Box<LogicalPlan>, accesses: &[RowExpression], width: usize| {
        if is_identity_access_list(accesses, width) || accesses.is_empty() {
            (side, true)
        } else {
            let exprs: Vec<(String, RowExpression)> =
                accesses.iter().map(|a| (access_name(a), a.clone())).collect();
            (Box::new(LogicalPlan::Project { input: side, expressions: exprs }), false)
        }
    };
    let (new_left, left_identity) = wrap(left, &left_accesses, lw);
    let (new_right, right_identity) = wrap(right, &right_accesses, rw);
    let new_lw = if left_identity { lw } else { left_accesses.len() };

    // Remappers: side-local for keys, combined for residual/outer exprs.
    let remap_left = |e: &RowExpression| -> RowExpression {
        if left_identity {
            e.clone()
        } else {
            replace_accesses(e, &left_accesses, 0)
        }
    };
    let remap_right_local = |e: &RowExpression| -> RowExpression {
        if right_identity {
            e.clone()
        } else {
            replace_accesses(e, &right_accesses, 0)
        }
    };
    let remap_combined = |e: &RowExpression| -> RowExpression {
        // left accesses stay combined-indexed (channels 0..new_lw)...
        let e = if left_identity { e.clone() } else { replace_accesses(e, &left_accesses, 0) };
        // ...right accesses are matched in combined indexing, then mapped
        // to new_lw + position.
        if right_identity {
            // only the base offset changes (lw → new_lw)
            e.rewrite(&|x| match x {
                RowExpression::VariableReference { name, index, data_type } if index >= lw => {
                    RowExpression::VariableReference { name, index: index - lw + new_lw, data_type }
                }
                other => other,
            })
        } else {
            let combined_right: Vec<RowExpression> =
                right_accesses.iter().map(|a| shift_columns(a.clone(), lw as isize)).collect();
            replace_accesses(&e, &combined_right, new_lw)
        }
    };

    let new_on: Vec<(RowExpression, RowExpression)> =
        on.iter().map(|(l, r)| (remap_left(l), remap_right_local(r))).collect();
    let new_residual = residual.as_ref().map(&remap_combined);
    let new_exprs: Vec<(String, RowExpression)> =
        expressions.iter().map(|(n, e)| (n.clone(), remap_combined(e))).collect();
    Ok(LogicalPlan::Project {
        input: Box::new(LogicalPlan::Join {
            left: new_left,
            right: new_right,
            kind,
            on: new_on,
            residual: new_residual,
        }),
        expressions: new_exprs,
    })
}

/// Compose stacked Projects into one.
fn merge_projects(plan: LogicalPlan) -> Result<LogicalPlan> {
    let LogicalPlan::Project { input, expressions } = plan else {
        return Ok(plan);
    };
    let LogicalPlan::Project { input: inner, expressions: inner_exprs } = *input else {
        return Ok(LogicalPlan::Project { input, expressions });
    };
    let composed: Vec<(String, RowExpression)> =
        expressions.into_iter().map(|(n, e)| (n, inline_projection(&e, &inner_exprs))).collect();
    Ok(LogicalPlan::Project { input: inner, expressions: composed })
}

// --------------------------------------------- projection pushdown (scans)

/// Narrow a scan's projected columns to what its consumers actually use,
/// rewriting dereference chains into pruned nested paths (§V.D). Matches
/// `Project → [Filter →] TableScan`.
fn prune_scan_projection(plan: LogicalPlan, catalogs: &CatalogRegistry) -> Result<LogicalPlan> {
    let LogicalPlan::Project { input, expressions } = plan else {
        return Ok(plan);
    };
    // Peel an optional residual filter.
    let (filter, scan) = match *input {
        LogicalPlan::Filter { input: inner, predicate } => (Some(predicate), *inner),
        other => (None, other),
    };
    let LogicalPlan::TableScan { catalog, schema, table, table_schema, request } = scan else {
        // not a scan: rebuild untouched
        let inner = match filter {
            Some(predicate) => LogicalPlan::Filter { input: Box::new(scan), predicate },
            None => scan,
        };
        return Ok(LogicalPlan::Project { input: Box::new(inner), expressions });
    };
    let connector = catalogs.get(&catalog)?;
    let caps = connector.capabilities();
    if !caps.projection || request.aggregation.is_some() {
        let scan = LogicalPlan::TableScan { catalog, schema, table, table_schema, request };
        let inner = match filter {
            Some(predicate) => LogicalPlan::Filter { input: Box::new(scan), predicate },
            None => scan,
        };
        return Ok(LogicalPlan::Project { input: Box::new(inner), expressions });
    }

    // Collect the access paths used by the project expressions and the
    // residual filter. When nested pruning is unsupported (or a column is
    // used whole anywhere), fall back to whole columns.
    let mut needed: Vec<ColumnPath> = Vec::new();
    let mut add_path = |p: ColumnPath| {
        if !needed.contains(&p) {
            needed.push(p);
        }
    };
    let mut exprs_to_scan: Vec<&RowExpression> = expressions.iter().map(|(_, e)| e).collect();
    if let Some(f) = &filter {
        exprs_to_scan.push(f);
    }
    for e in &exprs_to_scan {
        for access in collect_accesses(e, &request) {
            let access =
                if caps.nested_pruning { access } else { ColumnPath::whole(access.column) };
            add_path(access);
        }
    }
    // Columns used whole subsume their nested paths.
    let whole: Vec<String> =
        needed.iter().filter(|p| p.path.is_empty()).map(|p| p.column.clone()).collect();
    needed.retain(|p| p.path.is_empty() || !whole.contains(&p.column));

    // Build the rewrite map: each retained access path becomes a channel.
    let new_columns = needed.clone();
    let new_request = ScanRequest { columns: new_columns.clone(), ..request.clone() };

    let rewrite = |e: &RowExpression| -> RowExpression {
        rewrite_accesses(e, &request, &new_columns, &table_schema)
    };
    let new_expressions: Vec<(String, RowExpression)> =
        expressions.iter().map(|(n, e)| (n.clone(), rewrite(e))).collect();
    let new_filter = filter.as_ref().map(rewrite);

    let scan =
        LogicalPlan::TableScan { catalog, schema, table, table_schema, request: new_request };
    let inner = match new_filter {
        Some(predicate) => LogicalPlan::Filter { input: Box::new(scan), predicate },
        None => scan,
    };
    Ok(LogicalPlan::Project { input: Box::new(inner), expressions: new_expressions })
}

/// Every maximal access path (bare channel or dereference chain) in `expr`.
fn collect_accesses(expr: &RowExpression, request: &ScanRequest) -> Vec<ColumnPath> {
    let mut out = Vec::new();
    collect_accesses_into(expr, request, &mut out);
    out
}

fn collect_accesses_into(expr: &RowExpression, request: &ScanRequest, out: &mut Vec<ColumnPath>) {
    if let Some(path) = deref_chain(expr, request) {
        out.push(path);
        return;
    }
    match expr {
        RowExpression::Call { args, .. } | RowExpression::SpecialForm { args, .. } => {
            for a in args {
                // lambda bodies reference lambda parameters, not input
                // channels — they must never be mistaken for scan accesses
                if matches!(a, RowExpression::LambdaDefinition { .. }) {
                    continue;
                }
                collect_accesses_into(a, request, out);
            }
        }
        _ => {}
    }
}

/// Replace each access path in `expr` with a reference to its new channel.
fn rewrite_accesses(
    expr: &RowExpression,
    old_request: &ScanRequest,
    new_columns: &[ColumnPath],
    table_schema: &presto_common::Schema,
) -> RowExpression {
    if let Some(path) = deref_chain(expr, old_request) {
        // exact path match, or fall back to the whole-column channel with
        // the dereference re-applied on top
        if let Some(idx) = new_columns.iter().position(|c| *c == path) {
            let dt = path.resolve_type(table_schema).unwrap_or(DataType::Varchar);
            return RowExpression::column(path.dotted(), idx, dt);
        }
        if let RowExpression::SpecialForm { form, args, return_type } = expr {
            let new_args: Vec<RowExpression> = args
                .iter()
                .map(|a| rewrite_accesses(a, old_request, new_columns, table_schema))
                .collect();
            return RowExpression::SpecialForm {
                form: form.clone(),
                args: new_args,
                return_type: return_type.clone(),
            };
        }
        if let RowExpression::VariableReference { name, data_type, .. } = expr {
            if let Some(idx) =
                new_columns.iter().position(|c| c.path.is_empty() && c.column == path.column)
            {
                return RowExpression::column(name.clone(), idx, data_type.clone());
            }
        }
        return expr.clone();
    }
    match expr {
        RowExpression::Call { handle, args } => RowExpression::Call {
            handle: handle.clone(),
            args: args
                .iter()
                .map(|a| rewrite_accesses(a, old_request, new_columns, table_schema))
                .collect(),
        },
        RowExpression::SpecialForm { form, args, return_type } => RowExpression::SpecialForm {
            form: form.clone(),
            args: args
                .iter()
                .map(|a| rewrite_accesses(a, old_request, new_columns, table_schema))
                .collect(),
            return_type: return_type.clone(),
        },
        // lambda bodies are parameter-scoped: leave them untouched
        lambda @ RowExpression::LambdaDefinition { .. } => lambda.clone(),
        other => other.clone(),
    }
}

// ------------------------------------------------------ aggregation pushdown

/// §IV.B: `Aggregate(single)` directly over a scan of a connector that
/// supports aggregation becomes a pushed-down scan plus a final-over-partial
/// aggregation (Fig 2's right-hand plan).
fn push_aggregation(plan: LogicalPlan, catalogs: &CatalogRegistry) -> Result<LogicalPlan> {
    let LogicalPlan::Aggregate { input, group_by, aggregates, step: AggregateStep::Single } = plan
    else {
        return Ok(plan);
    };
    let rebuild =
        |input: Box<LogicalPlan>, group_by: Vec<RowExpression>, aggregates: Vec<AggregateExpr>| {
            LogicalPlan::Aggregate { input, group_by, aggregates, step: AggregateStep::Single }
        };
    // See through a pruning Project over the scan (inserted by projection
    // pushdown): inline its expressions into the aggregate's own.
    let (input, group_by, aggregates, original) = match *input {
        LogicalPlan::Project { input: inner, expressions }
            if matches!(*inner, LogicalPlan::TableScan { .. }) =>
        {
            let original = rebuild(
                Box::new(LogicalPlan::Project {
                    input: inner.clone(),
                    expressions: expressions.clone(),
                }),
                group_by.clone(),
                aggregates.clone(),
            );
            let inlined_group: Vec<RowExpression> =
                group_by.iter().map(|g| inline_projection(g, &expressions)).collect();
            let inlined_aggs: Vec<AggregateExpr> = aggregates
                .iter()
                .map(|a| AggregateExpr {
                    function: a.function,
                    argument: a.argument.as_ref().map(|arg| inline_projection(arg, &expressions)),
                    name: a.name.clone(),
                })
                .collect();
            (inner, inlined_group, inlined_aggs, Some(original))
        }
        other => (Box::new(other), group_by, aggregates, None),
    };
    // On decline, restore the original (pruned-projection) shape.
    let rebuild = move |input: Box<LogicalPlan>,
                        group_by: Vec<RowExpression>,
                        aggregates: Vec<AggregateExpr>| {
        match original {
            Some(orig) => orig,
            None => {
                LogicalPlan::Aggregate { input, group_by, aggregates, step: AggregateStep::Single }
            }
        }
    };
    let LogicalPlan::TableScan { catalog, schema, table, table_schema, request } = *input else {
        return Ok(rebuild(input, group_by, aggregates));
    };
    let connector = catalogs.get(&catalog)?;
    let eligible = connector.capabilities().aggregation
        && request.aggregation.is_none()
        && request.limit.is_none();
    if !eligible {
        let scan = LogicalPlan::TableScan { catalog, schema, table, table_schema, request };
        return Ok(rebuild(Box::new(scan), group_by, aggregates));
    }

    // Group keys and aggregate arguments must be plain scan-column accesses,
    // and the functions must have mergeable partials.
    let mut group_paths = Vec::with_capacity(group_by.len());
    for g in &group_by {
        match deref_chain(g, &request) {
            Some(p) => group_paths.push(p),
            None => {
                let scan = LogicalPlan::TableScan { catalog, schema, table, table_schema, request };
                return Ok(rebuild(Box::new(scan), group_by, aggregates));
            }
        }
    }
    let mut agg_specs = Vec::with_capacity(aggregates.len());
    for a in &aggregates {
        let ok_fn = matches!(
            a.function,
            AggregateFunction::Count
                | AggregateFunction::CountStar
                | AggregateFunction::Sum
                | AggregateFunction::Min
                | AggregateFunction::Max
        );
        let arg_path = match &a.argument {
            None => None,
            Some(arg) => match deref_chain(arg, &request) {
                Some(p) => Some(p),
                None => {
                    let scan =
                        LogicalPlan::TableScan { catalog, schema, table, table_schema, request };
                    return Ok(rebuild(Box::new(scan), group_by, aggregates));
                }
            },
        };
        if !ok_fn {
            let scan = LogicalPlan::TableScan { catalog, schema, table, table_schema, request };
            return Ok(rebuild(Box::new(scan), group_by, aggregates));
        }
        agg_specs.push((a.function, arg_path));
    }

    // Build the pushed-down scan; its output is group columns then partials.
    let new_request = ScanRequest {
        columns: Vec::new(),
        aggregation: Some(AggregationPushdown {
            group_by: group_paths.clone(),
            aggregates: agg_specs,
        }),
        ..request
    };
    let scan_schema = new_request.output_schema(&table_schema)?;
    let scan =
        LogicalPlan::TableScan { catalog, schema, table, table_schema, request: new_request };
    // Final aggregation over the partial columns.
    let final_group: Vec<RowExpression> = (0..group_paths.len())
        .map(|i| {
            RowExpression::column(
                scan_schema.field_at(i).name.clone(),
                i,
                scan_schema.field_at(i).data_type.clone(),
            )
        })
        .collect();
    let final_aggs: Vec<AggregateExpr> = aggregates
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let channel = group_paths.len() + i;
            AggregateExpr {
                function: a.function,
                argument: Some(RowExpression::column(
                    scan_schema.field_at(channel).name.clone(),
                    channel,
                    scan_schema.field_at(channel).data_type.clone(),
                )),
                name: a.name.clone(),
            }
        })
        .collect();
    Ok(LogicalPlan::Aggregate {
        input: Box::new(scan),
        group_by: final_group,
        aggregates: final_aggs,
        step: AggregateStep::FinalOverPartial,
    })
}

// ------------------------------------------------------------ limit pushdown

fn push_limit(plan: LogicalPlan, catalogs: &CatalogRegistry) -> Result<LogicalPlan> {
    let LogicalPlan::Limit { input, count } = plan else {
        return Ok(plan);
    };
    // Descend through row-preserving projects to reach the scan.
    fn try_push(
        node: LogicalPlan,
        count: usize,
        catalogs: &CatalogRegistry,
    ) -> Result<LogicalPlan> {
        match node {
            LogicalPlan::Project { input, expressions } => {
                let pushed = try_push(*input, count, catalogs)?;
                Ok(LogicalPlan::Project { input: Box::new(pushed), expressions })
            }
            LogicalPlan::TableScan { catalog, schema, table, table_schema, mut request } => {
                let connector = catalogs.get(&catalog)?;
                // A limit hint composes with pushed predicates (connectors
                // apply predicate first), but not with pushed aggregations.
                if connector.capabilities().limit && request.aggregation.is_none() {
                    request.limit = Some(request.limit.map_or(count, |l| l.min(count)));
                }
                Ok(LogicalPlan::TableScan { catalog, schema, table, table_schema, request })
            }
            other => Ok(other),
        }
    }
    let pushed = try_push(*input, count, catalogs)?;
    // the engine-side Limit stays: pushdown is a hint, not a guarantee
    Ok(LogicalPlan::Limit { input: Box::new(pushed), count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{Field, Schema};
    use presto_connectors::memory::MemoryConnector;
    use presto_expr::{FunctionHandle, FunctionRegistry};
    use std::sync::Arc;

    fn catalogs() -> CatalogRegistry {
        let registry = CatalogRegistry::new();
        let memory = MemoryConnector::new();
        memory
            .create_table(
                "default",
                "trips",
                Schema::new(vec![
                    Field::new("datestr", DataType::Varchar),
                    Field::new(
                        "base",
                        DataType::row(vec![
                            Field::new("driver_uuid", DataType::Varchar),
                            Field::new("city_id", DataType::Bigint),
                        ]),
                    ),
                    Field::new("fare", DataType::Double),
                ])
                .unwrap(),
                vec![],
            )
            .unwrap();
        registry.register("memory", Arc::new(memory));
        let druid = presto_connectors::druid::druid_connector();
        druid
            .store()
            .create_table(
                "default",
                "events",
                Schema::new(vec![
                    Field::new("ts", DataType::Timestamp),
                    Field::new("country", DataType::Varchar),
                    Field::new("clicks", DataType::Bigint),
                ])
                .unwrap(),
            )
            .unwrap();
        registry.register("druid", Arc::new(druid));
        registry
    }

    fn evaluator() -> Evaluator {
        Evaluator::new(FunctionRegistry::new())
    }

    fn trips_scan() -> LogicalPlan {
        let schema = Schema::new(vec![
            Field::new("datestr", DataType::Varchar),
            Field::new(
                "base",
                DataType::row(vec![
                    Field::new("driver_uuid", DataType::Varchar),
                    Field::new("city_id", DataType::Bigint),
                ]),
            ),
            Field::new("fare", DataType::Double),
        ])
        .unwrap();
        LogicalPlan::TableScan {
            catalog: "memory".into(),
            schema: "default".into(),
            table: "trips".into(),
            table_schema: schema.clone(),
            request: ScanRequest::project(vec![
                ColumnPath::whole("datestr"),
                ColumnPath::whole("base"),
                ColumnPath::whole("fare"),
            ]),
        }
    }

    fn base_type() -> DataType {
        DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
        ])
    }

    fn eq(l: RowExpression, r: RowExpression) -> RowExpression {
        RowExpression::Call {
            handle: FunctionHandle::new(
                "eq",
                vec![l.data_type(), r.data_type()],
                DataType::Boolean,
            ),
            args: vec![l, r],
        }
    }

    fn city_id_deref() -> RowExpression {
        RowExpression::SpecialForm {
            form: SpecialForm::Dereference { field_index: 1 },
            args: vec![RowExpression::column("base", 1, base_type())],
            return_type: DataType::Bigint,
        }
    }

    #[test]
    fn constant_folding_collapses_literal_math() {
        let expr = RowExpression::Call {
            handle: FunctionHandle::new(
                "add",
                vec![DataType::Bigint, DataType::Bigint],
                DataType::Bigint,
            ),
            args: vec![RowExpression::bigint(2), RowExpression::bigint(3)],
        };
        let plan = LogicalPlan::Project {
            input: Box::new(trips_scan()),
            expressions: vec![("five".into(), expr)],
        };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        fn find_project(p: &LogicalPlan) -> Option<&Vec<(String, RowExpression)>> {
            match p {
                LogicalPlan::Project { expressions, .. } => Some(expressions),
                _ => p.children().into_iter().find_map(find_project),
            }
        }
        let exprs = find_project(&optimized).unwrap();
        assert_eq!(
            exprs[0].1,
            RowExpression::Constant { value: Value::Bigint(5), data_type: DataType::Bigint }
        );
    }

    #[test]
    fn predicate_pushes_into_scan_including_nested() {
        // WHERE datestr = '2017-03-02' AND base.city_id = 12
        let predicate = RowExpression::combine_conjuncts(vec![
            eq(
                RowExpression::column("datestr", 0, DataType::Varchar),
                RowExpression::varchar("2017-03-02"),
            ),
            eq(city_id_deref(), RowExpression::bigint(12)),
        ])
        .unwrap();
        let plan = LogicalPlan::Filter { input: Box::new(trips_scan()), predicate };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        // the filter disappears entirely; both conjuncts are in the request
        fn find_scan(p: &LogicalPlan) -> Option<&ScanRequest> {
            match p {
                LogicalPlan::TableScan { request, .. } => Some(request),
                _ => p.children().into_iter().find_map(find_scan),
            }
        }
        assert!(!matches!(optimized, LogicalPlan::Filter { .. }));
        let request = find_scan(&optimized).unwrap();
        assert_eq!(request.predicate.len(), 2);
        assert_eq!(request.predicate[1].target.dotted(), "base.city_id");
        assert_eq!(request.predicate[1].predicate, ScalarPredicate::Eq(Value::Bigint(12)));
    }

    #[test]
    fn nested_column_pruning_rewrites_projection() {
        // SELECT base.city_id FROM trips
        let plan = LogicalPlan::Project {
            input: Box::new(trips_scan()),
            expressions: vec![("city".into(), city_id_deref())],
        };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        let LogicalPlan::Project { input, expressions } = &optimized else {
            panic!("expected project, got {}", optimized.label());
        };
        let LogicalPlan::TableScan { request, .. } = input.as_ref() else {
            panic!("expected scan under project");
        };
        assert_eq!(request.columns.len(), 1);
        assert_eq!(request.columns[0].dotted(), "base.city_id");
        // projection expression became a bare channel reference
        assert!(matches!(expressions[0].1, RowExpression::VariableReference { index: 0, .. }));
    }

    #[test]
    fn aggregation_pushes_into_druid() {
        let druid_schema = Schema::new(vec![
            Field::new("ts", DataType::Timestamp),
            Field::new("country", DataType::Varchar),
            Field::new("clicks", DataType::Bigint),
        ])
        .unwrap();
        let scan = LogicalPlan::TableScan {
            catalog: "druid".into(),
            schema: "default".into(),
            table: "events".into(),
            table_schema: druid_schema,
            request: ScanRequest::project(vec![
                ColumnPath::whole("ts"),
                ColumnPath::whole("country"),
                ColumnPath::whole("clicks"),
            ]),
        };
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan),
            group_by: vec![RowExpression::column("country", 1, DataType::Varchar)],
            aggregates: vec![AggregateExpr {
                function: AggregateFunction::Sum,
                argument: Some(RowExpression::column("clicks", 2, DataType::Bigint)),
                name: "total".into(),
            }],
            step: AggregateStep::Single,
        };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        let LogicalPlan::Aggregate { input, step, .. } = &optimized else {
            panic!("expected final aggregate");
        };
        assert_eq!(*step, AggregateStep::FinalOverPartial);
        let LogicalPlan::TableScan { request, .. } = input.as_ref() else {
            panic!("expected scan");
        };
        let agg = request.aggregation.as_ref().expect("pushed aggregation");
        assert_eq!(agg.group_by[0].column, "country");
        assert_eq!(agg.aggregates[0].0, AggregateFunction::Sum);
    }

    #[test]
    fn aggregation_does_not_push_into_memory_connector() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(trips_scan()),
            group_by: vec![],
            aggregates: vec![AggregateExpr {
                function: AggregateFunction::CountStar,
                argument: None,
                name: "cnt".into(),
            }],
            step: AggregateStep::Single,
        };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        let LogicalPlan::Aggregate { input, step, .. } = &optimized else {
            panic!("expected aggregate");
        };
        assert_eq!(*step, AggregateStep::Single);
        let LogicalPlan::TableScan { request, .. } = input.as_ref() else {
            panic!("expected scan");
        };
        assert!(request.aggregation.is_none());
    }

    #[test]
    fn limit_pushes_through_project_into_scan() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(trips_scan()),
                expressions: vec![(
                    "datestr".into(),
                    RowExpression::column("datestr", 0, DataType::Varchar),
                )],
            }),
            count: 7,
        };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        fn find_scan(p: &LogicalPlan) -> Option<&ScanRequest> {
            match p {
                LogicalPlan::TableScan { request, .. } => Some(request),
                _ => p.children().into_iter().find_map(find_scan),
            }
        }
        assert_eq!(find_scan(&optimized).unwrap().limit, Some(7));
        // engine-side limit preserved
        assert!(matches!(optimized, LogicalPlan::Limit { count: 7, .. }));
    }

    #[test]
    fn sort_limit_fuses_to_topn() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(trips_scan()),
                keys: vec![SortKey {
                    expr: RowExpression::column("fare", 2, DataType::Double),
                    descending: true,
                }],
            }),
            count: 10,
        };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        assert!(matches!(optimized, LogicalPlan::TopN { count: 10, .. }));
    }

    #[test]
    fn geo_rewrite_builds_geojoin() {
        // trips(lng, lat) CROSS JOIN cities(city_id, shape)
        // WHERE st_contains(shape, st_point(lng, lat))
        let trips = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("lng", DataType::Double),
                Field::new("lat", DataType::Double),
            ])
            .unwrap(),
            rows: vec![],
        };
        let cities = LogicalPlan::Values {
            schema: Schema::new(vec![
                Field::new("city_id", DataType::Bigint),
                Field::new("shape", DataType::Varchar),
            ])
            .unwrap(),
            rows: vec![],
        };
        let st_point = RowExpression::Call {
            handle: FunctionHandle::new(
                "st_point",
                vec![DataType::Double, DataType::Double],
                DataType::Varchar,
            ),
            args: vec![
                RowExpression::column("lng", 0, DataType::Double),
                RowExpression::column("lat", 1, DataType::Double),
            ],
        };
        let st_contains = RowExpression::Call {
            handle: FunctionHandle::new(
                "st_contains",
                vec![DataType::Varchar, DataType::Varchar],
                DataType::Boolean,
            ),
            args: vec![RowExpression::column("shape", 3, DataType::Varchar), st_point],
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(trips),
                right: Box::new(cities),
                kind: JoinKind::Inner,
                on: vec![],
                residual: None,
            }),
            predicate: st_contains,
        };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        let LogicalPlan::GeoJoin { fence_shape, probe_lng, .. } = &optimized else {
            panic!("expected GeoJoin, got {}", optimized.label());
        };
        // shape expression remapped to fence-local channel 1
        assert_eq!(fence_shape.referenced_columns(), vec![1]);
        assert_eq!(probe_lng.referenced_columns(), vec![0]);
    }

    #[test]
    fn join_predicates_route_to_sides_and_keys() {
        // filter: left.fare > 10 AND left.datestr = right.datestr
        let left = trips_scan();
        let right = trips_scan();
        let gt_fare = RowExpression::Call {
            handle: FunctionHandle::new(
                "gte",
                vec![DataType::Double, DataType::Double],
                DataType::Boolean,
            ),
            args: vec![
                RowExpression::column("fare", 2, DataType::Double),
                RowExpression::double(10.0),
            ],
        };
        let join_key = eq(
            RowExpression::column("datestr", 0, DataType::Varchar),
            RowExpression::column("datestr_r", 3, DataType::Varchar),
        );
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind: JoinKind::Inner,
                on: vec![],
                residual: None,
            }),
            predicate: RowExpression::combine_conjuncts(vec![gt_fare, join_key]).unwrap(),
        };
        let optimized =
            optimize(plan, &catalogs(), &evaluator(), &OptimizerConfig::default()).unwrap();
        fn find_join(
            p: &LogicalPlan,
        ) -> Option<(&Vec<(RowExpression, RowExpression)>, &LogicalPlan)> {
            match p {
                LogicalPlan::Join { on, left, .. } => Some((on, left)),
                _ => p.children().into_iter().find_map(find_join),
            }
        }
        let (on, left) = find_join(&optimized).expect("join survives");
        assert_eq!(on.len(), 1, "equality conjunct became a join key");
        // fare predicate went into the left scan
        fn scan_request(p: &LogicalPlan) -> Option<&ScanRequest> {
            match p {
                LogicalPlan::TableScan { request, .. } => Some(request),
                _ => p.children().into_iter().find_map(scan_request),
            }
        }
        assert_eq!(scan_request(left).unwrap().predicate.len(), 1);
    }
}
