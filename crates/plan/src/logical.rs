//! The logical plan tree.
//!
//! Expressions inside plan nodes are [`RowExpression`]s whose variable
//! references are **channel indexes into the node's input schema** (inputs
//! of a join concatenate left then right).

use presto_common::{DataType, Field, PrestoError, Result, Schema, Value};
use presto_connectors::ScanRequest;
use presto_expr::{AggregateFunction, RowExpression};

/// Join kinds supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT OUTER JOIN.
    Left,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Key expression over the input schema.
    pub expr: RowExpression,
    /// Descending order?
    pub descending: bool,
}

/// One aggregate in an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateExpr {
    /// The function.
    pub function: AggregateFunction,
    /// Argument (`None` = `count(*)`).
    pub argument: Option<RowExpression>,
    /// Output column name.
    pub name: String,
}

/// Whether an Aggregate node sees raw rows or connector-produced partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateStep {
    /// Raw input rows; one-shot aggregation.
    Single,
    /// Input rows are partial aggregates from aggregation pushdown (Fig 2's
    /// "final aggregation" above the connector): counts are summed, sums are
    /// summed, min/max are re-min/maxed.
    FinalOverPartial,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a connector table; all pushdowns live in `request`.
    TableScan {
        /// Catalog (connector) name.
        catalog: String,
        /// Schema within the catalog.
        schema: String,
        /// Table name.
        table: String,
        /// Full table schema (pre-pushdown).
        table_schema: Schema,
        /// Pushdowns negotiated by the optimizer.
        request: ScanRequest,
    },
    /// Literal rows.
    Values {
        /// Output schema.
        schema: Schema,
        /// The rows.
        rows: Vec<Vec<Value>>,
    },
    /// WHERE / HAVING.
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Boolean predicate over the input schema.
        predicate: RowExpression,
    },
    /// SELECT list / expression projection.
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// `(output name, expression)` pairs.
        expressions: Vec<(String, RowExpression)>,
    },
    /// GROUP BY + aggregates (or global aggregation when `group_by` empty).
    Aggregate {
        /// Input.
        input: Box<LogicalPlan>,
        /// Group-by key expressions.
        group_by: Vec<RowExpression>,
        /// Aggregates.
        aggregates: Vec<AggregateExpr>,
        /// Raw or final-over-partial.
        step: AggregateStep,
    },
    /// Join. Empty `on` = cross join (with optional residual predicate —
    /// what the geospatial rewrite pattern-matches).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join kind.
        kind: JoinKind,
        /// Equi-join key pairs `(left key over left schema, right key over
        /// right schema)`.
        on: Vec<(RowExpression, RowExpression)>,
        /// Non-equi residual over the concatenated schema.
        residual: Option<RowExpression>,
    },
    /// The §VI.E QuadTree join produced by the geospatial rewrite (Fig 13):
    /// probe points against an index built on the fly over the fence side.
    GeoJoin {
        /// Probe side (e.g. trips).
        probe: Box<LogicalPlan>,
        /// Fence side (e.g. cities); consumed entirely to build the index.
        fences: Box<LogicalPlan>,
        /// Probe longitude expression (over probe schema).
        probe_lng: RowExpression,
        /// Probe latitude expression (over probe schema).
        probe_lat: RowExpression,
        /// WKT geometry expression (over fence schema).
        fence_shape: RowExpression,
    },
    /// ORDER BY.
    Sort {
        /// Input.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// ORDER BY + LIMIT fused.
    TopN {
        /// Input.
        input: Box<LogicalPlan>,
        /// Sort keys.
        keys: Vec<SortKey>,
        /// Row count.
        count: usize,
    },
    /// LIMIT.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// Row count.
        count: usize,
    },
    /// Final column naming (the query's SELECT list names).
    Output {
        /// Input.
        input: Box<LogicalPlan>,
        /// Output names, one per input column.
        names: Vec<String>,
    },
    /// UNION ALL: concatenation of inputs with identical column types.
    Union {
        /// The unioned inputs (at least two).
        inputs: Vec<LogicalPlan>,
    },
    /// Pages arriving from another plan fragment (inserted by the
    /// fragmenter; never produced by the analyzer).
    RemoteSource {
        /// Producing fragment.
        fragment: u32,
        /// Schema of the exchanged pages.
        schema: Schema,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn output_schema(&self) -> Result<Schema> {
        match self {
            LogicalPlan::TableScan { table_schema, request, .. } => {
                request.output_schema(table_schema)
            }
            LogicalPlan::Values { schema, .. } => Ok(schema.clone()),
            LogicalPlan::Filter { input, .. } => input.output_schema(),
            LogicalPlan::Project { input, expressions } => {
                let _ = input.output_schema()?; // validate subtree
                let fields = expressions
                    .iter()
                    .map(|(name, e)| Field::new(name.clone(), e.data_type()))
                    .collect();
                Schema::new(fields)
            }
            LogicalPlan::Aggregate { group_by, aggregates, step, .. } => {
                let mut fields = Vec::with_capacity(group_by.len() + aggregates.len());
                for (i, g) in group_by.iter().enumerate() {
                    fields.push(Field::new(format!("group_{i}"), g.data_type()));
                }
                for a in aggregates {
                    let out = match step {
                        // partial columns already carry the output type
                        AggregateStep::FinalOverPartial => match &a.argument {
                            Some(arg) => arg.data_type(),
                            None => DataType::Bigint,
                        },
                        AggregateStep::Single => a
                            .function
                            .return_type(a.argument.as_ref().map(|e| e.data_type()).as_ref())?,
                    };
                    fields.push(Field::new(a.name.clone(), out));
                }
                Schema::new(fields)
            }
            LogicalPlan::Join { left, right, .. } => {
                let mut fields = left.output_schema()?.fields().to_vec();
                for f in right.output_schema()?.fields() {
                    // joins may duplicate names across sides; disambiguate
                    let name = if fields.iter().any(|g| g.name == f.name) {
                        format!("{}_r", f.name)
                    } else {
                        f.name.clone()
                    };
                    fields.push(Field::new(name, f.data_type.clone()));
                }
                Schema::new(fields)
            }
            LogicalPlan::GeoJoin { probe, fences, .. } => {
                let mut fields = probe.output_schema()?.fields().to_vec();
                for f in fences.output_schema()?.fields() {
                    let name = if fields.iter().any(|g| g.name == f.name) {
                        format!("{}_r", f.name)
                    } else {
                        f.name.clone()
                    };
                    fields.push(Field::new(name, f.data_type.clone()));
                }
                Schema::new(fields)
            }
            LogicalPlan::Sort { input, .. } => input.output_schema(),
            LogicalPlan::TopN { input, .. } => input.output_schema(),
            LogicalPlan::Limit { input, .. } => input.output_schema(),
            LogicalPlan::Union { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| PrestoError::Plan("empty UNION".into()))?
                    .output_schema()?;
                for other in &inputs[1..] {
                    let schema = other.output_schema()?;
                    if schema.len() != first.len()
                        || schema
                            .fields()
                            .iter()
                            .zip(first.fields())
                            .any(|(a, b)| a.data_type != b.data_type)
                    {
                        return Err(PrestoError::Analysis(format!(
                            "UNION inputs have mismatched types: {first} vs {schema}"
                        )));
                    }
                }
                Ok(first)
            }
            LogicalPlan::Output { input, names } => {
                let input_schema = input.output_schema()?;
                if names.len() != input_schema.len() {
                    return Err(PrestoError::Plan(format!(
                        "output has {} names for {} columns",
                        names.len(),
                        input_schema.len()
                    )));
                }
                Schema::new(
                    names
                        .iter()
                        .zip(input_schema.fields())
                        .map(|(n, f)| Field::new(n.clone(), f.data_type.clone()))
                        .collect(),
                )
            }
            LogicalPlan::RemoteSource { schema, .. } => Ok(schema.clone()),
        }
    }

    /// Children of this node, in input order.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan { .. }
            | LogicalPlan::Values { .. }
            | LogicalPlan::RemoteSource { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::TopN { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Output { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::GeoJoin { probe, fences, .. } => vec![probe, fences],
            LogicalPlan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// Short node label for EXPLAIN output.
    pub fn label(&self) -> String {
        match self {
            LogicalPlan::TableScan { catalog, schema, table, request, .. } => {
                let mut parts = Vec::new();
                if !request.predicate.is_empty() {
                    parts.push(format!("predicate ×{}", request.predicate.len()));
                }
                if request.aggregation.is_some() {
                    parts.push("aggregation pushed down".to_string());
                }
                if let Some(l) = request.limit {
                    parts.push(format!("limit {l}"));
                }
                let nested = request.columns.iter().filter(|c| !c.path.is_empty()).count();
                if nested > 0 {
                    parts.push(format!("nested pruning ×{nested}"));
                }
                if parts.is_empty() {
                    format!("TableScan[{catalog}.{schema}.{table}]")
                } else {
                    format!("TableScan[{catalog}.{schema}.{table}: {}]", parts.join(", "))
                }
            }
            LogicalPlan::Values { rows, .. } => format!("Values[{} rows]", rows.len()),
            LogicalPlan::Filter { predicate, .. } => format!("Filter[{predicate}]"),
            LogicalPlan::Project { expressions, .. } => {
                let names: Vec<&str> = expressions.iter().map(|(n, _)| n.as_str()).collect();
                format!("Project[{}]", names.join(", "))
            }
            LogicalPlan::Aggregate { group_by, aggregates, step, .. } => {
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| format!("{}({})", a.function.name(), a.name))
                    .collect();
                let step_label = match step {
                    AggregateStep::Single => "",
                    AggregateStep::FinalOverPartial => " final",
                };
                format!("Aggregate{step_label}[groups={}, {}]", group_by.len(), aggs.join(", "))
            }
            LogicalPlan::Join { kind, on, residual, .. } => {
                let mut s = format!("{kind:?}Join[keys={}", on.len());
                if residual.is_some() {
                    s.push_str(", residual");
                }
                s.push(']');
                s
            }
            LogicalPlan::GeoJoin { .. } => "GeoJoin[build_geo_index → geo_contains]".to_string(),
            LogicalPlan::Sort { keys, .. } => format!("Sort[{} keys]", keys.len()),
            LogicalPlan::TopN { keys, count, .. } => {
                format!("TopN[{count} rows, {} keys]", keys.len())
            }
            LogicalPlan::Limit { count, .. } => format!("Limit[{count}]"),
            LogicalPlan::Output { names, .. } => format!("Output[{}]", names.join(", ")),
            LogicalPlan::Union { inputs } => format!("UnionAll[{} inputs]", inputs.len()),
            LogicalPlan::RemoteSource { fragment, .. } => {
                format!("RemoteSource[fragment {fragment}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_connectors::ColumnPath;

    fn scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            catalog: "memory".into(),
            schema: "default".into(),
            table: "t".into(),
            table_schema: Schema::new(vec![
                Field::new("a", DataType::Bigint),
                Field::new("b", DataType::Varchar),
            ])
            .unwrap(),
            request: ScanRequest::project(vec![ColumnPath::whole("a"), ColumnPath::whole("b")]),
        }
    }

    #[test]
    fn schemas_flow_through_nodes() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(scan()),
                expressions: vec![(
                    "a_plus_one".into(),
                    RowExpression::Call {
                        handle: presto_expr::FunctionHandle::new(
                            "add",
                            vec![DataType::Bigint, DataType::Bigint],
                            DataType::Bigint,
                        ),
                        args: vec![
                            RowExpression::column("a", 0, DataType::Bigint),
                            RowExpression::bigint(1),
                        ],
                    },
                )],
            }),
            count: 10,
        };
        let schema = plan.output_schema().unwrap();
        assert_eq!(schema.len(), 1);
        assert_eq!(schema.fields()[0].name, "a_plus_one");
        assert_eq!(schema.fields()[0].data_type, DataType::Bigint);
    }

    #[test]
    fn join_disambiguates_duplicate_names() {
        let plan = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            kind: JoinKind::Inner,
            on: vec![],
            residual: None,
        };
        let schema = plan.output_schema().unwrap();
        assert_eq!(
            schema.fields().iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b", "a_r", "b_r"]
        );
    }

    #[test]
    fn aggregate_schema_for_both_steps() {
        let agg = |step| LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group_by: vec![RowExpression::column("b", 1, DataType::Varchar)],
            aggregates: vec![AggregateExpr {
                function: AggregateFunction::Count,
                argument: Some(RowExpression::column("a", 0, DataType::Bigint)),
                name: "cnt".into(),
            }],
            step,
        };
        let single = agg(AggregateStep::Single).output_schema().unwrap();
        assert_eq!(single.fields()[1].data_type, DataType::Bigint);
        let final_ = agg(AggregateStep::FinalOverPartial).output_schema().unwrap();
        assert_eq!(final_.fields()[1].data_type, DataType::Bigint);
    }

    #[test]
    fn output_validates_name_count() {
        let bad = LogicalPlan::Output { input: Box::new(scan()), names: vec!["only_one".into()] };
        assert!(bad.output_schema().is_err());
    }

    #[test]
    fn labels_surface_pushdowns() {
        let mut s = scan();
        if let LogicalPlan::TableScan { request, .. } = &mut s {
            request.limit = Some(5);
            request.columns = vec![ColumnPath::nested("b", &[])];
        }
        assert!(s.label().contains("limit 5"));
    }
}
