//! EXPLAIN-style plan rendering — how the Fig 2 / Fig 13 plan-shape claims
//! are demonstrated in examples and tests. `EXPLAIN ANALYZE` reuses the same
//! tree shape, annotated with the [`OperatorStats`] the executor traced.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use presto_common::trace::OperatorStats;

use crate::logical::LogicalPlan;

/// Render a plan as an indented tree.
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &LogicalPlan, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&plan.label());
    out.push('\n');
    for child in plan.children() {
        render(child, depth + 1, out);
    }
}

/// Render a plan tree annotated with per-operator runtime stats.
///
/// `stats` are the operator spans of the query's trace; each plan node is
/// matched to a span by its label. A node may execute its children in a
/// different order than [`LogicalPlan::children`] lists them (the geo join
/// builds its fence index before running the probe side), so matching is by
/// per-label FIFO queue rather than tree position. Nodes with no matching
/// span (e.g. pruned or never-executed subtrees) render without an
/// annotation.
pub fn explain_analyze(plan: &LogicalPlan, stats: &[OperatorStats]) -> String {
    let mut by_label: HashMap<&str, VecDeque<&OperatorStats>> = HashMap::new();
    for s in stats {
        by_label.entry(s.name.as_str()).or_default().push_back(s);
    }
    let mut out = String::new();
    render_analyzed(plan, 0, &mut by_label, &mut out);
    out
}

fn render_analyzed(
    plan: &LogicalPlan,
    depth: usize,
    by_label: &mut HashMap<&str, VecDeque<&OperatorStats>>,
    out: &mut String,
) {
    let label = plan.label();
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&label);
    if let Some(s) = by_label.get_mut(label.as_str()).and_then(VecDeque::pop_front) {
        let _ = write!(
            out,
            "  {{rows: {} in, {} out, bytes: {}, pages: {}, busy: {}µs, peak: {} B, spilled: {} B}}",
            s.rows_in,
            s.rows_out,
            s.bytes_out,
            s.pages_out,
            s.busy.as_micros(),
            s.peak_memory,
            s.spill_bytes
        );
    }
    out.push('\n');
    for child in plan.children() {
        render_analyzed(child, depth + 1, by_label, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Field, Schema};

    #[test]
    fn renders_nested_tree() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Values {
                schema: Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap(),
                rows: vec![],
            }),
            count: 5,
        };
        let text = explain(&plan);
        assert!(text.starts_with("Limit[5]\n"));
        assert!(text.contains("\n  Values[0 rows]\n"));
    }

    #[test]
    fn analyze_annotates_matching_nodes() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Values {
                schema: Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap(),
                rows: vec![],
            }),
            count: 5,
        };
        let stats = vec![OperatorStats {
            name: "Limit[5]".into(),
            rows_in: 10,
            rows_out: 5,
            bytes_out: 40,
            pages_out: 1,
            busy: std::time::Duration::from_micros(12),
            peak_memory: 0,
            spill_bytes: 0,
        }];
        let text = explain_analyze(&plan, &stats);
        assert!(text.contains("Limit[5]  {rows: 10 in, 5 out"), "got: {text}");
        assert!(text.contains("busy: 12µs"));
        // unmatched node renders bare
        assert!(text.contains("\n  Values[0 rows]\n"));
    }
}
