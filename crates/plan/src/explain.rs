//! EXPLAIN-style plan rendering — how the Fig 2 / Fig 13 plan-shape claims
//! are demonstrated in examples and tests.

use crate::logical::LogicalPlan;

/// Render a plan as an indented tree.
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &LogicalPlan, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&plan.label());
    out.push('\n');
    for child in plan.children() {
        render(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Field, Schema};

    #[test]
    fn renders_nested_tree() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Values {
                schema: Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap(),
                rows: vec![],
            }),
            count: 5,
        };
        let text = explain(&plan);
        assert!(text.starts_with("Limit[5]\n"));
        assert!(text.contains("\n  Values[0 rows]\n"));
    }
}
