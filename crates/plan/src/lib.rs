#![warn(missing_docs)]

//! Logical planning: the plan tree, the rule-based optimizer, and the plan
//! fragmenter (§III, Fig 1: "Analyzer generates logical plan ... optimizers
//! run several rounds of optimizations ... The fragmenter divides the plan
//! into fragments").
//!
//! The optimizer implements the paper's pushdowns as rules:
//! - constant folding;
//! - **predicate pushdown** through projects/joins and into connector scans
//!   (§IV.A);
//! - **projection pushdown** with **nested column pruning** (§IV.A, §V.D);
//! - **limit pushdown** (§IV.A);
//! - **aggregation pushdown** into connectors that advertise it (§IV.B,
//!   Fig 2) — the scan emits partial aggregates, the plan keeps a final
//!   aggregation above;
//! - the **geospatial rewrite** (§VI.E, Fig 13): a cross join filtered by
//!   `st_contains(shape, st_point(lng, lat))` becomes a QuadTree-backed
//!   [`logical::LogicalPlan::GeoJoin`] (the `build_geo_index` plan);
//! - Sort+Limit fusion into TopN.
//!
//! Per §XII.A ("Collecting statistics is hard"), this is deliberately a
//! *rule-based* optimizer: production Presto at these companies runs with
//! rules and session toggles, not a cost model.

pub mod explain;
pub mod fragment;
pub mod logical;
pub mod optimizer;

pub use explain::{explain, explain_analyze};
pub use fragment::{fragment_plan, PlanFragment};
pub use logical::{AggregateExpr, AggregateStep, JoinKind, LogicalPlan, SortKey};
pub use optimizer::{optimize, OptimizerConfig};
