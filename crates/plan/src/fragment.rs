//! The plan fragmenter (§III: "The fragmenter divides the plan into
//! fragments. Each running plan fragment is called a stage, which could be
//! executed in parallel. Stage consists of tasks, which are processing one
//! or many splits of input data.").
//!
//! Fragmentation model: every [`LogicalPlan::TableScan`] becomes its own
//! *leaf fragment* (whose tasks are parallelized over connector splits by
//! the scheduler), and is replaced in the parent plan by a
//! [`LogicalPlan::RemoteSource`]. Fragment 0 is the root/output fragment.

use presto_common::Result;

use crate::logical::LogicalPlan;

/// One plan fragment (a stage template).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFragment {
    /// Fragment id; 0 is the root.
    pub id: u32,
    /// The fragment's plan; leaf fragments hold the scan, upper fragments
    /// reference children through `RemoteSource`.
    pub plan: LogicalPlan,
}

impl PlanFragment {
    /// True when this fragment scans a connector (parallelizable by split).
    pub fn is_leaf_scan(&self) -> bool {
        fn has_scan(p: &LogicalPlan) -> bool {
            matches!(p, LogicalPlan::TableScan { .. }) || p.children().into_iter().any(has_scan)
        }
        has_scan(&self.plan)
    }
}

/// Split `plan` into fragments. Returns fragments ordered root-first;
/// fragment ids match `RemoteSource.fragment` references.
pub fn fragment_plan(plan: LogicalPlan) -> Result<Vec<PlanFragment>> {
    let mut fragments: Vec<Option<PlanFragment>> = vec![None];
    let root = extract_scans(plan, &mut fragments)?;
    fragments[0] = Some(PlanFragment { id: 0, plan: root });
    Ok(fragments.into_iter().map(|f| f.expect("all fragments filled")).collect())
}

fn extract_scans(
    plan: LogicalPlan,
    fragments: &mut Vec<Option<PlanFragment>>,
) -> Result<LogicalPlan> {
    match plan {
        scan @ LogicalPlan::TableScan { .. } => {
            let schema = scan.output_schema()?;
            let id = fragments.len() as u32;
            fragments.push(Some(PlanFragment { id, plan: scan }));
            Ok(LogicalPlan::RemoteSource { fragment: id, schema })
        }
        other => map_children_fragment(other, fragments),
    }
}

fn map_children_fragment(
    plan: LogicalPlan,
    fragments: &mut Vec<Option<PlanFragment>>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(extract_scans(*input, fragments)?), predicate }
        }
        LogicalPlan::Project { input, expressions } => {
            LogicalPlan::Project { input: Box::new(extract_scans(*input, fragments)?), expressions }
        }
        LogicalPlan::Aggregate { input, group_by, aggregates, step } => LogicalPlan::Aggregate {
            input: Box::new(extract_scans(*input, fragments)?),
            group_by,
            aggregates,
            step,
        },
        LogicalPlan::Join { left, right, kind, on, residual } => LogicalPlan::Join {
            left: Box::new(extract_scans(*left, fragments)?),
            right: Box::new(extract_scans(*right, fragments)?),
            kind,
            on,
            residual,
        },
        LogicalPlan::GeoJoin { probe, fences, probe_lng, probe_lat, fence_shape } => {
            LogicalPlan::GeoJoin {
                probe: Box::new(extract_scans(*probe, fragments)?),
                fences: Box::new(extract_scans(*fences, fragments)?),
                probe_lng,
                probe_lat,
                fence_shape,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(extract_scans(*input, fragments)?), keys }
        }
        LogicalPlan::TopN { input, keys, count } => {
            LogicalPlan::TopN { input: Box::new(extract_scans(*input, fragments)?), keys, count }
        }
        LogicalPlan::Limit { input, count } => {
            LogicalPlan::Limit { input: Box::new(extract_scans(*input, fragments)?), count }
        }
        LogicalPlan::Output { input, names } => {
            LogicalPlan::Output { input: Box::new(extract_scans(*input, fragments)?), names }
        }
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(|i| extract_scans(i, fragments))
                .collect::<Result<Vec<_>>>()?,
        },
        leaf => leaf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_common::{DataType, Field, Schema};
    use presto_connectors::{ColumnPath, ScanRequest};

    fn scan(table: &str) -> LogicalPlan {
        LogicalPlan::TableScan {
            catalog: "memory".into(),
            schema: "default".into(),
            table: table.into(),
            table_schema: Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap(),
            request: ScanRequest::project(vec![ColumnPath::whole("x")]),
        }
    }

    #[test]
    fn join_fragments_into_three_stages() {
        let plan = LogicalPlan::Join {
            left: Box::new(scan("a")),
            right: Box::new(scan("b")),
            kind: crate::logical::JoinKind::Inner,
            on: vec![],
            residual: None,
        };
        let fragments = fragment_plan(plan).unwrap();
        assert_eq!(fragments.len(), 3);
        // root references fragments 1 and 2
        let LogicalPlan::Join { left, right, .. } = &fragments[0].plan else {
            panic!("root should be the join");
        };
        assert!(matches!(**left, LogicalPlan::RemoteSource { fragment: 1, .. }));
        assert!(matches!(**right, LogicalPlan::RemoteSource { fragment: 2, .. }));
        assert!(fragments[1].is_leaf_scan());
        assert!(fragments[2].is_leaf_scan());
        assert!(!fragments[0].is_leaf_scan());
    }

    #[test]
    fn scan_only_plan_has_two_fragments() {
        let fragments =
            fragment_plan(LogicalPlan::Limit { input: Box::new(scan("a")), count: 1 }).unwrap();
        assert_eq!(fragments.len(), 2);
        assert!(matches!(fragments[0].plan, LogicalPlan::Limit { .. }));
    }
}
