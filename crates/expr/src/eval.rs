//! Vectorized expression evaluation over [`Page`]s.
//!
//! §III: Presto "processes a bunch of in memory encoded column values
//! vectorized, instead of row by row" and uses runtime code generation (ASM)
//! for expression evaluation. The Rust equivalent here is a monomorphized
//! vectorized interpreter: hot built-ins on scalar blocks run tight typed
//! loops; everything else falls back to a row-at-a-time path over [`Value`]s,
//! which doubles as the oracle for property tests.
//!
//! The evaluator is also **dictionary-aware**: a function of a
//! dictionary-encoded block is evaluated once per distinct dictionary entry
//! and re-mapped through the ids, the same trick that makes dictionary
//! pushdown (§V.G) pay off inside the engine.

use presto_common::{Block, DataType, Page, PrestoError, Result, Value};

use crate::expression::{RowExpression, SpecialForm};
use crate::registry::{Builtin, FunctionRegistry};

/// Evaluates [`RowExpression`]s against pages.
#[derive(Clone)]
pub struct Evaluator {
    registry: FunctionRegistry,
}

impl Evaluator {
    /// Evaluator over the given function registry.
    pub fn new(registry: FunctionRegistry) -> Evaluator {
        Evaluator { registry }
    }

    /// The registry in use.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Evaluate `expr` against every row of `page`, producing one block.
    pub fn evaluate(&self, expr: &RowExpression, page: &Page) -> Result<Block> {
        let rows = page.positions();
        match expr {
            RowExpression::Constant { value, data_type } => {
                Block::from_values(data_type, &vec![value.clone(); rows])
            }
            RowExpression::VariableReference { index, .. } => {
                let block = page.blocks().get(*index).ok_or_else(|| {
                    PrestoError::Internal(format!(
                        "variable reference to channel {index} of a {}-column page",
                        page.column_count()
                    ))
                })?;
                Ok(block.clone())
            }
            RowExpression::Call { handle, args } => self.evaluate_call(handle, args, page),
            RowExpression::SpecialForm { form, args, return_type } => {
                self.evaluate_form(form, args, return_type, page)
            }
            RowExpression::LambdaDefinition { .. } => Err(PrestoError::Internal(
                "lambda definitions only appear as arguments of higher-order functions".into(),
            )),
        }
    }

    /// Row-at-a-time evaluation (slow path / test oracle). `row` carries the
    /// input values indexed by variable-reference channel.
    pub fn evaluate_scalar(&self, expr: &RowExpression, row: &[Value]) -> Result<Value> {
        match expr {
            RowExpression::Constant { value, .. } => Ok(value.clone()),
            RowExpression::VariableReference { index, .. } => {
                row.get(*index).cloned().ok_or_else(|| {
                    PrestoError::Internal(format!("variable reference {index} out of range"))
                })
            }
            RowExpression::Call { handle, args } => {
                if let Some(lambda_pos) =
                    args.iter().position(|a| matches!(a, RowExpression::LambdaDefinition { .. }))
                {
                    return self.evaluate_higher_order_scalar(
                        handle.name.as_str(),
                        args,
                        lambda_pos,
                        row,
                    );
                }
                let arg_values = args
                    .iter()
                    .map(|a| self.evaluate_scalar(a, row))
                    .collect::<Result<Vec<_>>>()?;
                self.call_scalar(&handle.name, &arg_values, &handle.return_type)
            }
            RowExpression::SpecialForm { form, args, .. } => {
                self.evaluate_form_scalar(form, args, row)
            }
            RowExpression::LambdaDefinition { .. } => Err(PrestoError::Internal(
                "lambda definitions only appear as arguments of higher-order functions".into(),
            )),
        }
    }

    fn call_scalar(&self, name: &str, args: &[Value], return_type: &DataType) -> Result<Value> {
        if let Some(b) = self.registry.builtin(name) {
            return b.eval_scalar(args, return_type);
        }
        if let Some(c) = self.registry.custom(name) {
            return (c.eval)(args);
        }
        Err(PrestoError::Execution(format!("unknown function '{name}'")))
    }

    // --------------------------------------------------------------- calls

    fn evaluate_call(
        &self,
        handle: &crate::expression::FunctionHandle,
        args: &[RowExpression],
        page: &Page,
    ) -> Result<Block> {
        // Higher-order functions take the lambda path.
        if args.iter().any(|a| matches!(a, RowExpression::LambdaDefinition { .. })) {
            return self.evaluate_higher_order(handle, args, page);
        }

        let arg_blocks = args.iter().map(|a| self.evaluate(a, page)).collect::<Result<Vec<_>>>()?;

        let builtin = self.registry.builtin(&handle.name);

        // Vectorized fast paths for the hot comparison/arithmetic shapes.
        if let Some(b) = builtin {
            if let Some(block) = fast_path(b, &arg_blocks)? {
                return Ok(block);
            }
            // Dictionary-aware: unary f(dict) => dict of f(values).
            if arg_blocks.len() == 1 {
                if let Block::Dictionary { dictionary, ids } = &arg_blocks[0] {
                    let inner =
                        self.call_block(b, &[(**dictionary).clone()], &handle.return_type)?;
                    return Ok(Block::Dictionary { dictionary: Box::new(inner), ids: ids.clone() });
                }
            }
            // Dictionary-aware: binary f(dict, constant-expr).
            if arg_blocks.len() == 2 && args[1].is_constant() {
                if let Block::Dictionary { dictionary, ids } = &arg_blocks[0] {
                    let dict_len = dictionary.len();
                    let const_block = arg_blocks[1].slice(0, 1);
                    let expanded = const_block.take(&vec![0; dict_len]);
                    let inner = self.call_block(
                        b,
                        &[(**dictionary).clone(), expanded],
                        &handle.return_type,
                    )?;
                    let indices: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
                    return Ok(inner.take(&indices));
                }
            }
            return self.call_block(b, &arg_blocks, &handle.return_type);
        }

        // Custom function: row-at-a-time over the argument blocks.
        let custom = self
            .registry
            .custom(&handle.name)
            .ok_or_else(|| PrestoError::Execution(format!("unknown function '{}'", handle.name)))?;
        let rows = page.positions();
        let mut out = Vec::with_capacity(rows);
        let mut arg_values = vec![Value::Null; arg_blocks.len()];
        for i in 0..rows {
            for (slot, block) in arg_values.iter_mut().zip(arg_blocks.iter()) {
                *slot = block.value(i);
            }
            out.push((custom.eval)(&arg_values)?);
        }
        Block::from_values(&handle.return_type, &out)
    }

    /// Generic row-wise application of a builtin over blocks.
    fn call_block(
        &self,
        builtin: Builtin,
        arg_blocks: &[Block],
        return_type: &DataType,
    ) -> Result<Block> {
        let rows = arg_blocks.first().map(Block::len).unwrap_or(0);
        let mut out = Vec::with_capacity(rows);
        let mut arg_values = vec![Value::Null; arg_blocks.len()];
        for i in 0..rows {
            for (slot, block) in arg_values.iter_mut().zip(arg_blocks.iter()) {
                *slot = block.value(i);
            }
            out.push(builtin.eval_scalar(&arg_values, return_type)?);
        }
        Block::from_values(return_type, &out)
    }

    // ------------------------------------------------------- special forms

    fn evaluate_form(
        &self,
        form: &SpecialForm,
        args: &[RowExpression],
        return_type: &DataType,
        page: &Page,
    ) -> Result<Block> {
        let rows = page.positions();
        match form {
            SpecialForm::And | SpecialForm::Or => {
                let is_and = matches!(form, SpecialForm::And);
                // Kleene three-valued logic, vectorized over tri-state lanes.
                let mut state: Vec<Option<bool>> = vec![Some(is_and); rows];
                for arg in args {
                    let block = self.evaluate(arg, page)?;
                    for (i, lane) in state.iter_mut().enumerate() {
                        let v = if block.is_null(i) { None } else { block.value(i).as_bool() };
                        *lane = kleene(is_and, *lane, v);
                    }
                }
                tri_state_block(&state)
            }
            SpecialForm::IsNull => {
                let block = self.evaluate(&args[0], page)?;
                let values: Vec<bool> = (0..rows).map(|i| block.is_null(i)).collect();
                Ok(Block::boolean(values))
            }
            SpecialForm::If => {
                // Lazy branches: each arm is evaluated only over the rows
                // that take it, so errors in the untaken arm (e.g. division
                // by zero) cannot fail the query — matching the scalar path.
                let cond = self.evaluate(&args[0], page)?;
                let mut then_rows = Vec::new();
                let mut else_rows = Vec::new();
                for i in 0..rows {
                    if !cond.is_null(i) && cond.value(i).as_bool() == Some(true) {
                        then_rows.push(i);
                    } else {
                        else_rows.push(i);
                    }
                }
                let then_block = if then_rows.is_empty() {
                    None
                } else {
                    Some(self.evaluate(&args[1], &page.take(&then_rows))?)
                };
                let else_block = if else_rows.is_empty() {
                    None
                } else {
                    Some(self.evaluate(&args[2], &page.take(&else_rows))?)
                };
                let mut out = vec![Value::Null; rows];
                if let Some(b) = &then_block {
                    for (pos, &row) in then_rows.iter().enumerate() {
                        out[row] = b.value(pos);
                    }
                }
                if let Some(b) = &else_block {
                    for (pos, &row) in else_rows.iter().enumerate() {
                        out[row] = b.value(pos);
                    }
                }
                Block::from_values(return_type, &out)
            }
            SpecialForm::Coalesce => {
                let blocks =
                    args.iter().map(|a| self.evaluate(a, page)).collect::<Result<Vec<_>>>()?;
                let mut out = Vec::with_capacity(rows);
                for i in 0..rows {
                    let v = blocks
                        .iter()
                        .map(|b| b.value(i))
                        .find(|v| !v.is_null())
                        .unwrap_or(Value::Null);
                    out.push(v);
                }
                Block::from_values(return_type, &out)
            }
            SpecialForm::In => {
                let needle = self.evaluate(&args[0], page)?;
                let haystack =
                    args[1..].iter().map(|a| self.evaluate(a, page)).collect::<Result<Vec<_>>>()?;
                let mut out: Vec<Option<bool>> = Vec::with_capacity(rows);
                for i in 0..rows {
                    if needle.is_null(i) {
                        out.push(None);
                        continue;
                    }
                    let v = needle.value(i);
                    let mut saw_null = false;
                    let mut found = false;
                    for h in &haystack {
                        if h.is_null(i) {
                            saw_null = true;
                        } else if h.value(i).sql_cmp(&v) == Some(std::cmp::Ordering::Equal) {
                            found = true;
                            break;
                        }
                    }
                    out.push(if found {
                        Some(true)
                    } else if saw_null {
                        None
                    } else {
                        Some(false)
                    });
                }
                tri_state_block(&out)
            }
            SpecialForm::Between => {
                let v = self.evaluate(&args[0], page)?;
                let lo = self.evaluate(&args[1], page)?;
                let hi = self.evaluate(&args[2], page)?;
                let mut out: Vec<Option<bool>> = Vec::with_capacity(rows);
                for i in 0..rows {
                    if v.is_null(i) || lo.is_null(i) || hi.is_null(i) {
                        out.push(None);
                        continue;
                    }
                    let val = v.value(i);
                    let ge = val.sql_cmp(&lo.value(i)).map(|o| o != std::cmp::Ordering::Less);
                    let le = val.sql_cmp(&hi.value(i)).map(|o| o != std::cmp::Ordering::Greater);
                    out.push(match (ge, le) {
                        (Some(a), Some(b)) => Some(a && b),
                        _ => None,
                    });
                }
                tri_state_block(&out)
            }
            SpecialForm::Dereference { field_index } => {
                let base = self.evaluate(&args[0], page)?.decode_dictionary();
                match base {
                    Block::Row { children, nulls, .. } => {
                        let child = children
                            .get(*field_index)
                            .ok_or_else(|| {
                                PrestoError::Internal(format!(
                                    "dereference of field {field_index} out of range"
                                ))
                            })?
                            .clone();
                        // A NULL struct makes every dereferenced field NULL.
                        match nulls {
                            None => Ok(child),
                            Some(parent_nulls) => {
                                let vals: Vec<Value> =
                                    (0..child.len())
                                        .map(|i| {
                                            if parent_nulls[i] {
                                                Value::Null
                                            } else {
                                                child.value(i)
                                            }
                                        })
                                        .collect();
                                Block::from_values(return_type, &vals)
                            }
                        }
                    }
                    other => Err(PrestoError::Execution(format!(
                        "DEREFERENCE of non-row block {}",
                        other.data_type()
                    ))),
                }
            }
        }
    }

    fn evaluate_form_scalar(
        &self,
        form: &SpecialForm,
        args: &[RowExpression],
        row: &[Value],
    ) -> Result<Value> {
        match form {
            SpecialForm::And | SpecialForm::Or => {
                let is_and = matches!(form, SpecialForm::And);
                let mut state = Some(is_and);
                for arg in args {
                    let v = self.evaluate_scalar(arg, row)?;
                    let lane = if v.is_null() { None } else { v.as_bool() };
                    state = kleene(is_and, state, lane);
                }
                Ok(state.map(Value::Boolean).unwrap_or(Value::Null))
            }
            SpecialForm::IsNull => {
                Ok(Value::Boolean(self.evaluate_scalar(&args[0], row)?.is_null()))
            }
            SpecialForm::If => {
                let cond = self.evaluate_scalar(&args[0], row)?;
                if cond.as_bool() == Some(true) {
                    self.evaluate_scalar(&args[1], row)
                } else {
                    self.evaluate_scalar(&args[2], row)
                }
            }
            SpecialForm::Coalesce => {
                for arg in args {
                    let v = self.evaluate_scalar(arg, row)?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            SpecialForm::In => {
                let v = self.evaluate_scalar(&args[0], row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for arg in &args[1..] {
                    let h = self.evaluate_scalar(arg, row)?;
                    if h.is_null() {
                        saw_null = true;
                    } else if h.sql_cmp(&v) == Some(std::cmp::Ordering::Equal) {
                        return Ok(Value::Boolean(true));
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Boolean(false) })
            }
            SpecialForm::Between => {
                let v = self.evaluate_scalar(&args[0], row)?;
                let lo = self.evaluate_scalar(&args[1], row)?;
                let hi = self.evaluate_scalar(&args[2], row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => Ok(Value::Boolean(
                        a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater,
                    )),
                    _ => Ok(Value::Null),
                }
            }
            SpecialForm::Dereference { field_index } => {
                match self.evaluate_scalar(&args[0], row)? {
                    Value::Null => Ok(Value::Null),
                    Value::Row(fields) => fields.get(*field_index).cloned().ok_or_else(|| {
                        PrestoError::Internal("dereference field out of range".into())
                    }),
                    other => {
                        Err(PrestoError::Execution(format!("DEREFERENCE of non-row value {other}")))
                    }
                }
            }
        }
    }

    // -------------------------------------------------------- higher order

    fn evaluate_higher_order(
        &self,
        handle: &crate::expression::FunctionHandle,
        args: &[RowExpression],
        page: &Page,
    ) -> Result<Block> {
        let rows = page.positions();
        let mut out = Vec::with_capacity(rows);
        for i in 0..rows {
            let row = page.row(i);
            out.push(self.evaluate_higher_order_scalar(&handle.name, args, 1, &row)?);
        }
        Block::from_values(&handle.return_type, &out)
    }

    fn evaluate_higher_order_scalar(
        &self,
        name: &str,
        args: &[RowExpression],
        lambda_pos: usize,
        row: &[Value],
    ) -> Result<Value> {
        let (params_len, body) = match &args[lambda_pos] {
            RowExpression::LambdaDefinition { parameters, body } => (parameters.len(), body),
            _ => return Err(PrestoError::Internal("expected lambda argument".into())),
        };
        let input = self.evaluate_scalar(&args[0], row)?;
        let items = match input {
            Value::Null => return Ok(Value::Null),
            Value::Array(items) => items,
            other => {
                return Err(PrestoError::Execution(format!(
                    "higher-order function {name} over non-array {other}"
                )))
            }
        };
        match name {
            "transform" => {
                let mut mapped = Vec::with_capacity(items.len());
                for item in items {
                    // Lambda parameter references are channels 0..params_len.
                    let lambda_row = lambda_args(item, params_len);
                    mapped.push(self.evaluate_scalar(body, &lambda_row)?);
                }
                Ok(Value::Array(mapped))
            }
            "filter" => {
                let mut kept = Vec::new();
                for item in items {
                    let lambda_row = lambda_args(item.clone(), params_len);
                    if self.evaluate_scalar(body, &lambda_row)?.as_bool() == Some(true) {
                        kept.push(item);
                    }
                }
                Ok(Value::Array(kept))
            }
            other => {
                Err(PrestoError::Execution(format!("unknown higher-order function '{other}'")))
            }
        }
    }
}

fn lambda_args(item: Value, params_len: usize) -> Vec<Value> {
    let mut row = vec![item];
    row.resize(params_len.max(1), Value::Null);
    row
}

/// Kleene-logic combine step for AND (`is_and`) / OR chains.
fn kleene(is_and: bool, acc: Option<bool>, next: Option<bool>) -> Option<bool> {
    if is_and {
        match (acc, next) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        }
    } else {
        match (acc, next) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        }
    }
}

fn tri_state_block(state: &[Option<bool>]) -> Result<Block> {
    let values: Vec<Value> =
        state.iter().map(|s| s.map(Value::Boolean).unwrap_or(Value::Null)).collect();
    Block::from_values(&DataType::Boolean, &values)
}

/// Vectorized fast paths: typed tight loops for the hottest shapes
/// (BIGINT/DOUBLE comparisons and arithmetic on null-free blocks).
fn fast_path(builtin: Builtin, args: &[Block]) -> Result<Option<Block>> {
    use Builtin::*;
    if args.len() != 2 {
        return Ok(None);
    }
    match (&args[0], &args[1]) {
        (Block::Bigint { values: a, nulls: None }, Block::Bigint { values: b, nulls: None }) => {
            let out = match builtin {
                Eq => cmp_loop(a, b, |x, y| x == y),
                Neq => cmp_loop(a, b, |x, y| x != y),
                Lt => cmp_loop(a, b, |x, y| x < y),
                Lte => cmp_loop(a, b, |x, y| x <= y),
                Gt => cmp_loop(a, b, |x, y| x > y),
                Gte => cmp_loop(a, b, |x, y| x >= y),
                Add => return Ok(Some(Block::bigint(zip_loop(a, b, i64::wrapping_add)))),
                Sub => return Ok(Some(Block::bigint(zip_loop(a, b, i64::wrapping_sub)))),
                Mul => return Ok(Some(Block::bigint(zip_loop(a, b, i64::wrapping_mul)))),
                _ => return Ok(None),
            };
            Ok(Some(Block::boolean(out)))
        }
        (Block::Double { values: a, nulls: None }, Block::Double { values: b, nulls: None }) => {
            let out = match builtin {
                Eq => cmp_loop(a, b, |x, y| x == y),
                Neq => cmp_loop(a, b, |x, y| x != y),
                Lt => cmp_loop(a, b, |x, y| x < y),
                Lte => cmp_loop(a, b, |x, y| x <= y),
                Gt => cmp_loop(a, b, |x, y| x > y),
                Gte => cmp_loop(a, b, |x, y| x >= y),
                Add => return Ok(Some(Block::double(zip_loop(a, b, |x, y| x + y)))),
                Sub => return Ok(Some(Block::double(zip_loop(a, b, |x, y| x - y)))),
                Mul => return Ok(Some(Block::double(zip_loop(a, b, |x, y| x * y)))),
                Div => return Ok(Some(Block::double(zip_loop(a, b, |x, y| x / y)))),
                _ => return Ok(None),
            };
            Ok(Some(Block::boolean(out)))
        }
        _ => Ok(None),
    }
}

fn cmp_loop<T: Copy>(a: &[T], b: &[T], f: impl Fn(T, T) -> bool) -> Vec<bool> {
    a.iter().zip(b.iter()).map(|(&x, &y)| f(x, y)).collect()
}

fn zip_loop<T: Copy>(a: &[T], b: &[T], f: impl Fn(T, T) -> T) -> Vec<T> {
    a.iter().zip(b.iter()).map(|(&x, &y)| f(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::FunctionHandle;
    use presto_common::Field;

    fn evaluator() -> Evaluator {
        Evaluator::new(FunctionRegistry::new())
    }

    fn eq_call(lhs: RowExpression, rhs: RowExpression) -> RowExpression {
        RowExpression::Call {
            handle: FunctionHandle::new(
                "eq",
                vec![lhs.data_type(), rhs.data_type()],
                DataType::Boolean,
            ),
            args: vec![lhs, rhs],
        }
    }

    #[test]
    fn constants_expand_to_page_length() {
        let page = Page::new(vec![Block::bigint(vec![1, 2, 3])]).unwrap();
        let b = evaluator().evaluate(&RowExpression::bigint(9), &page).unwrap();
        assert_eq!(b.to_values(), vec![9i64.into(), 9i64.into(), 9i64.into()]);
    }

    #[test]
    fn fast_path_comparison_matches_scalar_oracle() {
        let ev = evaluator();
        let page = Page::new(vec![Block::bigint(vec![10, 12, 12, 5])]).unwrap();
        let expr = eq_call(
            RowExpression::column("city_id", 0, DataType::Bigint),
            RowExpression::bigint(12),
        );
        let block = ev.evaluate(&expr, &page).unwrap();
        assert_eq!(block.to_values(), vec![false.into(), true.into(), true.into(), false.into()]);
        // oracle agreement
        for (i, expect) in [false, true, true, false].iter().enumerate() {
            let row = page.row(i);
            assert_eq!(ev.evaluate_scalar(&expr, &row).unwrap(), Value::Boolean(*expect));
        }
    }

    #[test]
    fn kleene_and_or_semantics() {
        let ev = evaluator();
        let page = Page::new(vec![Block::from_values(
            &DataType::Boolean,
            &[true.into(), false.into(), Value::Null],
        )
        .unwrap()])
        .unwrap();
        let col = RowExpression::column("b", 0, DataType::Boolean);
        let and_null = RowExpression::SpecialForm {
            form: SpecialForm::And,
            args: vec![col.clone(), RowExpression::null(DataType::Boolean)],
            return_type: DataType::Boolean,
        };
        let b = ev.evaluate(&and_null, &page).unwrap();
        // true AND NULL = NULL; false AND NULL = false; NULL AND NULL = NULL
        assert_eq!(b.to_values(), vec![Value::Null, false.into(), Value::Null]);

        let or_true = RowExpression::SpecialForm {
            form: SpecialForm::Or,
            args: vec![col, RowExpression::boolean(true)],
            return_type: DataType::Boolean,
        };
        let b = ev.evaluate(&or_true, &page).unwrap();
        assert_eq!(b.to_values(), vec![true.into(), true.into(), true.into()]);
    }

    #[test]
    fn in_list_null_semantics() {
        let ev = evaluator();
        let page = Page::new(vec![Block::from_values(
            &DataType::Bigint,
            &[1i64.into(), 5i64.into(), Value::Null],
        )
        .unwrap()])
        .unwrap();
        let col = RowExpression::column("x", 0, DataType::Bigint);
        let in_expr = RowExpression::SpecialForm {
            form: SpecialForm::In,
            args: vec![col, RowExpression::bigint(1), RowExpression::null(DataType::Bigint)],
            return_type: DataType::Boolean,
        };
        let b = ev.evaluate(&in_expr, &page).unwrap();
        // 1 IN (1, NULL) = true; 5 IN (1, NULL) = NULL; NULL IN (...) = NULL
        assert_eq!(b.to_values(), vec![true.into(), Value::Null, Value::Null]);
    }

    #[test]
    fn dereference_reads_nested_fields() {
        let ev = evaluator();
        let base_type = DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
        ]);
        let block = Block::from_values(
            &base_type,
            &[
                Value::Row(vec!["d1".into(), 12i64.into()]),
                Value::Null,
                Value::Row(vec!["d2".into(), 7i64.into()]),
            ],
        )
        .unwrap();
        let page = Page::new(vec![block]).unwrap();
        let deref = RowExpression::SpecialForm {
            form: SpecialForm::Dereference { field_index: 1 },
            args: vec![RowExpression::column("base", 0, base_type)],
            return_type: DataType::Bigint,
        };
        let b = ev.evaluate(&deref, &page).unwrap();
        assert_eq!(b.to_values(), vec![12i64.into(), Value::Null, 7i64.into()]);
    }

    #[test]
    fn dictionary_aware_evaluation_matches_decoded() {
        let ev = evaluator();
        let dict = Block::varchar(&["sf", "nyc"]);
        let col = Block::Dictionary { dictionary: Box::new(dict), ids: vec![0, 1, 0, 0] };
        let page_dict = Page::new(vec![col.clone()]).unwrap();
        let page_flat = Page::new(vec![col.decode_dictionary()]).unwrap();
        let expr = RowExpression::Call {
            handle: FunctionHandle::new("upper", vec![DataType::Varchar], DataType::Varchar),
            args: vec![RowExpression::column("c", 0, DataType::Varchar)],
        };
        let via_dict = ev.evaluate(&expr, &page_dict).unwrap();
        let via_flat = ev.evaluate(&expr, &page_flat).unwrap();
        assert_eq!(via_dict.to_values(), via_flat.to_values());
        // and the dictionary path preserved the encoding
        assert!(matches!(via_dict, Block::Dictionary { .. }));

        let cmp =
            eq_call(RowExpression::column("c", 0, DataType::Varchar), RowExpression::varchar("sf"));
        let via_dict = ev.evaluate(&cmp, &page_dict).unwrap();
        assert_eq!(via_dict.to_values(), vec![true.into(), false.into(), true.into(), true.into()]);
    }

    #[test]
    fn lambda_transform_and_filter() {
        let ev = evaluator();
        let arr_type = DataType::array(DataType::Bigint);
        let page = Page::new(vec![Block::from_values(
            &arr_type,
            &[Value::Array(vec![1i64.into(), 2i64.into(), 3i64.into()]), Value::Null],
        )
        .unwrap()])
        .unwrap();
        let lambda = RowExpression::LambdaDefinition {
            parameters: vec![("x".into(), DataType::Bigint)],
            body: Box::new(RowExpression::Call {
                handle: FunctionHandle::new(
                    "add",
                    vec![DataType::Bigint, DataType::Bigint],
                    DataType::Bigint,
                ),
                args: vec![
                    RowExpression::column("x", 0, DataType::Bigint),
                    RowExpression::bigint(10),
                ],
            }),
        };
        let transform = RowExpression::Call {
            handle: FunctionHandle::new(
                "transform",
                vec![arr_type.clone(), DataType::Bigint],
                arr_type.clone(),
            ),
            args: vec![RowExpression::column("a", 0, arr_type.clone()), lambda],
        };
        let b = ev.evaluate(&transform, &page).unwrap();
        assert_eq!(
            b.to_values(),
            vec![Value::Array(vec![11i64.into(), 12i64.into(), 13i64.into()]), Value::Null]
        );

        let filter_lambda = RowExpression::LambdaDefinition {
            parameters: vec![("x".into(), DataType::Bigint)],
            body: Box::new(RowExpression::Call {
                handle: FunctionHandle::new(
                    "gt",
                    vec![DataType::Bigint, DataType::Bigint],
                    DataType::Boolean,
                ),
                args: vec![
                    RowExpression::column("x", 0, DataType::Bigint),
                    RowExpression::bigint(1),
                ],
            }),
        };
        let filter = RowExpression::Call {
            handle: FunctionHandle::new(
                "filter",
                vec![arr_type.clone(), DataType::Boolean],
                arr_type.clone(),
            ),
            args: vec![RowExpression::column("a", 0, arr_type), filter_lambda],
        };
        let b = ev.evaluate(&filter, &page).unwrap();
        assert_eq!(b.to_values(), vec![Value::Array(vec![2i64.into(), 3i64.into()]), Value::Null]);
    }

    #[test]
    fn if_branches_are_lazy() {
        // division by zero in the untaken branch must not fail the query
        let ev = evaluator();
        let page = Page::new(vec![Block::bigint(vec![0, 2, 4])]).unwrap();
        let col = RowExpression::column("x", 0, DataType::Bigint);
        let is_zero = eq_call(col.clone(), RowExpression::bigint(0));
        let divide = RowExpression::Call {
            handle: FunctionHandle::new(
                "div",
                vec![DataType::Bigint, DataType::Bigint],
                DataType::Bigint,
            ),
            args: vec![RowExpression::bigint(100), col.clone()],
        };
        let safe_div = RowExpression::SpecialForm {
            form: SpecialForm::If,
            args: vec![is_zero, RowExpression::bigint(-1), divide],
            return_type: DataType::Bigint,
        };
        let out = ev.evaluate(&safe_div, &page).unwrap();
        assert_eq!(out.to_values(), vec![(-1i64).into(), 50i64.into(), 25i64.into()]);
    }

    #[test]
    fn if_coalesce_between() {
        let ev = evaluator();
        let page = Page::new(vec![Block::from_values(
            &DataType::Bigint,
            &[1i64.into(), 20i64.into(), Value::Null],
        )
        .unwrap()])
        .unwrap();
        let col = RowExpression::column("x", 0, DataType::Bigint);
        let between = RowExpression::SpecialForm {
            form: SpecialForm::Between,
            args: vec![col.clone(), RowExpression::bigint(0), RowExpression::bigint(10)],
            return_type: DataType::Boolean,
        };
        let b = ev.evaluate(&between, &page).unwrap();
        assert_eq!(b.to_values(), vec![true.into(), false.into(), Value::Null]);

        let coalesce = RowExpression::SpecialForm {
            form: SpecialForm::Coalesce,
            args: vec![col.clone(), RowExpression::bigint(-1)],
            return_type: DataType::Bigint,
        };
        let b = ev.evaluate(&coalesce, &page).unwrap();
        assert_eq!(b.to_values(), vec![1i64.into(), 20i64.into(), (-1i64).into()]);

        let iff = RowExpression::SpecialForm {
            form: SpecialForm::If,
            args: vec![between, RowExpression::varchar("in"), RowExpression::varchar("out")],
            return_type: DataType::Varchar,
        };
        let b = ev.evaluate(&iff, &page).unwrap();
        assert_eq!(b.to_values(), vec!["in".into(), "out".into(), "out".into()]);
    }
}
