#![warn(missing_docs)]

//! RowExpression — the self-contained expression IR of §IV.B / Table I.
//!
//! The paper replaced Presto's AST-based expression representation with
//! `RowExpression`, which is "completely self-contained and can be shared
//! across multiple systems" because function resolution information is stored
//! in the expression itself as a serializable `FunctionHandle`. That is what
//! makes arbitrary sub-expression pushdown to connectors possible.
//!
//! This crate provides:
//! - [`expression::RowExpression`] with exactly the paper's five subtypes
//!   (constant, variable reference, call, special form, lambda definition);
//! - [`expression::FunctionHandle`] — the serializable resolution record;
//! - a compact text serialization ([`expression::RowExpression::serialize`])
//!   demonstrating the "shareable across systems" property;
//! - [`registry::FunctionRegistry`] — built-in scalar functions plus the
//!   plugin extension point the geospatial plugin (§VI.E) uses;
//! - [`eval::Evaluator`] — vectorized evaluation over
//!   [`presto_common::Page`]s (Presto evaluates expressions vectorized, §III);
//! - [`aggregate::AggregateFunction`] — the aggregate vocabulary shared by
//!   the execution engine and connector aggregation pushdown.

pub mod aggregate;
pub mod eval;
pub mod expression;
pub mod registry;

pub use aggregate::{Accumulator, AggregateFunction};
pub use eval::Evaluator;
pub use expression::{FunctionHandle, RowExpression, SpecialForm};
pub use registry::FunctionRegistry;
