//! Aggregate functions shared by the execution engine's hash aggregation and
//! connector **aggregation pushdown** (§IV.B, Fig. 2): when a connector
//! advertises the capability, the partial aggregation runs inside the
//! connector (Druid/Pinot) and only aggregated rows stream into Presto.

use presto_common::{DataType, PrestoError, Result, Value};

/// The aggregate function vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `count(x)` — non-null count.
    Count,
    /// `count(*)` — row count.
    CountStar,
    /// `sum(x)`.
    Sum,
    /// `avg(x)`.
    Avg,
    /// `min(x)`.
    Min,
    /// `max(x)`.
    Max,
}

impl AggregateFunction {
    /// Parse from SQL name (`count`, `sum`, ...). `count(*)` is recognized by
    /// the analyzer, not here.
    pub fn from_name(name: &str) -> Option<AggregateFunction> {
        match name {
            "count" => Some(AggregateFunction::Count),
            "sum" => Some(AggregateFunction::Sum),
            "avg" => Some(AggregateFunction::Avg),
            "min" => Some(AggregateFunction::Min),
            "max" => Some(AggregateFunction::Max),
            _ => None,
        }
    }

    /// SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunction::Count => "count",
            AggregateFunction::CountStar => "count",
            AggregateFunction::Sum => "sum",
            AggregateFunction::Avg => "avg",
            AggregateFunction::Min => "min",
            AggregateFunction::Max => "max",
        }
    }

    /// Output type given the input column type (`None` for `count(*)`).
    pub fn return_type(&self, input: Option<&DataType>) -> Result<DataType> {
        match self {
            AggregateFunction::Count | AggregateFunction::CountStar => Ok(DataType::Bigint),
            AggregateFunction::Avg => Ok(DataType::Double),
            AggregateFunction::Sum => match input {
                Some(DataType::Double) => Ok(DataType::Double),
                Some(t) if t.is_numeric() => Ok(DataType::Bigint),
                Some(t) => Err(PrestoError::Analysis(format!("cannot sum {t}"))),
                None => Err(PrestoError::Analysis("sum requires an argument".into())),
            },
            AggregateFunction::Min | AggregateFunction::Max => match input {
                Some(t) if t.is_orderable() => Ok(t.clone()),
                Some(t) => Err(PrestoError::Analysis(format!("cannot order {t}"))),
                None => Err(PrestoError::Analysis("min/max require an argument".into())),
            },
        }
    }

    /// Fresh accumulator for this function.
    pub fn new_accumulator(&self) -> Accumulator {
        match self {
            AggregateFunction::Count | AggregateFunction::CountStar => {
                Accumulator::Count { count: 0 }
            }
            AggregateFunction::Sum => {
                Accumulator::Sum { int: 0, float: 0.0, saw_float: false, any: false }
            }
            AggregateFunction::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
            AggregateFunction::Min => Accumulator::MinMax { best: None, is_min: true },
            AggregateFunction::Max => Accumulator::MinMax { best: None, is_min: false },
        }
    }
}

/// Incremental aggregation state.
///
/// Accumulators are *mergeable*, which is what lets aggregation split into a
/// partial step (inside a connector or a scan-side stage) and a final step
/// (Fig. 2's "final aggregation max(columnB)" above the connector).
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// count / count(*)
    Count {
        /// Rows (or non-null values) seen.
        count: i64,
    },
    /// sum with integer/double personalities
    Sum {
        /// Integer accumulator.
        int: i64,
        /// Float accumulator.
        float: f64,
        /// True once any double was added (result becomes DOUBLE).
        saw_float: bool,
        /// True once any non-null value was added (else result is NULL).
        any: bool,
    },
    /// avg = sum/count in double space
    Avg {
        /// Running sum.
        sum: f64,
        /// Non-null count.
        count: i64,
    },
    /// min or max
    MinMax {
        /// Best value so far.
        best: Option<Value>,
        /// True for min, false for max.
        is_min: bool,
    },
}

impl Accumulator {
    /// Add one value. For `count(*)` pass any non-null placeholder.
    pub fn add(&mut self, v: &Value) {
        match self {
            Accumulator::Count { count } => {
                if !v.is_null() {
                    *count += 1;
                }
            }
            Accumulator::Sum { int, float, saw_float, any } => match v {
                Value::Null => {}
                Value::Double(x) => {
                    *float += x;
                    *saw_float = true;
                    *any = true;
                }
                other => {
                    if let Some(x) = other.as_i64() {
                        *int = int.wrapping_add(x);
                        *any = true;
                    }
                }
            },
            Accumulator::Avg { sum, count } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            Accumulator::MinMax { best, is_min } => {
                if v.is_null() {
                    return;
                }
                let better = match best {
                    None => true,
                    Some(b) => match v.sql_cmp(b) {
                        Some(std::cmp::Ordering::Less) => *is_min,
                        Some(std::cmp::Ordering::Greater) => !*is_min,
                        _ => false,
                    },
                };
                if better {
                    *best = Some(v.clone());
                }
            }
        }
    }

    /// Add `n` rows at once for `count(*)`.
    pub fn add_count(&mut self, n: i64) {
        if let Accumulator::Count { count } = self {
            *count += n;
        }
    }

    /// Merge another accumulator of the same kind (partial → final step).
    pub fn merge(&mut self, other: &Accumulator) -> Result<()> {
        match (self, other) {
            (Accumulator::Count { count }, Accumulator::Count { count: o }) => {
                *count += o;
                Ok(())
            }
            (
                Accumulator::Sum { int, float, saw_float, any },
                Accumulator::Sum { int: oi, float: of, saw_float: osf, any: oany },
            ) => {
                *int = int.wrapping_add(*oi);
                *float += of;
                *saw_float |= osf;
                *any |= oany;
                Ok(())
            }
            (Accumulator::Avg { sum, count }, Accumulator::Avg { sum: os, count: oc }) => {
                *sum += os;
                *count += oc;
                Ok(())
            }
            (
                Accumulator::MinMax { best, is_min },
                Accumulator::MinMax { best: ob, is_min: oim },
            ) if *is_min == *oim => {
                if let Some(v) = ob {
                    let mut tmp = Accumulator::MinMax { best: best.take(), is_min: *is_min };
                    tmp.add(v);
                    if let Accumulator::MinMax { best: b, .. } = tmp {
                        *best = b;
                    }
                }
                Ok(())
            }
            _ => Err(PrestoError::Internal("merge of mismatched accumulators".into())),
        }
    }

    /// Finish the aggregation.
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::Count { count } => Value::Bigint(*count),
            Accumulator::Sum { int, float, saw_float, any } => {
                if !any {
                    Value::Null
                } else if *saw_float {
                    Value::Double(*float + *int as f64)
                } else {
                    Value::Bigint(*int)
                }
            }
            Accumulator::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *count as f64)
                }
            }
            Accumulator::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let mut c = AggregateFunction::Count.new_accumulator();
        c.add(&Value::Bigint(1));
        c.add(&Value::Null);
        assert_eq!(c.finish(), Value::Bigint(1));

        let mut cs = AggregateFunction::CountStar.new_accumulator();
        cs.add_count(5);
        assert_eq!(cs.finish(), Value::Bigint(5));
    }

    #[test]
    fn sum_is_typed_and_null_on_empty() {
        let mut s = AggregateFunction::Sum.new_accumulator();
        assert_eq!(s.finish(), Value::Null);
        s.add(&Value::Bigint(2));
        s.add(&Value::Bigint(3));
        assert_eq!(s.finish(), Value::Bigint(5));
        s.add(&Value::Double(0.5));
        assert_eq!(s.finish(), Value::Double(5.5));
    }

    #[test]
    fn min_max_and_avg() {
        let mut mn = AggregateFunction::Min.new_accumulator();
        let mut mx = AggregateFunction::Max.new_accumulator();
        for v in [Value::Bigint(3), Value::Null, Value::Bigint(-1), Value::Bigint(10)] {
            mn.add(&v);
            mx.add(&v);
        }
        assert_eq!(mn.finish(), Value::Bigint(-1));
        assert_eq!(mx.finish(), Value::Bigint(10));

        let mut avg = AggregateFunction::Avg.new_accumulator();
        avg.add(&Value::Bigint(1));
        avg.add(&Value::Bigint(2));
        assert_eq!(avg.finish(), Value::Double(1.5));
    }

    #[test]
    fn partial_final_merge_equals_single_pass() {
        // the Fig. 2 split: connector computes partials, engine merges
        let data: Vec<i64> = (0..100).collect();
        let mut single = AggregateFunction::Sum.new_accumulator();
        for &v in &data {
            single.add(&Value::Bigint(v));
        }
        let mut part1 = AggregateFunction::Sum.new_accumulator();
        let mut part2 = AggregateFunction::Sum.new_accumulator();
        for &v in &data[..50] {
            part1.add(&Value::Bigint(v));
        }
        for &v in &data[50..] {
            part2.add(&Value::Bigint(v));
        }
        part1.merge(&part2).unwrap();
        assert_eq!(part1.finish(), single.finish());

        let mut mn1 = AggregateFunction::Min.new_accumulator();
        let mut mn2 = AggregateFunction::Min.new_accumulator();
        mn1.add(&Value::Bigint(5));
        mn2.add(&Value::Bigint(2));
        mn1.merge(&mn2).unwrap();
        assert_eq!(mn1.finish(), Value::Bigint(2));

        let bad = AggregateFunction::Count.new_accumulator();
        let mut s = AggregateFunction::Sum.new_accumulator();
        assert!(s.merge(&bad).is_err());
    }

    #[test]
    fn return_types() {
        assert_eq!(
            AggregateFunction::Sum.return_type(Some(&DataType::Integer)).unwrap(),
            DataType::Bigint
        );
        assert_eq!(
            AggregateFunction::Sum.return_type(Some(&DataType::Double)).unwrap(),
            DataType::Double
        );
        assert_eq!(
            AggregateFunction::Min.return_type(Some(&DataType::Varchar)).unwrap(),
            DataType::Varchar
        );
        assert!(AggregateFunction::Sum.return_type(Some(&DataType::Varchar)).is_err());
        assert_eq!(AggregateFunction::CountStar.return_type(None).unwrap(), DataType::Bigint);
        assert_eq!(AggregateFunction::from_name("avg"), Some(AggregateFunction::Avg));
        assert_eq!(AggregateFunction::from_name("median"), None);
    }
}
