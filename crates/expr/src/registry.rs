//! Function registry: resolution of names + argument types into
//! [`FunctionHandle`]s, built-in scalar functions, and the plugin extension
//! point used by the geospatial plugin (§VI.E registers `st_point`,
//! `st_contains`, `build_geo_index`, ... through exactly this mechanism).

use std::collections::HashMap;
use std::sync::Arc;

use presto_common::{DataType, PrestoError, Result, Value};

use crate::expression::FunctionHandle;

/// Scalar implementation of a custom (plugin) function.
pub type CustomScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Signature checker for a custom function: given argument types, return the
/// result type if the function accepts them.
pub type CustomSignatureFn = Arc<dyn Fn(&[DataType]) -> Option<DataType> + Send + Sync>;

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `eq(a, b)`
    Eq,
    /// `neq(a, b)`
    Neq,
    /// `lt(a, b)`
    Lt,
    /// `lte(a, b)`
    Lte,
    /// `gt(a, b)`
    Gt,
    /// `gte(a, b)`
    Gte,
    /// `add(a, b)`
    Add,
    /// `sub(a, b)`
    Sub,
    /// `mul(a, b)`
    Mul,
    /// `div(a, b)`
    Div,
    /// `mod(a, b)`
    Mod,
    /// `negate(a)`
    Negate,
    /// `not(a)`
    Not,
    /// `concat(a, b)`
    Concat,
    /// `lower(s)`
    Lower,
    /// `upper(s)`
    Upper,
    /// `length(s)`
    Length,
    /// `substr(s, start_1_based, len)`
    Substr,
    /// `like(s, pattern)` with `%` and `_` wildcards
    Like,
    /// `abs(x)`
    Abs,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `round(x)`
    Round,
    /// `sqrt(x)`
    Sqrt,
    /// `cast(x)` — target type carried in the handle's return type
    Cast,
    /// `cardinality(array|map)`
    Cardinality,
    /// `element_at(map, key)` / `element_at(array, index)`
    ElementAt,
    /// `contains(array, value)`
    Contains,
    /// `transform(array, lambda)` — higher-order, exercises LambdaDefinition
    Transform,
    /// `filter(array, lambda)` — higher-order
    Filter,
}

impl Builtin {
    /// Canonical name used in handles and SQL.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Eq => "eq",
            Builtin::Neq => "neq",
            Builtin::Lt => "lt",
            Builtin::Lte => "lte",
            Builtin::Gt => "gt",
            Builtin::Gte => "gte",
            Builtin::Add => "add",
            Builtin::Sub => "sub",
            Builtin::Mul => "mul",
            Builtin::Div => "div",
            Builtin::Mod => "mod",
            Builtin::Negate => "negate",
            Builtin::Not => "not",
            Builtin::Concat => "concat",
            Builtin::Lower => "lower",
            Builtin::Upper => "upper",
            Builtin::Length => "length",
            Builtin::Substr => "substr",
            Builtin::Like => "like",
            Builtin::Abs => "abs",
            Builtin::Floor => "floor",
            Builtin::Ceil => "ceil",
            Builtin::Round => "round",
            Builtin::Sqrt => "sqrt",
            Builtin::Cast => "cast",
            Builtin::Cardinality => "cardinality",
            Builtin::ElementAt => "element_at",
            Builtin::Contains => "contains",
            Builtin::Transform => "transform",
            Builtin::Filter => "filter",
        }
    }

    fn all() -> &'static [Builtin] {
        use Builtin::*;
        &[
            Eq,
            Neq,
            Lt,
            Lte,
            Gt,
            Gte,
            Add,
            Sub,
            Mul,
            Div,
            Mod,
            Negate,
            Not,
            Concat,
            Lower,
            Upper,
            Length,
            Substr,
            Like,
            Abs,
            Floor,
            Ceil,
            Round,
            Sqrt,
            Cast,
            Cardinality,
            ElementAt,
            Contains,
            Transform,
            Filter,
        ]
    }

    /// Type-check argument types; return the result type if accepted.
    pub fn return_type(self, args: &[DataType]) -> Option<DataType> {
        use Builtin::*;
        let numeric = |t: &DataType| t.is_numeric();
        let comparable = |a: &DataType, b: &DataType| a == b || (numeric(a) && numeric(b));
        match self {
            Eq | Neq | Lt | Lte | Gt | Gte => match args {
                [a, b] if comparable(a, b) && a.is_orderable() => Some(DataType::Boolean),
                _ => None,
            },
            Add | Sub | Mul => match args {
                [a, b] if numeric(a) && numeric(b) => Some(promote(a, b)),
                _ => None,
            },
            Div => match args {
                [a, b] if numeric(a) && numeric(b) => {
                    // Presto integer division stays integral.
                    Some(promote(a, b))
                }
                _ => None,
            },
            Mod => match args {
                [a, b] if numeric(a) && numeric(b) => Some(promote(a, b)),
                _ => None,
            },
            Negate => match args {
                [a] if numeric(a) => Some(a.clone()),
                _ => None,
            },
            Not => match args {
                [DataType::Boolean] => Some(DataType::Boolean),
                _ => None,
            },
            Concat => match args {
                [DataType::Varchar, DataType::Varchar] => Some(DataType::Varchar),
                _ => None,
            },
            Lower | Upper => match args {
                [DataType::Varchar] => Some(DataType::Varchar),
                _ => None,
            },
            Length => match args {
                [DataType::Varchar] => Some(DataType::Bigint),
                _ => None,
            },
            Substr => match args {
                [DataType::Varchar, a, b] if numeric(a) && numeric(b) => Some(DataType::Varchar),
                _ => None,
            },
            Like => match args {
                [DataType::Varchar, DataType::Varchar] => Some(DataType::Boolean),
                _ => None,
            },
            Abs => match args {
                [a] if numeric(a) => Some(a.clone()),
                _ => None,
            },
            Floor | Ceil | Round => match args {
                [DataType::Double] => Some(DataType::Double),
                [a] if numeric(a) => Some(a.clone()),
                _ => None,
            },
            Sqrt => match args {
                [a] if numeric(a) => Some(DataType::Double),
                _ => None,
            },
            // cast's return type is chosen by the caller, not inferred.
            Cast => None,
            Cardinality => match args {
                [DataType::Array(_)] | [DataType::Map(_, _)] => Some(DataType::Bigint),
                _ => None,
            },
            ElementAt => match args {
                [DataType::Map(k, v), key] if key == &**k => Some((**v).clone()),
                [DataType::Array(e), idx] if numeric(idx) => Some((**e).clone()),
                _ => None,
            },
            Contains => match args {
                [DataType::Array(e), v] if v == &**e => Some(DataType::Boolean),
                _ => None,
            },
            // Higher-order signatures are resolved by the analyzer, which
            // knows the lambda's body type.
            Transform | Filter => None,
        }
    }

    /// Row-at-a-time evaluation (the vectorized fast paths live in
    /// [`crate::eval`]). `return_type` is the handle's resolved return type,
    /// which `cast` needs.
    pub fn eval_scalar(self, args: &[Value], return_type: &DataType) -> Result<Value> {
        use Builtin::*;
        let null_in = args.iter().any(Value::is_null);
        match self {
            Eq | Neq | Lt | Lte | Gt | Gte => {
                if null_in {
                    return Ok(Value::Null);
                }
                let ord = match args[0].sql_cmp(&args[1]) {
                    Some(ord) => ord,
                    // numeric but unordered = NaN involved: IEEE semantics
                    // (every comparison false except !=), matching the
                    // vectorized fast path
                    None if args[0].as_f64().is_some() && args[1].as_f64().is_some() => {
                        return Ok(Value::Boolean(matches!(self, Neq)));
                    }
                    None => {
                        return Err(PrestoError::Execution(format!(
                            "cannot compare {} and {}",
                            args[0], args[1]
                        )))
                    }
                };
                let b = match self {
                    Eq => ord == std::cmp::Ordering::Equal,
                    Neq => ord != std::cmp::Ordering::Equal,
                    Lt => ord == std::cmp::Ordering::Less,
                    Lte => ord != std::cmp::Ordering::Greater,
                    Gt => ord == std::cmp::Ordering::Greater,
                    Gte => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                };
                Ok(Value::Boolean(b))
            }
            Add | Sub | Mul | Div | Mod => {
                if null_in {
                    return Ok(Value::Null);
                }
                numeric_binop(self, &args[0], &args[1])
            }
            Negate => {
                if null_in {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    // wrapping like the arithmetic ops: i64::MIN stays
                    // i64::MIN rather than panicking in debug builds
                    Value::Bigint(v) => Ok(Value::Bigint(v.wrapping_neg())),
                    Value::Integer(v) => Ok(Value::Integer(v.wrapping_neg())),
                    Value::Double(v) => Ok(Value::Double(-v)),
                    other => Err(PrestoError::Execution(format!("cannot negate {other}"))),
                }
            }
            Not => {
                if null_in {
                    return Ok(Value::Null);
                }
                Ok(Value::Boolean(
                    !args[0]
                        .as_bool()
                        .ok_or_else(|| PrestoError::Execution("NOT requires boolean".into()))?,
                ))
            }
            Concat => {
                if null_in {
                    return Ok(Value::Null);
                }
                Ok(Value::Varchar(format!(
                    "{}{}",
                    args[0].as_str().unwrap_or(""),
                    args[1].as_str().unwrap_or("")
                )))
            }
            Lower => str_fn(args, |s| s.to_lowercase()),
            Upper => str_fn(args, |s| s.to_uppercase()),
            Length => {
                if null_in {
                    return Ok(Value::Null);
                }
                Ok(Value::Bigint(args[0].as_str().map(|s| s.chars().count()).unwrap_or(0) as i64))
            }
            Substr => {
                if null_in {
                    return Ok(Value::Null);
                }
                let s = args[0].as_str().unwrap_or("");
                let start = args[1].as_i64().unwrap_or(1).max(1) as usize;
                let len = args[2].as_i64().unwrap_or(0).max(0) as usize;
                let out: String = s.chars().skip(start - 1).take(len).collect();
                Ok(Value::Varchar(out))
            }
            Like => {
                if null_in {
                    return Ok(Value::Null);
                }
                let s = args[0].as_str().unwrap_or("");
                let p = args[1].as_str().unwrap_or("");
                Ok(Value::Boolean(like_match(s, p)))
            }
            Abs => {
                if null_in {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Bigint(v) => Ok(Value::Bigint(v.wrapping_abs())),
                    Value::Integer(v) => Ok(Value::Integer(v.wrapping_abs())),
                    Value::Double(v) => Ok(Value::Double(v.abs())),
                    other => Err(PrestoError::Execution(format!("abs of non-number {other}"))),
                }
            }
            Floor => f64_fn(args, f64::floor),
            Ceil => f64_fn(args, f64::ceil),
            Round => f64_fn(args, f64::round),
            Sqrt => {
                if null_in {
                    return Ok(Value::Null);
                }
                Ok(Value::Double(args[0].as_f64().unwrap_or(f64::NAN).sqrt()))
            }
            Cast => cast_value(&args[0], return_type),
            Cardinality => {
                if null_in {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Array(items) => Ok(Value::Bigint(items.len() as i64)),
                    Value::Map(entries) => Ok(Value::Bigint(entries.len() as i64)),
                    other => Err(PrestoError::Execution(format!(
                        "cardinality of non-collection {other}"
                    ))),
                }
            }
            ElementAt => {
                if null_in {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Map(entries) => Ok(entries
                        .iter()
                        .find(|(k, _)| k == &args[1])
                        .map(|(_, v)| v.clone())
                        .unwrap_or(Value::Null)),
                    Value::Array(items) => {
                        let idx = args[1].as_i64().unwrap_or(0);
                        if idx >= 1 && (idx as usize) <= items.len() {
                            Ok(items[idx as usize - 1].clone())
                        } else {
                            Ok(Value::Null)
                        }
                    }
                    other => Err(PrestoError::Execution(format!("element_at of {other}"))),
                }
            }
            Contains => {
                if null_in {
                    return Ok(Value::Null);
                }
                match &args[0] {
                    Value::Array(items) => {
                        // SQL semantics: found → true; NULL element present
                        // and not found → NULL; else false
                        let mut saw_null = false;
                        for item in items {
                            if item.is_null() {
                                saw_null = true;
                            } else if item.sql_cmp(&args[1]) == Some(std::cmp::Ordering::Equal) {
                                return Ok(Value::Boolean(true));
                            }
                        }
                        Ok(if saw_null { Value::Null } else { Value::Boolean(false) })
                    }
                    other => Err(PrestoError::Execution(format!("contains of {other}"))),
                }
            }
            Transform | Filter => Err(PrestoError::Internal(
                "higher-order functions are evaluated by the Evaluator, not eval_scalar".into(),
            )),
        }
    }
}

fn promote(a: &DataType, b: &DataType) -> DataType {
    if a == &DataType::Double || b == &DataType::Double {
        DataType::Double
    } else if a == &DataType::Bigint || b == &DataType::Bigint {
        DataType::Bigint
    } else {
        DataType::Integer
    }
}

fn str_fn(args: &[Value], f: impl Fn(&str) -> String) -> Result<Value> {
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Varchar(s) => Ok(Value::Varchar(f(s))),
        other => Err(PrestoError::Execution(format!("string function on {other}"))),
    }
}

fn f64_fn(args: &[Value], f: impl Fn(f64) -> f64) -> Result<Value> {
    match &args[0] {
        Value::Null => Ok(Value::Null),
        Value::Double(v) => Ok(Value::Double(f(*v))),
        Value::Bigint(v) => Ok(Value::Bigint(*v)),
        Value::Integer(v) => Ok(Value::Integer(*v)),
        other => Err(PrestoError::Execution(format!("math function on {other}"))),
    }
}

fn numeric_binop(op: Builtin, a: &Value, b: &Value) -> Result<Value> {
    use Builtin::*;
    // Double wins; otherwise integer math with overflow wrapping like Java.
    if matches!(a, Value::Double(_)) || matches!(b, Value::Double(_)) {
        let (x, y) = (
            a.as_f64().ok_or_else(|| PrestoError::Execution(format!("non-number {a}")))?,
            b.as_f64().ok_or_else(|| PrestoError::Execution(format!("non-number {b}")))?,
        );
        let r = match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Mod => x % y,
            _ => unreachable!(),
        };
        return Ok(Value::Double(r));
    }
    let (x, y) = (
        a.as_i64().ok_or_else(|| PrestoError::Execution(format!("non-number {a}")))?,
        b.as_i64().ok_or_else(|| PrestoError::Execution(format!("non-number {b}")))?,
    );
    if matches!(op, Div | Mod) && y == 0 {
        return Err(PrestoError::Execution("division by zero".into()));
    }
    let r = match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        Div => x / y,
        Mod => x % y,
        _ => unreachable!(),
    };
    // Stay in INTEGER when both inputs were INTEGER and the result fits.
    if matches!(a, Value::Integer(_)) && matches!(b, Value::Integer(_)) {
        if let Ok(v) = i32::try_from(r) {
            return Ok(Value::Integer(v));
        }
    }
    Ok(Value::Bigint(r))
}

/// SQL LIKE with `%` (any run) and `_` (any single char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => (0..=s.len()).any(|k| rec(&s[k..], &p[1..])),
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

/// CAST semantics. Type-strict engine: only explicit casts convert.
pub fn cast_value(v: &Value, target: &DataType) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let fail = || PrestoError::Execution(format!("cannot cast {v} to {target}"));
    match target {
        DataType::Bigint => match v {
            Value::Bigint(x) => Ok(Value::Bigint(*x)),
            Value::Integer(x) => Ok(Value::Bigint(*x as i64)),
            Value::Double(x) => Ok(Value::Bigint(*x as i64)),
            Value::Varchar(s) => s.trim().parse().map(Value::Bigint).map_err(|_| fail()),
            Value::Boolean(b) => Ok(Value::Bigint(*b as i64)),
            _ => Err(fail()),
        },
        DataType::Integer => match v {
            Value::Integer(x) => Ok(Value::Integer(*x)),
            Value::Bigint(x) => i32::try_from(*x).map(Value::Integer).map_err(|_| fail()),
            Value::Double(x) => Ok(Value::Integer(*x as i32)),
            Value::Varchar(s) => s.trim().parse().map(Value::Integer).map_err(|_| fail()),
            _ => Err(fail()),
        },
        DataType::Double => match v {
            Value::Double(x) => Ok(Value::Double(*x)),
            Value::Bigint(x) => Ok(Value::Double(*x as f64)),
            Value::Integer(x) => Ok(Value::Double(*x as f64)),
            Value::Varchar(s) => s.trim().parse().map(Value::Double).map_err(|_| fail()),
            _ => Err(fail()),
        },
        DataType::Varchar => Ok(Value::Varchar(v.to_string())),
        DataType::Boolean => match v {
            Value::Boolean(b) => Ok(Value::Boolean(*b)),
            Value::Varchar(s) => match s.as_str() {
                "true" => Ok(Value::Boolean(true)),
                "false" => Ok(Value::Boolean(false)),
                _ => Err(fail()),
            },
            _ => Err(fail()),
        },
        DataType::Date => match v {
            Value::Date(d) => Ok(Value::Date(*d)),
            Value::Bigint(x) => Ok(Value::Date(*x as i32)),
            Value::Integer(x) => Ok(Value::Date(*x)),
            _ => Err(fail()),
        },
        DataType::Timestamp => match v {
            Value::Timestamp(t) => Ok(Value::Timestamp(*t)),
            Value::Bigint(x) => Ok(Value::Timestamp(*x)),
            _ => Err(fail()),
        },
        _ => Err(fail()),
    }
}

/// A registered custom (plugin) function.
pub struct CustomFunction {
    /// Function name.
    pub name: String,
    /// Signature checker.
    pub signature: CustomSignatureFn,
    /// Row-at-a-time implementation.
    pub eval: CustomScalarFn,
}

/// Resolves function names to handles and implementations.
///
/// Cloning shares the registered functions.
#[derive(Clone)]
pub struct FunctionRegistry {
    builtins: HashMap<&'static str, Builtin>,
    custom: Arc<parking_lot_stub::RwLockish<HashMap<String, Arc<CustomFunction>>>>,
}

// `presto-expr` deliberately depends only on presto-common; a tiny internal
// lock keeps it that way without pulling parking_lot into this crate.
mod parking_lot_stub {
    use std::sync::RwLock;

    #[derive(Default)]
    pub struct RwLockish<T>(RwLock<T>);

    impl<T> RwLockish<T> {
        pub fn new(v: T) -> Self {
            RwLockish(RwLock::new(v))
        }
        pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
            self.0.read().unwrap_or_else(|e| e.into_inner())
        }
        pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
            self.0.write().unwrap_or_else(|e| e.into_inner())
        }
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl FunctionRegistry {
    /// Registry pre-loaded with all built-ins.
    pub fn new() -> FunctionRegistry {
        let mut builtins = HashMap::new();
        for b in Builtin::all() {
            builtins.insert(b.name(), *b);
        }
        FunctionRegistry {
            builtins,
            custom: Arc::new(parking_lot_stub::RwLockish::new(HashMap::new())),
        }
    }

    /// Register a plugin scalar function (the §VI.E plugin mechanism).
    pub fn register_custom(
        &self,
        name: impl Into<String>,
        signature: CustomSignatureFn,
        eval: CustomScalarFn,
    ) {
        let name = name.into();
        let f = Arc::new(CustomFunction { name: name.clone(), signature, eval });
        self.custom.write().insert(name, f);
    }

    /// Look up a built-in by name.
    pub fn builtin(&self, name: &str) -> Option<Builtin> {
        self.builtins.get(name).copied()
    }

    /// Look up a custom function by name.
    pub fn custom(&self, name: &str) -> Option<Arc<CustomFunction>> {
        self.custom.read().get(name).cloned()
    }

    /// True when `name` is known (built-in or custom).
    pub fn contains(&self, name: &str) -> bool {
        self.builtins.contains_key(name) || self.custom.read().contains_key(name)
    }

    /// Resolve `name(arg_types...)` to a self-contained handle.
    pub fn resolve(&self, name: &str, arg_types: &[DataType]) -> Result<FunctionHandle> {
        if let Some(b) = self.builtin(name) {
            if let Some(ret) = b.return_type(arg_types) {
                return Ok(FunctionHandle::new(name, arg_types.to_vec(), ret));
            }
            return Err(PrestoError::Analysis(format!(
                "function {name}({}) cannot be applied",
                arg_types.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
            )));
        }
        if let Some(c) = self.custom(name) {
            if let Some(ret) = (c.signature)(arg_types) {
                return Ok(FunctionHandle::new(name, arg_types.to_vec(), ret));
            }
            return Err(PrestoError::Analysis(format!(
                "function {name}({}) cannot be applied",
                arg_types.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
            )));
        }
        Err(PrestoError::Analysis(format!("unknown function '{name}'")))
    }

    /// Resolve an explicit CAST to `target`.
    pub fn resolve_cast(&self, from: &DataType, target: &DataType) -> FunctionHandle {
        FunctionHandle::new("cast", vec![from.clone()], target.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_builtin_with_type_check() {
        let r = FunctionRegistry::new();
        let h = r.resolve("eq", &[DataType::Bigint, DataType::Bigint]).unwrap();
        assert_eq!(h.return_type, DataType::Boolean);
        // numeric mixing allowed
        assert!(r.resolve("lt", &[DataType::Bigint, DataType::Double]).is_ok());
        // type-strict otherwise
        assert!(r.resolve("eq", &[DataType::Varchar, DataType::Bigint]).is_err());
        assert!(r.resolve("no_such_fn", &[]).is_err());
    }

    #[test]
    fn arithmetic_promotes_types() {
        let r = FunctionRegistry::new();
        assert_eq!(
            r.resolve("add", &[DataType::Integer, DataType::Integer]).unwrap().return_type,
            DataType::Integer
        );
        assert_eq!(
            r.resolve("add", &[DataType::Integer, DataType::Bigint]).unwrap().return_type,
            DataType::Bigint
        );
        assert_eq!(
            r.resolve("mul", &[DataType::Bigint, DataType::Double]).unwrap().return_type,
            DataType::Double
        );
    }

    #[test]
    fn scalar_eval_matches_sql_semantics() {
        let b = DataType::Boolean;
        assert_eq!(
            Builtin::Eq.eval_scalar(&[Value::Bigint(2), Value::Bigint(2)], &b).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            Builtin::Lt.eval_scalar(&[Value::Null, Value::Bigint(2)], &b).unwrap(),
            Value::Null
        );
        assert_eq!(
            Builtin::Add
                .eval_scalar(&[Value::Bigint(2), Value::Double(0.5)], &DataType::Double)
                .unwrap(),
            Value::Double(2.5)
        );
        assert!(Builtin::Div
            .eval_scalar(&[Value::Bigint(1), Value::Bigint(0)], &DataType::Bigint)
            .is_err());
        assert_eq!(
            Builtin::Substr
                .eval_scalar(
                    &[Value::Varchar("abcdef".into()), Value::Bigint(2), Value::Bigint(3)],
                    &DataType::Varchar
                )
                .unwrap(),
            Value::Varchar("bcd".into())
        );
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("driver_uuid", "driver%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
        assert!(like_match("needle in a haystack", "%needle%"));
    }

    #[test]
    fn casts_are_explicit_and_checked() {
        assert_eq!(
            cast_value(&Value::Varchar("42".into()), &DataType::Bigint).unwrap(),
            Value::Bigint(42)
        );
        assert_eq!(
            cast_value(&Value::Bigint(1), &DataType::Varchar).unwrap(),
            Value::Varchar("1".into())
        );
        assert!(cast_value(&Value::Varchar("abc".into()), &DataType::Bigint).is_err());
        assert_eq!(cast_value(&Value::Null, &DataType::Bigint).unwrap(), Value::Null);
        // narrowing checks range
        assert!(cast_value(&Value::Bigint(i64::MAX), &DataType::Integer).is_err());
    }

    #[test]
    fn custom_functions_register_and_resolve() {
        let r = FunctionRegistry::new();
        r.register_custom(
            "st_point",
            Arc::new(|args: &[DataType]| {
                (args == [DataType::Double, DataType::Double]).then_some(DataType::Varchar)
            }),
            Arc::new(|args: &[Value]| {
                Ok(Value::Varchar(format!(
                    "POINT ({} {})",
                    args[0].as_f64().unwrap_or(0.0),
                    args[1].as_f64().unwrap_or(0.0)
                )))
            }),
        );
        let h = r.resolve("st_point", &[DataType::Double, DataType::Double]).unwrap();
        assert_eq!(h.return_type, DataType::Varchar);
        let f = r.custom("st_point").unwrap();
        let v = (f.eval)(&[Value::Double(1.0), Value::Double(2.0)]).unwrap();
        assert_eq!(v, Value::Varchar("POINT (1 2)".into()));
        // shared across clones
        let clone = r.clone();
        assert!(clone.contains("st_point"));
    }

    #[test]
    fn element_at_and_collections() {
        let map = Value::Map(vec![(Value::Varchar("a".into()), Value::Double(1.0))]);
        assert_eq!(
            Builtin::ElementAt
                .eval_scalar(&[map.clone(), Value::Varchar("a".into())], &DataType::Double)
                .unwrap(),
            Value::Double(1.0)
        );
        assert_eq!(
            Builtin::ElementAt
                .eval_scalar(&[map.clone(), Value::Varchar("z".into())], &DataType::Double)
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            Builtin::Cardinality.eval_scalar(&[map], &DataType::Bigint).unwrap(),
            Value::Bigint(1)
        );
        let arr = Value::Array(vec![Value::Bigint(5), Value::Bigint(6)]);
        assert_eq!(
            Builtin::ElementAt
                .eval_scalar(&[arr.clone(), Value::Bigint(2)], &DataType::Bigint)
                .unwrap(),
            Value::Bigint(6)
        );
        assert_eq!(
            Builtin::Contains.eval_scalar(&[arr, Value::Bigint(7)], &DataType::Boolean).unwrap(),
            Value::Boolean(false)
        );
    }
}
