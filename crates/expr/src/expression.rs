//! The RowExpression IR and its serialization.
//!
//! Table I of the paper lists the subtypes verbatim:
//!
//! | ExpressionType                | Represents |
//! |-------------------------------|------------|
//! | ConstantExpression            | Literal values such as (1L, BIGINT) |
//! | VariableReferenceExpression   | Reference to an input column |
//! | CallExpression                | Function calls: arithmetic, casts, UDFs |
//! | SpecialFormExpression         | IN, IF, IS_NULL, AND, DEREFERENCE, ... |
//! | LambdaDefinitionExpression    | Anonymous functions |

use std::fmt;

use presto_common::{DataType, Field, PrestoError, Result, Value};

/// Serializable function-resolution record.
///
/// §IV.B: "We resolve this by storing function resolution information in the
/// expression representation itself as a serializable functionHandle. This
/// makes it possible to consistently reference a function when we reuse the
/// expressions containing the function." A handle fully determines which
/// implementation runs: name + exact argument types + return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionHandle {
    /// Canonical function name (e.g. `eq`, `add`, `st_contains`).
    pub name: String,
    /// Resolved argument types.
    pub arg_types: Vec<DataType>,
    /// Resolved return type.
    pub return_type: DataType,
}

impl FunctionHandle {
    /// Construct a handle.
    pub fn new(name: impl Into<String>, arg_types: Vec<DataType>, return_type: DataType) -> Self {
        FunctionHandle { name: name.into(), arg_types, return_type }
    }
}

/// The special built-in forms of Table I ("E.g. IN, IF, IS_NULL, AND,
/// DEREFERENCE").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpecialForm {
    /// Kleene-logic conjunction.
    And,
    /// Kleene-logic disjunction.
    Or,
    /// `arg0 IN (arg1, .., argN)`.
    In,
    /// `IF(cond, then, else)`.
    If,
    /// `arg0 IS NULL`.
    IsNull,
    /// First non-null argument.
    Coalesce,
    /// `BETWEEN(value, low, high)` inclusive.
    Between,
    /// Struct field access `arg0.<field_index>` — how `base.city_id` reaches
    /// into nested data (§V).
    Dereference {
        /// Index of the field within the row type of `arg0`.
        field_index: usize,
    },
}

impl SpecialForm {
    fn tag(&self) -> &'static str {
        match self {
            SpecialForm::And => "AND",
            SpecialForm::Or => "OR",
            SpecialForm::In => "IN",
            SpecialForm::If => "IF",
            SpecialForm::IsNull => "IS_NULL",
            SpecialForm::Coalesce => "COALESCE",
            SpecialForm::Between => "BETWEEN",
            SpecialForm::Dereference { .. } => "DEREFERENCE",
        }
    }
}

/// A self-contained, analyzable, serializable expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RowExpression {
    /// `ConstantExpression` — a literal with its type, e.g. `(1L, BIGINT)`.
    Constant {
        /// The literal value.
        value: Value,
        /// Its SQL type (needed because `NULL` carries no type of its own).
        data_type: DataType,
    },
    /// `VariableReferenceExpression` — "reference to an input column and a
    /// field of the output from previous relation expression".
    VariableReference {
        /// Column name, for display and re-binding.
        name: String,
        /// Channel (column index) in the input page.
        index: usize,
        /// Column type.
        data_type: DataType,
    },
    /// `CallExpression` — "function calls, which includes all arithmetic
    /// operations, casts, UDFs".
    Call {
        /// The resolved function.
        handle: FunctionHandle,
        /// Argument expressions.
        args: Vec<RowExpression>,
    },
    /// `SpecialFormExpression` — special built-in function calls.
    SpecialForm {
        /// Which form.
        form: SpecialForm,
        /// Arguments.
        args: Vec<RowExpression>,
        /// Result type.
        return_type: DataType,
    },
    /// `LambdaDefinitionExpression` — e.g. `(x BIGINT) -> x + 1`.
    LambdaDefinition {
        /// Parameter names and types.
        parameters: Vec<(String, DataType)>,
        /// Body; parameter references appear as `VariableReference` with
        /// indices `input_width + param_position` bound at evaluation time.
        body: Box<RowExpression>,
    },
}

impl RowExpression {
    // -------------------------------------------------------------- helpers

    /// A typed NULL literal.
    pub fn null(data_type: DataType) -> RowExpression {
        RowExpression::Constant { value: Value::Null, data_type }
    }

    /// A BIGINT literal.
    pub fn bigint(v: i64) -> RowExpression {
        RowExpression::Constant { value: Value::Bigint(v), data_type: DataType::Bigint }
    }

    /// A DOUBLE literal.
    pub fn double(v: f64) -> RowExpression {
        RowExpression::Constant { value: Value::Double(v), data_type: DataType::Double }
    }

    /// A VARCHAR literal.
    pub fn varchar(v: impl Into<String>) -> RowExpression {
        RowExpression::Constant { value: Value::Varchar(v.into()), data_type: DataType::Varchar }
    }

    /// A BOOLEAN literal.
    pub fn boolean(v: bool) -> RowExpression {
        RowExpression::Constant { value: Value::Boolean(v), data_type: DataType::Boolean }
    }

    /// A column reference.
    pub fn column(name: impl Into<String>, index: usize, data_type: DataType) -> RowExpression {
        RowExpression::VariableReference { name: name.into(), index, data_type }
    }

    /// The static type of this expression.
    pub fn data_type(&self) -> DataType {
        match self {
            RowExpression::Constant { data_type, .. } => data_type.clone(),
            RowExpression::VariableReference { data_type, .. } => data_type.clone(),
            RowExpression::Call { handle, .. } => handle.return_type.clone(),
            RowExpression::SpecialForm { return_type, .. } => return_type.clone(),
            RowExpression::LambdaDefinition { body, .. } => body.data_type(),
        }
    }

    /// True when the expression contains no variable references (and thus can
    /// be constant-folded).
    pub fn is_constant(&self) -> bool {
        match self {
            RowExpression::Constant { .. } => true,
            RowExpression::VariableReference { .. } => false,
            RowExpression::Call { args, .. } => args.iter().all(RowExpression::is_constant),
            RowExpression::SpecialForm { args, .. } => args.iter().all(RowExpression::is_constant),
            RowExpression::LambdaDefinition { .. } => false,
        }
    }

    /// Collect the distinct input column indices this expression reads.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let RowExpression::VariableReference { index, .. } = e {
                if !out.contains(index) {
                    out.push(*index);
                }
            }
        });
        out.sort_unstable();
        out
    }

    /// Pre-order visit of the expression tree.
    pub fn visit(&self, f: &mut impl FnMut(&RowExpression)) {
        f(self);
        match self {
            RowExpression::Call { args, .. } | RowExpression::SpecialForm { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            RowExpression::LambdaDefinition { body, .. } => body.visit(f),
            _ => {}
        }
    }

    /// Rebuild the tree bottom-up through `f`.
    pub fn rewrite(self, f: &impl Fn(RowExpression) -> RowExpression) -> RowExpression {
        let rebuilt = match self {
            RowExpression::Call { handle, args } => RowExpression::Call {
                handle,
                args: args.into_iter().map(|a| a.rewrite(f)).collect(),
            },
            RowExpression::SpecialForm { form, args, return_type } => RowExpression::SpecialForm {
                form,
                args: args.into_iter().map(|a| a.rewrite(f)).collect(),
                return_type,
            },
            RowExpression::LambdaDefinition { parameters, body } => {
                RowExpression::LambdaDefinition { parameters, body: Box::new(body.rewrite(f)) }
            }
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// Remap variable references through `mapping` (old index → new index).
    /// References absent from `mapping` are left untouched.
    pub fn remap_columns(self, mapping: &std::collections::HashMap<usize, usize>) -> RowExpression {
        self.rewrite(&|e| match e {
            RowExpression::VariableReference { name, index, data_type } => {
                let index = mapping.get(&index).copied().unwrap_or(index);
                RowExpression::VariableReference { name, index, data_type }
            }
            other => other,
        })
    }

    /// Split a conjunction into its conjuncts (flattening nested ANDs).
    pub fn conjuncts(&self) -> Vec<RowExpression> {
        match self {
            RowExpression::SpecialForm { form: SpecialForm::And, args, .. } => {
                args.iter().flat_map(|a| a.conjuncts()).collect()
            }
            other => vec![other.clone()],
        }
    }

    /// AND-combine conjuncts ( `None` for the empty list).
    pub fn combine_conjuncts(mut conjuncts: Vec<RowExpression>) -> Option<RowExpression> {
        match conjuncts.len() {
            0 => None,
            1 => Some(conjuncts.remove(0)),
            _ => Some(RowExpression::SpecialForm {
                form: SpecialForm::And,
                args: conjuncts,
                return_type: DataType::Boolean,
            }),
        }
    }

    // -------------------------------------------------------- serialization

    /// Serialize to the compact self-contained text form.
    ///
    /// This is the property Table I is about: the expression carries
    /// everything (types, resolved handles) needed for another system — a
    /// connector, a remote worker — to evaluate it without consulting the
    /// coordinator's analyzer. [`RowExpression::deserialize`] round-trips.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        self.write_sexp(&mut out);
        out
    }

    fn write_sexp(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            RowExpression::Constant { value, data_type } => {
                write!(out, "(const {} {})", type_sexp(data_type), value_sexp(value)).unwrap();
            }
            RowExpression::VariableReference { name, index, data_type } => {
                write!(out, "(var {} {} {})", escape(name), index, type_sexp(data_type)).unwrap();
            }
            RowExpression::Call { handle, args } => {
                write!(out, "(call {} (", escape(&handle.name)).unwrap();
                for (i, t) in handle.arg_types.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(&type_sexp(t));
                }
                write!(out, ") {}", type_sexp(&handle.return_type)).unwrap();
                for a in args {
                    out.push(' ');
                    a.write_sexp(out);
                }
                out.push(')');
            }
            RowExpression::SpecialForm { form, args, return_type } => {
                let extra = match form {
                    SpecialForm::Dereference { field_index } => format!(" {field_index}"),
                    _ => String::new(),
                };
                write!(out, "(form {}{} {}", form.tag(), extra, type_sexp(return_type)).unwrap();
                for a in args {
                    out.push(' ');
                    a.write_sexp(out);
                }
                out.push(')');
            }
            RowExpression::LambdaDefinition { parameters, body } => {
                out.push_str("(lambda (");
                for (i, (name, t)) in parameters.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    use std::fmt::Write;
                    write!(out, "{}:{}", escape(name), type_sexp(t)).unwrap();
                }
                out.push_str(") ");
                body.write_sexp(out);
                out.push(')');
            }
        }
    }

    /// Parse the text form produced by [`RowExpression::serialize`].
    pub fn deserialize(text: &str) -> Result<RowExpression> {
        let mut parser = SexpParser { input: text.as_bytes(), pos: 0 };
        let expr = parser.parse_expr()?;
        parser.skip_ws();
        if parser.pos != parser.input.len() {
            return Err(PrestoError::Internal("trailing input after expression".into()));
        }
        Ok(expr)
    }
}

impl fmt::Display for RowExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowExpression::Constant { value, .. } => write!(f, "{value}"),
            RowExpression::VariableReference { name, .. } => write!(f, "{name}"),
            RowExpression::Call { handle, args } => {
                write!(f, "{}(", handle.name)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            RowExpression::SpecialForm { form, args, .. } => match form {
                SpecialForm::Dereference { .. } => write!(f, "{}.<{}>", args[0], form.tag()),
                SpecialForm::And | SpecialForm::Or => {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, " {} ", form.tag())?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
                _ => {
                    write!(f, "{}(", form.tag())?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            },
            RowExpression::LambdaDefinition { parameters, body } => {
                write!(f, "(")?;
                for (i, (n, t)) in parameters.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}:{t}")?;
                }
                write!(f, ") -> {body}")
            }
        }
    }
}

// ------------------------------------------------------------------ sexp io

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

fn type_sexp(t: &DataType) -> String {
    match t {
        DataType::Boolean => "boolean".into(),
        DataType::Bigint => "bigint".into(),
        DataType::Integer => "integer".into(),
        DataType::Double => "double".into(),
        DataType::Varchar => "varchar".into(),
        DataType::Date => "date".into(),
        DataType::Timestamp => "timestamp".into(),
        DataType::Array(e) => format!("(array {})", type_sexp(e)),
        DataType::Map(k, v) => format!("(map {} {})", type_sexp(k), type_sexp(v)),
        DataType::Row(fields) => {
            let mut out = String::from("(row");
            for f in fields {
                out.push(' ');
                out.push_str(&escape(&f.name));
                out.push(' ');
                out.push_str(&type_sexp(&f.data_type));
            }
            out.push(')');
            out
        }
    }
}

fn value_sexp(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Boolean(b) => format!("(bool {b})"),
        Value::Bigint(x) => format!("(i64 {x})"),
        Value::Integer(x) => format!("(i32 {x})"),
        Value::Double(x) => format!("(f64 {})", x.to_bits()),
        Value::Varchar(s) => format!("(str {})", escape(s)),
        Value::Date(x) => format!("(date {x})"),
        Value::Timestamp(x) => format!("(ts {x})"),
        Value::Array(items) => {
            let mut out = String::from("(arr");
            for i in items {
                out.push(' ');
                out.push_str(&value_sexp(i));
            }
            out.push(')');
            out
        }
        Value::Map(entries) => {
            let mut out = String::from("(mapv");
            for (k, val) in entries {
                out.push(' ');
                out.push_str(&value_sexp(k));
                out.push(' ');
                out.push_str(&value_sexp(val));
            }
            out.push(')');
            out
        }
        Value::Row(items) => {
            let mut out = String::from("(rowv");
            for i in items {
                out.push(' ');
                out.push_str(&value_sexp(i));
            }
            out.push(')');
            out
        }
    }
}

struct SexpParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> SexpParser<'a> {
    fn err(&self, msg: &str) -> PrestoError {
        PrestoError::Internal(format!("expression deserialize error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        self.skip_ws();
        if self.pos < self.input.len() && self.input[self.pos] == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn word(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && !self.input[self.pos].is_ascii_whitespace()
            && self.input[self.pos] != b'('
            && self.input[self.pos] != b')'
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected word"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn quoted(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        while self.pos < self.input.len() {
            match self.input[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.err("invalid utf-8"));
                }
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.input.len() {
                        out.push(self.input[self.pos]);
                        self.pos += 1;
                    }
                }
                c => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
        Err(self.err("unterminated string"))
    }

    fn usize_word(&mut self) -> Result<usize> {
        self.word()?.parse().map_err(|_| self.err("expected integer"))
    }

    fn parse_type(&mut self) -> Result<DataType> {
        if self.peek() == Some(b'(') {
            self.expect(b'(')?;
            let kind = self.word()?;
            let t = match kind.as_str() {
                "array" => DataType::array(self.parse_type()?),
                "map" => {
                    let k = self.parse_type()?;
                    let v = self.parse_type()?;
                    DataType::map(k, v)
                }
                "row" => {
                    let mut fields = Vec::new();
                    while self.peek() != Some(b')') {
                        let name = self.quoted()?;
                        let t = self.parse_type()?;
                        fields.push(Field::new(name, t));
                    }
                    DataType::Row(fields)
                }
                other => return Err(self.err(&format!("unknown type '{other}'"))),
            };
            self.expect(b')')?;
            return Ok(t);
        }
        match self.word()?.as_str() {
            "boolean" => Ok(DataType::Boolean),
            "bigint" => Ok(DataType::Bigint),
            "integer" => Ok(DataType::Integer),
            "double" => Ok(DataType::Double),
            "varchar" => Ok(DataType::Varchar),
            "date" => Ok(DataType::Date),
            "timestamp" => Ok(DataType::Timestamp),
            other => Err(self.err(&format!("unknown type '{other}'"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        if self.peek() != Some(b'(') {
            let w = self.word()?;
            return if w == "null" {
                Ok(Value::Null)
            } else {
                Err(self.err(&format!("unknown value '{w}'")))
            };
        }
        self.expect(b'(')?;
        let kind = self.word()?;
        let v = match kind.as_str() {
            "bool" => Value::Boolean(self.word()? == "true"),
            "i64" => Value::Bigint(self.word()?.parse().map_err(|_| self.err("bad i64"))?),
            "i32" => Value::Integer(self.word()?.parse().map_err(|_| self.err("bad i32"))?),
            "f64" => Value::Double(f64::from_bits(
                self.word()?.parse().map_err(|_| self.err("bad f64 bits"))?,
            )),
            "str" => Value::Varchar(self.quoted()?),
            "date" => Value::Date(self.word()?.parse().map_err(|_| self.err("bad date"))?),
            "ts" => Value::Timestamp(self.word()?.parse().map_err(|_| self.err("bad ts"))?),
            "arr" => {
                let mut items = Vec::new();
                while self.peek() != Some(b')') {
                    items.push(self.parse_value()?);
                }
                Value::Array(items)
            }
            "mapv" => {
                let mut entries = Vec::new();
                while self.peek() != Some(b')') {
                    let k = self.parse_value()?;
                    let v = self.parse_value()?;
                    entries.push((k, v));
                }
                Value::Map(entries)
            }
            "rowv" => {
                let mut items = Vec::new();
                while self.peek() != Some(b')') {
                    items.push(self.parse_value()?);
                }
                Value::Row(items)
            }
            other => return Err(self.err(&format!("unknown value kind '{other}'"))),
        };
        self.expect(b')')?;
        Ok(v)
    }

    fn parse_expr(&mut self) -> Result<RowExpression> {
        self.expect(b'(')?;
        let kind = self.word()?;
        let expr = match kind.as_str() {
            "const" => {
                let data_type = self.parse_type()?;
                let value = self.parse_value()?;
                RowExpression::Constant { value, data_type }
            }
            "var" => {
                let name = self.quoted()?;
                let index = self.usize_word()?;
                let data_type = self.parse_type()?;
                RowExpression::VariableReference { name, index, data_type }
            }
            "call" => {
                let name = self.quoted()?;
                self.expect(b'(')?;
                let mut arg_types = Vec::new();
                while self.peek() != Some(b')') {
                    arg_types.push(self.parse_type()?);
                }
                self.expect(b')')?;
                let return_type = self.parse_type()?;
                let mut args = Vec::new();
                while self.peek() != Some(b')') {
                    args.push(self.parse_expr()?);
                }
                RowExpression::Call {
                    handle: FunctionHandle::new(name, arg_types, return_type),
                    args,
                }
            }
            "form" => {
                let tag = self.word()?;
                let form = match tag.as_str() {
                    "AND" => SpecialForm::And,
                    "OR" => SpecialForm::Or,
                    "IN" => SpecialForm::In,
                    "IF" => SpecialForm::If,
                    "IS_NULL" => SpecialForm::IsNull,
                    "COALESCE" => SpecialForm::Coalesce,
                    "BETWEEN" => SpecialForm::Between,
                    "DEREFERENCE" => SpecialForm::Dereference { field_index: self.usize_word()? },
                    other => return Err(self.err(&format!("unknown form '{other}'"))),
                };
                let return_type = self.parse_type()?;
                let mut args = Vec::new();
                while self.peek() != Some(b')') {
                    args.push(self.parse_expr()?);
                }
                RowExpression::SpecialForm { form, args, return_type }
            }
            "lambda" => {
                self.expect(b'(')?;
                let mut parameters = Vec::new();
                while self.peek() != Some(b')') {
                    // Parameters serialize as "name":type with a colon join.
                    let name = self.quoted()?;
                    self.expect(b':')?;
                    let t = self.parse_type()?;
                    parameters.push((name, t));
                }
                self.expect(b')')?;
                let body = Box::new(self.parse_expr()?);
                RowExpression::LambdaDefinition { parameters, body }
            }
            other => return Err(self.err(&format!("unknown expression kind '{other}'"))),
        };
        self.expect(b')')?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_call() -> RowExpression {
        // eq(base.city_id, 12)
        let base = RowExpression::column(
            "base",
            0,
            DataType::row(vec![
                Field::new("driver_uuid", DataType::Varchar),
                Field::new("city_id", DataType::Bigint),
            ]),
        );
        let city = RowExpression::SpecialForm {
            form: SpecialForm::Dereference { field_index: 1 },
            args: vec![base],
            return_type: DataType::Bigint,
        };
        RowExpression::Call {
            handle: FunctionHandle::new(
                "eq",
                vec![DataType::Bigint, DataType::Bigint],
                DataType::Boolean,
            ),
            args: vec![city, RowExpression::bigint(12)],
        }
    }

    #[test]
    fn all_five_table_i_subtypes_serialize_round_trip() {
        let exprs = vec![
            RowExpression::Constant { value: Value::Bigint(1), data_type: DataType::Bigint },
            RowExpression::column("c0", 3, DataType::Varchar),
            sample_call(),
            RowExpression::SpecialForm {
                form: SpecialForm::In,
                args: vec![
                    RowExpression::column("x", 0, DataType::Bigint),
                    RowExpression::bigint(1),
                    RowExpression::bigint(2),
                ],
                return_type: DataType::Boolean,
            },
            RowExpression::LambdaDefinition {
                parameters: vec![("x".into(), DataType::Bigint), ("y".into(), DataType::Bigint)],
                body: Box::new(RowExpression::Call {
                    handle: FunctionHandle::new(
                        "add",
                        vec![DataType::Bigint, DataType::Bigint],
                        DataType::Bigint,
                    ),
                    args: vec![
                        RowExpression::column("x", 0, DataType::Bigint),
                        RowExpression::column("y", 1, DataType::Bigint),
                    ],
                }),
            },
        ];
        for e in exprs {
            let text = e.serialize();
            let back = RowExpression::deserialize(&text).unwrap();
            assert_eq!(back, e, "round trip failed for {text}");
        }
    }

    #[test]
    fn serialization_is_self_contained() {
        // The serialized form of a call carries the full resolved handle —
        // name, argument types, return type — exactly the Table I property.
        let text = sample_call().serialize();
        assert!(text.contains("\"eq\""));
        assert!(text.contains("bigint"));
        assert!(text.contains("boolean"));
        assert!(text.contains("DEREFERENCE 1"));
    }

    #[test]
    fn special_values_round_trip() {
        for v in [
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::Varchar("quote \" backslash \\ end".into()),
            Value::Array(vec![Value::Null, Value::Bigint(2)]),
            Value::Map(vec![(Value::Varchar("k".into()), Value::Double(1.5))]),
            Value::Row(vec![Value::Null]),
        ] {
            let e = RowExpression::Constant { value: v.clone(), data_type: DataType::Varchar };
            let back = RowExpression::deserialize(&e.serialize()).unwrap();
            match back {
                RowExpression::Constant { value, .. } => assert_eq!(value, v),
                _ => panic!("wrong subtype"),
            }
        }
    }

    #[test]
    fn conjunct_split_and_combine() {
        let a = RowExpression::boolean(true);
        let b = RowExpression::boolean(false);
        let c = RowExpression::column("c", 0, DataType::Boolean);
        let and_ab = RowExpression::combine_conjuncts(vec![a.clone(), b.clone()]).unwrap();
        let nested = RowExpression::combine_conjuncts(vec![and_ab.clone(), c.clone()]).unwrap();
        assert_eq!(nested.conjuncts(), vec![a.clone(), b, c]);
        assert_eq!(RowExpression::combine_conjuncts(vec![]), None);
        assert_eq!(RowExpression::combine_conjuncts(vec![a.clone()]), Some(a));
    }

    #[test]
    fn referenced_columns_and_remap() {
        let expr = sample_call();
        assert_eq!(expr.referenced_columns(), vec![0]);
        let mapping = std::collections::HashMap::from([(0usize, 5usize)]);
        let remapped = expr.remap_columns(&mapping);
        assert_eq!(remapped.referenced_columns(), vec![5]);
    }

    #[test]
    fn is_constant_detects_foldability() {
        assert!(RowExpression::bigint(1).is_constant());
        assert!(!sample_call().is_constant());
        let fold = RowExpression::Call {
            handle: FunctionHandle::new(
                "add",
                vec![DataType::Bigint, DataType::Bigint],
                DataType::Bigint,
            ),
            args: vec![RowExpression::bigint(1), RowExpression::bigint(2)],
        };
        assert!(fold.is_constant());
    }

    #[test]
    fn display_is_readable() {
        assert!(sample_call().to_string().contains("eq("),);
        let l = RowExpression::LambdaDefinition {
            parameters: vec![("x".into(), DataType::Bigint)],
            body: Box::new(RowExpression::column("x", 0, DataType::Bigint)),
        };
        assert_eq!(l.to_string(), "(x:bigint) -> x");
    }
}
