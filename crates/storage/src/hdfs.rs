//! HDFS simulator with a single NameNode cost model.
//!
//! §VII: "we found the single Hadoop Distributed File System (HDFS) NameNode
//! listFiles performance degradation, could hurt Presto performance badly."
//! This simulator routes every metadata operation (`list_files`,
//! `get_file_info`) through one NameNode whose virtual latency grows with
//! directory size and with how many metadata calls are in flight — the
//! contention that motivates the §VII caches. Data reads go to (simulated)
//! DataNodes and are charged per byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use presto_common::metrics::{names, CounterSet};
use presto_common::{Result, SimClock};

use crate::fs::{FileStatus, FileSystem};
use crate::memory::InMemoryFileSystem;

/// NameNode / DataNode cost model.
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    /// Fixed NameNode RPC cost.
    pub namenode_base_latency: Duration,
    /// Additional `list_files` cost per directory entry.
    pub list_per_entry: Duration,
    /// Extra multiplier applied per concurrently outstanding metadata call —
    /// the "single NameNode" degradation under load.
    pub contention_factor: f64,
    /// Fixed DataNode round-trip cost per read request.
    pub read_base_latency: Duration,
    /// DataNode read cost per megabyte.
    pub read_per_mb: Duration,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            namenode_base_latency: Duration::from_micros(500),
            list_per_entry: Duration::from_micros(20),
            contention_factor: 0.5,
            read_base_latency: Duration::from_millis(1),
            read_per_mb: Duration::from_millis(8),
        }
    }
}

/// The HDFS simulator. Cloning shares the filesystem, clock and counters.
///
/// Counters recorded: `hdfs.list_files`, `hdfs.get_file_info`,
/// `hdfs.read_ops`, `hdfs.read_bytes`, `hdfs.write_ops`.
#[derive(Clone)]
pub struct HdfsFileSystem {
    store: InMemoryFileSystem,
    config: Arc<HdfsConfig>,
    clock: SimClock,
    metrics: CounterSet,
    inflight_metadata: Arc<AtomicU64>,
}

impl HdfsFileSystem {
    /// New simulator over a fresh in-memory store.
    pub fn new(config: HdfsConfig, clock: SimClock, metrics: CounterSet) -> HdfsFileSystem {
        HdfsFileSystem {
            store: InMemoryFileSystem::new(),
            config: Arc::new(config),
            clock,
            metrics,
            inflight_metadata: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Simulator with default config and private clock/metrics.
    pub fn with_defaults() -> HdfsFileSystem {
        HdfsFileSystem::new(HdfsConfig::default(), SimClock::new(), CounterSet::new())
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared call counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Direct access to the backing store (bypasses the cost model); used by
    /// test fixtures that need to seed data without charging virtual time.
    pub fn backing_store(&self) -> &InMemoryFileSystem {
        &self.store
    }

    fn charge_namenode(&self, entries: usize) {
        let outstanding = self.inflight_metadata.fetch_add(1, Ordering::Relaxed);
        let base = self.config.namenode_base_latency + self.config.list_per_entry * entries as u32;
        // Load-dependent degradation: each outstanding metadata call inflates
        // the cost. This is what makes uncached listFiles storms hurt (§VII).
        let multiplier = 1.0 + self.config.contention_factor * outstanding as f64;
        let cost = Duration::from_nanos((base.as_nanos() as f64 * multiplier) as u64);
        self.clock.advance(cost);
        self.inflight_metadata.fetch_sub(1, Ordering::Relaxed);
    }
}

impl FileSystem for HdfsFileSystem {
    fn list_files(&self, dir: &str) -> Result<Vec<FileStatus>> {
        self.metrics.incr(names::HDFS_LIST_FILES);
        let listed = self.store.list_files(dir)?;
        self.charge_namenode(listed.len());
        Ok(listed)
    }

    fn get_file_info(&self, path: &str) -> Result<FileStatus> {
        self.metrics.incr(names::HDFS_GET_FILE_INFO);
        self.charge_namenode(1);
        self.store.get_file_info(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.metrics.incr(names::HDFS_READ_OPS);
        self.metrics.add(names::HDFS_READ_BYTES, len);
        let per_mb = self.config.read_per_mb.as_nanos() as f64;
        let cost = per_mb * (len as f64 / (1024.0 * 1024.0));
        self.clock.advance(self.config.read_base_latency + Duration::from_nanos(cost as u64));
        self.store.read_range(path, offset, len)
    }

    fn write(&self, path: &str, data: &[u8]) -> Result<()> {
        self.metrics.incr(names::HDFS_WRITE_OPS);
        self.charge_namenode(1);
        self.store.write(path, data)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.metrics.incr(names::HDFS_DELETE_OPS);
        self.charge_namenode(1);
        self.store.delete(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_calls_are_counted_and_charged() {
        let hdfs = HdfsFileSystem::with_defaults();
        hdfs.write("/t/p1/f1", b"abc").unwrap();
        hdfs.write("/t/p1/f2", b"defg").unwrap();

        let before = hdfs.clock().now();
        let listed = hdfs.list_files("/t/p1").unwrap();
        assert_eq!(listed.len(), 2);
        assert!(hdfs.clock().now() > before, "listFiles must cost virtual time");
        assert_eq!(hdfs.metrics().get(names::HDFS_LIST_FILES), 1);

        hdfs.get_file_info("/t/p1/f1").unwrap();
        assert_eq!(hdfs.metrics().get(names::HDFS_GET_FILE_INFO), 1);
    }

    #[test]
    fn bigger_directories_cost_more_to_list() {
        let small = HdfsFileSystem::with_defaults();
        small.backing_store().write("/d/f0", b"x").unwrap();
        let t0 = small.clock().now();
        small.list_files("/d").unwrap();
        let small_cost = small.clock().now() - t0;

        let big = HdfsFileSystem::with_defaults();
        for i in 0..1000 {
            big.backing_store().write(&format!("/d/f{i}"), b"x").unwrap();
        }
        let t0 = big.clock().now();
        big.list_files("/d").unwrap();
        let big_cost = big.clock().now() - t0;

        assert!(big_cost > small_cost * 10, "{big_cost:?} vs {small_cost:?}");
    }

    #[test]
    fn reads_charge_per_byte_and_count() {
        let hdfs = HdfsFileSystem::with_defaults();
        hdfs.backing_store().write("/f", &vec![0u8; 2 * 1024 * 1024]).unwrap();
        let t0 = hdfs.clock().now();
        let data = hdfs.read_range("/f", 0, 1024 * 1024).unwrap();
        assert_eq!(data.len(), 1024 * 1024);
        assert!(hdfs.clock().now() - t0 >= Duration::from_millis(7));
        assert_eq!(hdfs.metrics().get(names::HDFS_READ_BYTES), 1024 * 1024);
    }
}
