//! Amazon S3 simulator and the `PrestoS3FileSystem` of §IX.
//!
//! "Amazon S3 is an object storage system. To support general FileSystem api
//! and run it efficiently for Presto, we did a number of optimizations:
//! (1) Lazy seek ... (2) Exponential backoff ... (3) Leverage Amazon S3
//! select ... (4) Multi-part upload."
//!
//! [`S3ObjectStore`] models the remote side: every request costs virtual
//! latency, requests are counted, and transient `503 SlowDown` faults can be
//! injected deterministically. [`PrestoS3FileSystem`] implements
//! [`FileSystem`] on top with each of the four optimizations individually
//! toggleable so the §IX experiments can measure their effect.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use presto_common::metrics::{names, CounterSet};
use presto_common::{PrestoError, Result, SimClock};

use crate::fs::{is_direct_child, normalize, FileStatus, FileSystem};

/// Cost / behaviour model for the simulated S3 endpoint.
#[derive(Debug, Clone)]
pub struct S3Config {
    /// First-byte latency of every request.
    pub request_latency: Duration,
    /// Transfer cost per megabyte moved.
    pub transfer_per_mb: Duration,
    /// Inject a transient `503 SlowDown` on every k-th request (0 = never).
    pub fail_every: u64,
}

impl Default for S3Config {
    fn default() -> Self {
        S3Config {
            request_latency: Duration::from_millis(15),
            transfer_per_mb: Duration::from_millis(10),
            fail_every: 0,
        }
    }
}

/// Uploaded-but-uncommitted multipart parts, by key.
type PendingParts = BTreeMap<String, Vec<(u32, Vec<u8>)>>;

/// The remote object store. Cloning shares objects, clock, metrics.
///
/// Counters: `s3.requests`, `s3.get`, `s3.put`, `s3.head`, `s3.list`,
/// `s3.select`, `s3.upload_part`, `s3.bytes_out`, `s3.bytes_in`,
/// `s3.faults_injected`.
#[derive(Clone)]
pub struct S3ObjectStore {
    objects: Arc<RwLock<BTreeMap<String, Arc<Vec<u8>>>>>,
    pending_multipart: Arc<Mutex<PendingParts>>,
    config: Arc<S3Config>,
    clock: SimClock,
    metrics: CounterSet,
    request_seq: Arc<AtomicU64>,
}

impl S3ObjectStore {
    /// New store.
    pub fn new(config: S3Config, clock: SimClock, metrics: CounterSet) -> S3ObjectStore {
        S3ObjectStore {
            objects: Arc::new(RwLock::new(BTreeMap::new())),
            pending_multipart: Arc::new(Mutex::new(BTreeMap::new())),
            config: Arc::new(config),
            clock,
            metrics,
            request_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Store with default config and private clock/metrics.
    pub fn with_defaults() -> S3ObjectStore {
        S3ObjectStore::new(S3Config::default(), SimClock::new(), CounterSet::new())
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared request counters.
    pub fn metrics(&self) -> &CounterSet {
        &self.metrics
    }

    /// Seed an object without charging requests or time (test fixtures).
    pub fn seed(&self, key: &str, data: &[u8]) {
        self.objects.write().insert(normalize(key), Arc::new(data.to_vec()));
    }

    /// Start a request: charge latency, maybe inject a transient fault.
    fn begin_request(&self, kind: &str) -> Result<()> {
        self.metrics.incr(names::S3_REQUESTS);
        self.metrics.incr(&format!("s3.{kind}"));
        self.clock.advance(self.config.request_latency);
        let seq = self.request_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.fail_every > 0 && seq.is_multiple_of(self.config.fail_every) {
            self.metrics.incr(names::S3_FAULTS_INJECTED);
            return Err(PrestoError::Storage("503 SlowDown (transient)".into()));
        }
        Ok(())
    }

    fn charge_transfer(&self, bytes: u64) {
        let cost =
            self.config.transfer_per_mb.as_nanos() as f64 * (bytes as f64 / (1024.0 * 1024.0));
        self.clock.advance(Duration::from_nanos(cost as u64));
    }

    /// `GET` with an optional byte range.
    pub fn get_object(&self, key: &str, range: Option<(u64, u64)>) -> Result<Vec<u8>> {
        self.begin_request("get")?;
        let objects = self.objects.read();
        let data = objects
            .get(&normalize(key))
            .ok_or_else(|| PrestoError::Storage(format!("NoSuchKey: {key}")))?;
        let out = match range {
            None => data.as_ref().clone(),
            Some((offset, len)) => {
                let start = offset as usize;
                let end = (offset + len) as usize;
                if end > data.len() {
                    return Err(PrestoError::Storage(format!(
                        "InvalidRange: [{start}, {end}) of {}",
                        data.len()
                    )));
                }
                data[start..end].to_vec()
            }
        };
        self.metrics.add(names::S3_BYTES_OUT, out.len() as u64);
        self.charge_transfer(out.len() as u64);
        Ok(out)
    }

    /// `PUT` a whole object.
    pub fn put_object(&self, key: &str, data: &[u8]) -> Result<()> {
        self.begin_request("put")?;
        self.metrics.add(names::S3_BYTES_IN, data.len() as u64);
        self.charge_transfer(data.len() as u64);
        self.objects.write().insert(normalize(key), Arc::new(data.to_vec()));
        Ok(())
    }

    /// `HEAD` an object.
    pub fn head_object(&self, key: &str) -> Result<FileStatus> {
        self.begin_request("head")?;
        let objects = self.objects.read();
        let key = normalize(key);
        objects
            .get(&key)
            .map(|d| FileStatus { path: key.clone(), size: d.len() as u64 })
            .ok_or_else(|| PrestoError::Storage(format!("NoSuchKey: {key}")))
    }

    /// `LIST` immediate children of a prefix.
    pub fn list_prefix(&self, prefix: &str) -> Result<Vec<FileStatus>> {
        self.begin_request("list")?;
        let prefix = normalize(prefix);
        let objects = self.objects.read();
        Ok(objects
            .iter()
            .filter(|(k, _)| is_direct_child(&prefix, k))
            .map(|(k, d)| FileStatus { path: k.clone(), size: d.len() as u64 })
            .collect())
    }

    /// `DELETE` an object.
    pub fn delete_object(&self, key: &str) -> Result<()> {
        self.begin_request("delete")?;
        self.objects
            .write()
            .remove(&normalize(key))
            .map(|_| ())
            .ok_or_else(|| PrestoError::Storage(format!("NoSuchKey: {key}")))
    }

    /// S3 Select (§IX optimization 3): the object is interpreted as
    /// newline-separated records of `\x1f`-separated fields, and only the
    /// requested field indices are returned — projection pushdown to storage,
    /// so bytes-out shrink with the projection.
    pub fn select_object(&self, key: &str, field_indices: &[usize]) -> Result<Vec<u8>> {
        self.begin_request("select")?;
        let objects = self.objects.read();
        let data = objects
            .get(&normalize(key))
            .ok_or_else(|| PrestoError::Storage(format!("NoSuchKey: {key}")))?;
        let text = String::from_utf8_lossy(data);
        let mut out = String::new();
        for line in text.lines() {
            let fields: Vec<&str> = line.split('\x1f').collect();
            let mut first = true;
            for &i in field_indices {
                if !first {
                    out.push('\x1f');
                }
                out.push_str(fields.get(i).copied().unwrap_or(""));
                first = false;
            }
            out.push('\n');
        }
        let bytes = out.into_bytes();
        self.metrics.add(names::S3_BYTES_OUT, bytes.len() as u64);
        self.charge_transfer(bytes.len() as u64);
        Ok(bytes)
    }

    /// Upload one part of a multipart upload (§IX optimization 4). Parts are
    /// assembled by [`S3ObjectStore::complete_multipart`]. Part uploads for
    /// the same key run "in parallel": the caller charges only the max part
    /// time, which [`PrestoS3FileSystem`] arranges by charging transfer for
    /// the largest part.
    pub fn upload_part(&self, key: &str, part_number: u32, data: &[u8]) -> Result<()> {
        self.begin_request("upload_part")?;
        self.metrics.add(names::S3_BYTES_IN, data.len() as u64);
        self.pending_multipart
            .lock()
            .entry(normalize(key))
            .or_default()
            .push((part_number, data.to_vec()));
        Ok(())
    }

    /// Complete a multipart upload, stitching parts in part-number order.
    pub fn complete_multipart(&self, key: &str) -> Result<()> {
        self.begin_request("complete_multipart")?;
        let mut pending = self.pending_multipart.lock();
        let mut parts = pending
            .remove(&normalize(key))
            .ok_or_else(|| PrestoError::Storage(format!("no multipart upload for {key}")))?;
        parts.sort_by_key(|(n, _)| *n);
        let mut data = Vec::new();
        for (_, part) in parts {
            data.extend_from_slice(&part);
        }
        self.objects.write().insert(normalize(key), Arc::new(data));
        Ok(())
    }
}

/// Retry/backoff, seek, and upload policy for [`PrestoS3FileSystem`].
#[derive(Debug, Clone)]
pub struct S3FsConfig {
    /// Lazy seek (§IX opt 1): defer the GET until a read actually needs data.
    pub lazy_seek: bool,
    /// Exponential backoff (§IX opt 2): double the wait per retry; when
    /// false, waits are constant (the naive policy).
    pub exponential_backoff: bool,
    /// Max retries for transient errors before giving up.
    pub max_retries: u32,
    /// First backoff wait.
    pub backoff_base: Duration,
    /// Objects at least this large upload via multipart (§IX opt 4).
    pub multipart_threshold: usize,
    /// Multipart part size.
    pub part_size: usize,
    /// Readahead issued per GET by streams.
    pub readahead: usize,
}

impl Default for S3FsConfig {
    fn default() -> Self {
        S3FsConfig {
            lazy_seek: true,
            exponential_backoff: true,
            max_retries: 6,
            backoff_base: Duration::from_millis(50),
            multipart_threshold: 8 * 1024 * 1024,
            part_size: 4 * 1024 * 1024,
            readahead: 64 * 1024,
        }
    }
}

/// `FileSystem` facade over S3 — the paper's `PrestoS3FileSystem` (§IX).
///
/// Counters: `s3fs.retries`, `s3fs.backoff_nanos`, `s3fs.multipart_uploads`,
/// `s3fs.seeks`, `s3fs.seek_fetches_avoided`.
#[derive(Clone)]
pub struct PrestoS3FileSystem {
    store: S3ObjectStore,
    config: Arc<S3FsConfig>,
}

impl PrestoS3FileSystem {
    /// Wrap an object store.
    pub fn new(store: S3ObjectStore, config: S3FsConfig) -> PrestoS3FileSystem {
        PrestoS3FileSystem { store, config: Arc::new(config) }
    }

    /// The underlying store.
    pub fn store(&self) -> &S3ObjectStore {
        &self.store
    }

    /// Run `op` with the configured retry/backoff policy.
    fn with_retries<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let metrics = self.store.metrics().clone();
        let clock = self.store.clock().clone();
        let mut wait = self.config.backoff_base;
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(PrestoError::Storage(msg)) if msg.contains("transient") => {
                    if attempt >= self.config.max_retries {
                        // Non-retryable at *this* layer — the local backoff
                        // budget is spent — but classified retryable so the
                        // coordinator may reschedule the split on another
                        // worker, where it gets a fresh budget.
                        return Err(PrestoError::TransientExhausted(format!(
                            "giving up after {attempt} retries: {msg}"
                        )));
                    }
                    metrics.incr(names::S3FS_RETRIES);
                    metrics.add(names::S3FS_BACKOFF_NANOS, wait.as_nanos() as u64);
                    clock.advance(wait);
                    if self.config.exponential_backoff {
                        wait *= 2;
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Open a seekable input stream over an object.
    pub fn open(&self, path: &str) -> Result<S3InputStream> {
        let status = self.get_file_info(path)?;
        Ok(S3InputStream {
            fs: self.clone(),
            path: normalize(path),
            size: status.size,
            pos: 0,
            buffer: Vec::new(),
            buffer_start: 0,
            pending_seek: None,
        })
    }
}

impl FileSystem for PrestoS3FileSystem {
    fn list_files(&self, dir: &str) -> Result<Vec<FileStatus>> {
        self.with_retries(|| self.store.list_prefix(dir))
    }

    fn get_file_info(&self, path: &str) -> Result<FileStatus> {
        self.with_retries(|| self.store.head_object(path))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.with_retries(|| self.store.get_object(path, Some((offset, len))))
    }

    fn write(&self, path: &str, data: &[u8]) -> Result<()> {
        if data.len() >= self.config.multipart_threshold {
            // §IX opt 4: split into parts uploaded in parallel. Request
            // latency is charged per part by the store; transfer time is
            // parallel, so charge only the largest part's transfer here.
            self.store.metrics().incr(names::S3FS_MULTIPART_UPLOADS);
            let mut largest = 0usize;
            for (i, chunk) in data.chunks(self.config.part_size).enumerate() {
                let part_number = i as u32 + 1;
                largest = largest.max(chunk.len());
                self.with_retries(|| self.store.upload_part(path, part_number, chunk))?;
            }
            self.store.charge_transfer(largest as u64);
            self.with_retries(|| self.store.complete_multipart(path))
        } else {
            self.with_retries(|| self.store.put_object(path, data))
        }
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.with_retries(|| self.store.delete_object(path))
    }
}

/// Seekable input stream with the lazy-seek optimization (§IX opt 1).
///
/// With lazy seek on, `seek` only records the target position; the GET is
/// issued when (and if) a `read` needs bytes. The Parquet reader seeks to the
/// footer, then to column chunk offsets, often skipping chunks entirely —
/// eager seeks would issue a readahead GET per seek.
pub struct S3InputStream {
    fs: PrestoS3FileSystem,
    path: String,
    size: u64,
    pos: u64,
    buffer: Vec<u8>,
    buffer_start: u64,
    pending_seek: Option<u64>,
}

impl S3InputStream {
    /// Object size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Current logical position.
    pub fn position(&self) -> u64 {
        self.pending_seek.unwrap_or(self.pos)
    }

    /// Seek to `pos`.
    pub fn seek(&mut self, pos: u64) -> Result<()> {
        let metrics = self.fs.store.metrics().clone();
        metrics.incr(names::S3FS_SEEKS);
        if self.fs.config.lazy_seek {
            // Defer: if another seek or a buffered read supersedes this, no
            // request is ever issued.
            if self.pending_seek.is_some() {
                metrics.incr(names::S3FS_SEEK_FETCHES_AVOIDED);
            }
            self.pending_seek = Some(pos);
            Ok(())
        } else {
            // Eager (naive) policy: fetch readahead at the target now.
            self.pos = pos;
            self.fill_buffer(pos)
        }
    }

    fn fill_buffer(&mut self, from: u64) -> Result<()> {
        let len = (self.fs.config.readahead as u64).min(self.size.saturating_sub(from));
        if len == 0 {
            self.buffer.clear();
            self.buffer_start = from;
            return Ok(());
        }
        self.buffer = self.fs.read_range(&self.path, from, len)?;
        self.buffer_start = from;
        Ok(())
    }

    /// Read up to `len` bytes from the current position.
    pub fn read(&mut self, len: usize) -> Result<Vec<u8>> {
        if let Some(target) = self.pending_seek.take() {
            self.pos = target;
        }
        let want = (len as u64).min(self.size.saturating_sub(self.pos)) as usize;
        if want == 0 {
            return Ok(Vec::new());
        }
        // Serve from buffer when possible.
        let buf_end = self.buffer_start + self.buffer.len() as u64;
        if self.pos >= self.buffer_start && self.pos + want as u64 <= buf_end {
            let start = (self.pos - self.buffer_start) as usize;
            let out = self.buffer[start..start + want].to_vec();
            self.pos += want as u64;
            return Ok(out);
        }
        // Fetch: at least `want`, at most readahead.
        let fetch =
            want.max(self.fs.config.readahead.min(self.size.saturating_sub(self.pos) as usize));
        self.buffer = self.fs.read_range(&self.path, self.pos, fetch as u64)?;
        self.buffer_start = self.pos;
        let out = self.buffer[..want].to_vec();
        self.pos += want as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with(config: S3FsConfig, store_config: S3Config) -> PrestoS3FileSystem {
        let store = S3ObjectStore::new(store_config, SimClock::new(), CounterSet::new());
        PrestoS3FileSystem::new(store, config)
    }

    #[test]
    fn object_crud_and_ranges() {
        let fs = fs_with(S3FsConfig::default(), S3Config::default());
        fs.write("/bucket/key", b"0123456789").unwrap();
        assert_eq!(fs.read("/bucket/key").unwrap(), b"0123456789");
        assert_eq!(fs.read_range("/bucket/key", 2, 3).unwrap(), b"234");
        assert_eq!(fs.get_file_info("/bucket/key").unwrap().size, 10);
        assert_eq!(fs.list_files("/bucket").unwrap().len(), 1);
        fs.delete("/bucket/key").unwrap();
        assert!(fs.read("/bucket/key").is_err());
    }

    #[test]
    fn lazy_seek_avoids_wasted_gets() {
        // Pattern: open, seek A, seek B, read — the Parquet footer dance.
        let run = |lazy: bool| -> u64 {
            let fs = fs_with(
                S3FsConfig { lazy_seek: lazy, ..S3FsConfig::default() },
                S3Config::default(),
            );
            fs.store().seed("/b/f", &vec![7u8; 1024 * 1024]);
            let mut stream = fs.open("/b/f").unwrap();
            for target in [1000u64, 500_000, 900_000] {
                stream.seek(target).unwrap();
            }
            stream.read(100).unwrap();
            fs.store().metrics().get("s3.get")
        };
        let eager_gets = run(false);
        let lazy_gets = run(true);
        assert_eq!(lazy_gets, 1, "lazy seek issues exactly one GET for the final read");
        assert!(eager_gets >= 3, "eager seek issues a GET per seek, got {eager_gets}");
    }

    #[test]
    fn exponential_backoff_survives_fault_bursts() {
        // Fail every 2nd request: a retry storm that constant backoff also
        // survives, but exponential waits longer in total per retry chain.
        let fs = fs_with(
            S3FsConfig { exponential_backoff: true, ..S3FsConfig::default() },
            S3Config { fail_every: 2, ..S3Config::default() },
        );
        fs.store().seed("/b/f", b"data");
        for _ in 0..8 {
            assert_eq!(fs.read_range("/b/f", 0, 4).unwrap(), b"data");
        }
        assert!(fs.store().metrics().get(names::S3FS_RETRIES) > 0);
        assert!(fs.store().metrics().get(names::S3_FAULTS_INJECTED) > 0);
    }

    #[test]
    fn retries_give_up_eventually() {
        let fs = fs_with(
            S3FsConfig { max_retries: 2, ..S3FsConfig::default() },
            S3Config { fail_every: 1, ..S3Config::default() }, // always fail
        );
        fs.store().seed("/b/f", b"data");
        let err = fs.read_range("/b/f", 0, 4).unwrap_err();
        assert!(err.to_string().contains("giving up"));
    }

    #[test]
    fn retry_exhaustion_is_coordinator_retryable() {
        let fs = fs_with(
            S3FsConfig { max_retries: 2, ..S3FsConfig::default() },
            S3Config { fail_every: 1, ..S3Config::default() }, // always fail
        );
        fs.store().seed("/b/f", b"data");
        let err = fs.read_range("/b/f", 0, 4).unwrap_err();
        // the local backoff budget is spent, but the error class tells the
        // coordinator the split may be rescheduled on another worker
        assert_eq!(err.code(), "TRANSIENT_EXHAUSTED");
        assert!(err.is_retryable());
    }

    #[test]
    fn multipart_upload_for_large_objects() {
        let fs = fs_with(
            S3FsConfig { multipart_threshold: 1024, part_size: 400, ..S3FsConfig::default() },
            S3Config::default(),
        );
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        fs.write("/b/big", &data).unwrap();
        assert_eq!(fs.store().metrics().get(names::S3FS_MULTIPART_UPLOADS), 1);
        assert_eq!(fs.store().metrics().get("s3.upload_part"), 5);
        assert_eq!(fs.read("/b/big").unwrap(), data);

        // small objects use a single PUT
        fs.write("/b/small", b"tiny").unwrap();
        assert_eq!(fs.store().metrics().get("s3.put"), 1);
    }

    #[test]
    fn s3_select_projects_fields() {
        let store = S3ObjectStore::with_defaults();
        store.seed("/b/t", b"a\x1fb\x1fc\nd\x1fe\x1ff\n");
        let out = store.select_object("/b/t", &[0, 2]).unwrap();
        assert_eq!(out, b"a\x1fc\nd\x1ff\n");
        // fewer bytes than a full GET
        let full = store.get_object("/b/t", None).unwrap();
        assert!(out.len() < full.len());
    }

    #[test]
    fn requests_cost_virtual_time() {
        let store = S3ObjectStore::with_defaults();
        store.seed("/b/f", &vec![0u8; 1024 * 1024]);
        let t0 = store.clock().now();
        store.get_object("/b/f", None).unwrap();
        let elapsed = store.clock().now() - t0;
        assert!(elapsed >= Duration::from_millis(25), "{elapsed:?}");
    }

    #[test]
    fn stream_sequential_reads_use_readahead_buffer() {
        let fs =
            fs_with(S3FsConfig { readahead: 1000, ..S3FsConfig::default() }, S3Config::default());
        fs.store().seed("/b/f", &vec![1u8; 10_000]);
        let mut stream = fs.open("/b/f").unwrap();
        for _ in 0..10 {
            assert_eq!(stream.read(100).unwrap().len(), 100);
        }
        // 1000 bytes of readahead serve ten 100-byte reads with one GET
        assert_eq!(fs.store().metrics().get("s3.get"), 1);
    }
}
