//! Zero-latency in-memory filesystem — the backing store beneath the HDFS
//! and S3 simulators, and a convenient standalone filesystem for tests.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use presto_common::{PrestoError, Result};

use crate::fs::{is_direct_child, normalize, FileStatus, FileSystem};

/// In-memory filesystem. Cloning shares the contents.
#[derive(Debug, Clone, Default)]
pub struct InMemoryFileSystem {
    files: Arc<RwLock<BTreeMap<String, Arc<Vec<u8>>>>>,
}

impl InMemoryFileSystem {
    /// New, empty filesystem.
    pub fn new() -> InMemoryFileSystem {
        InMemoryFileSystem::default()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|v| v.len() as u64).sum()
    }

    /// All file paths, sorted.
    pub fn all_paths(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }
}

impl FileSystem for InMemoryFileSystem {
    fn list_files(&self, dir: &str) -> Result<Vec<FileStatus>> {
        let dir = normalize(dir);
        let files = self.files.read();
        Ok(files
            .iter()
            .filter(|(path, _)| is_direct_child(&dir, path))
            .map(|(path, data)| FileStatus { path: path.clone(), size: data.len() as u64 })
            .collect())
    }

    fn get_file_info(&self, path: &str) -> Result<FileStatus> {
        let path = normalize(path);
        let files = self.files.read();
        files
            .get(&path)
            .map(|data| FileStatus { path: path.clone(), size: data.len() as u64 })
            .ok_or_else(|| PrestoError::Storage(format!("no such file: {path}")))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let path = normalize(path);
        let files = self.files.read();
        let data = files
            .get(&path)
            .ok_or_else(|| PrestoError::Storage(format!("no such file: {path}")))?;
        let start = offset as usize;
        let end = (offset + len) as usize;
        if end > data.len() {
            return Err(PrestoError::Storage(format!(
                "read past end of {path}: [{start}, {end}) of {}",
                data.len()
            )));
        }
        Ok(data[start..end].to_vec())
    }

    fn write(&self, path: &str, data: &[u8]) -> Result<()> {
        self.files.write().insert(normalize(path), Arc::new(data.to_vec()));
        Ok(())
    }

    fn delete(&self, path: &str) -> Result<()> {
        let path = normalize(path);
        self.files
            .write()
            .remove(&path)
            .map(|_| ())
            .ok_or_else(|| PrestoError::Storage(format!("no such file: {path}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_list_delete() {
        let fs = InMemoryFileSystem::new();
        fs.write("/warehouse/trips/part-0", b"hello").unwrap();
        fs.write("/warehouse/trips/part-1", b"world!").unwrap();
        fs.write("/warehouse/cities/part-0", b"x").unwrap();

        let listed = fs.list_files("/warehouse/trips").unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].size, 5);

        assert_eq!(fs.read("/warehouse/trips/part-1").unwrap(), b"world!");
        assert_eq!(fs.read_range("/warehouse/trips/part-1", 1, 3).unwrap(), b"orl");
        assert!(fs.read_range("/warehouse/trips/part-1", 4, 10).is_err());

        assert_eq!(fs.get_file_info("/warehouse/cities/part-0").unwrap().size, 1);
        assert!(fs.get_file_info("/nope").is_err());

        fs.delete("/warehouse/cities/part-0").unwrap();
        assert!(fs.delete("/warehouse/cities/part-0").is_err());
        assert_eq!(fs.file_count(), 2);
    }

    #[test]
    fn listing_is_non_recursive() {
        let fs = InMemoryFileSystem::new();
        fs.write("/a/file", b"1").unwrap();
        fs.write("/a/b/file", b"2").unwrap();
        let listed = fs.list_files("/a").unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].path, "/a/file");
    }

    #[test]
    fn clones_share_contents() {
        let fs = InMemoryFileSystem::new();
        let alias = fs.clone();
        alias.write("/f", b"shared").unwrap();
        assert_eq!(fs.read("/f").unwrap(), b"shared");
        assert_eq!(fs.total_bytes(), 6);
    }
}
