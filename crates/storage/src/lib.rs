#![warn(missing_docs)]

//! Simulated storage substrates.
//!
//! The paper's engine runs against heterogeneous remote storage: HDFS (§II,
//! §VII), Amazon S3 / Google GCS (§IX), plus the OLAP and OLTP stores behind
//! connectors. This crate provides the storage layer the reproduction runs
//! on:
//!
//! - [`fs::FileSystem`] — the filesystem abstraction the Hive connector and
//!   Parquet reader use (`listFiles`, `getFileInfo`, ranged reads — the very
//!   calls §VII's caches exist to avoid);
//! - [`memory::InMemoryFileSystem`] — zero-latency backing store;
//! - [`local::LocalFileSystem`] — a host-disk backing store (spill-to-disk
//!   benchmarks pay real file I/O through it);
//! - [`hdfs::HdfsFileSystem`] — an HDFS simulator with a single **NameNode**
//!   whose metadata operations have a load-dependent cost model (reproducing
//!   the "single NameNode listFiles performance degradation" of §VII);
//! - [`s3::S3ObjectStore`] / [`s3::PrestoS3FileSystem`] — an object store
//!   with per-request latency and transient-fault injection, and the
//!   `PrestoS3FileSystem` of §IX with **lazy seek**, **exponential backoff**,
//!   **S3-Select projection pushdown** and **multipart upload**.
//!
//! All simulated latency is *virtual* ([`presto_common::SimClock`]), so tests
//! and experiments are deterministic; all remote calls are counted in a
//! [`presto_common::metrics::CounterSet`].

pub mod fs;
pub mod hdfs;
pub mod local;
pub mod memory;
pub mod s3;

pub use fs::{FileStatus, FileSystem};
pub use hdfs::{HdfsConfig, HdfsFileSystem};
pub use local::LocalFileSystem;
pub use memory::InMemoryFileSystem;
pub use s3::{PrestoS3FileSystem, S3Config, S3ObjectStore};
