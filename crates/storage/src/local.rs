//! Local-disk filesystem, rooted at a host directory.
//!
//! Virtual `/a/b` paths map to `<root>/a/b` on the real disk. Spill-to-disk
//! benchmarks use this (via [`LocalFileSystem::temp`]) so spilled partitions
//! pay real file I/O; tests stay on [`crate::InMemoryFileSystem`].

use std::fs;
use std::io;
use std::path::PathBuf;

use presto_common::{PrestoError, Result};

use crate::fs::{normalize, FileStatus, FileSystem};

/// A [`FileSystem`] over a directory of the host filesystem.
pub struct LocalFileSystem {
    root: PathBuf,
}

impl LocalFileSystem {
    /// Filesystem rooted at `root`; the directory is created if missing.
    pub fn new(root: impl Into<PathBuf>) -> Result<LocalFileSystem> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("create root", &root, e))?;
        Ok(LocalFileSystem { root })
    }

    /// Filesystem rooted at a fresh per-process directory under the system
    /// temp dir (`presto-<label>-<pid>`).
    pub fn temp(label: &str) -> Result<LocalFileSystem> {
        let root = std::env::temp_dir().join(format!("presto-{label}-{}", std::process::id()));
        LocalFileSystem::new(root)
    }

    /// The host directory backing this filesystem.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// Remove the whole backing directory (bench cleanup).
    pub fn destroy(self) -> Result<()> {
        fs::remove_dir_all(&self.root).map_err(|e| io_err("destroy", &self.root, e))
    }

    fn host_path(&self, path: &str) -> PathBuf {
        self.root.join(normalize(path).trim_start_matches('/'))
    }
}

fn io_err(op: &str, path: &std::path::Path, e: io::Error) -> PrestoError {
    PrestoError::Storage(format!("{op} {}: {e}", path.display()))
}

impl FileSystem for LocalFileSystem {
    fn list_files(&self, dir: &str) -> Result<Vec<FileStatus>> {
        let host = self.host_path(dir);
        let entries = fs::read_dir(&host).map_err(|e| io_err("list", &host, e))?;
        let virt_dir = normalize(dir);
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", &host, e))?;
            let meta = entry.metadata().map_err(|e| io_err("stat", &entry.path(), e))?;
            if meta.is_file() {
                let name = entry.file_name().to_string_lossy().into_owned();
                out.push(FileStatus {
                    path: format!("{}/{}", virt_dir.trim_end_matches('/'), name),
                    size: meta.len(),
                });
            }
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    fn get_file_info(&self, path: &str) -> Result<FileStatus> {
        let host = self.host_path(path);
        let meta = fs::metadata(&host).map_err(|e| io_err("stat", &host, e))?;
        Ok(FileStatus { path: normalize(path), size: meta.len() })
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let host = self.host_path(path);
        let data = fs::read(&host).map_err(|e| io_err("read", &host, e))?;
        let start = (offset as usize).min(data.len());
        let end = (offset + len).min(data.len() as u64) as usize;
        Ok(data[start..end].to_vec())
    }

    fn write(&self, path: &str, data: &[u8]) -> Result<()> {
        let host = self.host_path(path);
        if let Some(parent) = host.parent() {
            fs::create_dir_all(parent).map_err(|e| io_err("mkdir", parent, e))?;
        }
        fs::write(&host, data).map_err(|e| io_err("write", &host, e))
    }

    fn delete(&self, path: &str) -> Result<()> {
        let host = self.host_path(path);
        fs::remove_file(&host).map_err(|e| io_err("delete", &host, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_list_delete_round_trip() {
        let fs = LocalFileSystem::temp("local-fs-test").unwrap();
        fs.write("/spill/q1/run-0.parquet", b"hello").unwrap();
        fs.write("/spill/q1/run-1.parquet", b"world!").unwrap();
        assert_eq!(fs.read("/spill/q1/run-0.parquet").unwrap(), b"hello");
        assert_eq!(fs.read_range("/spill/q1/run-1.parquet", 1, 3).unwrap(), b"orl");
        let listed = fs.list_files("/spill/q1").unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].path, "/spill/q1/run-0.parquet");
        assert_eq!(listed[1].size, 6);
        fs.delete("/spill/q1/run-0.parquet").unwrap();
        assert!(fs.get_file_info("/spill/q1/run-0.parquet").is_err());
        assert!(fs.delete("/spill/q1/run-0.parquet").is_err());
        fs.destroy().unwrap();
    }
}
