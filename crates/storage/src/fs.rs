//! The filesystem abstraction.
//!
//! Everything the engine knows about remote storage goes through this trait:
//! the Hive connector lists partitions (`list_files` — the call the §VII.A
//! file-list cache protects), the split manager stats files
//! (`get_file_info` — the §VII.B file-handle/footer cache protects), and the
//! Parquet readers issue ranged reads.

use presto_common::Result;

/// Metadata about one file, as returned by `listFiles` / `getFileInfo`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    /// Full path of the file.
    pub path: String,
    /// Size in bytes.
    pub size: u64,
}

/// A (simulated) distributed filesystem.
///
/// Directory convention: paths are `/`-separated; a directory is any path
/// prefix. `list_files` is non-recursive over immediate children files.
pub trait FileSystem: Send + Sync {
    /// List the files directly under `dir` (HDFS `listStatus`).
    fn list_files(&self, dir: &str) -> Result<Vec<FileStatus>>;

    /// Stat one file (HDFS `getFileInfo`).
    fn get_file_info(&self, path: &str) -> Result<FileStatus>;

    /// Read the whole file.
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        let info = self.get_file_info(path)?;
        self.read_range(path, 0, info.size)
    }

    /// Read `len` bytes starting at `offset`.
    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>>;

    /// Create or replace a file with `data`.
    fn write(&self, path: &str, data: &[u8]) -> Result<()>;

    /// Delete a file. Deleting a missing file is an error.
    fn delete(&self, path: &str) -> Result<()>;
}

/// Normalize a path: ensure a single leading `/`, no trailing `/`.
pub fn normalize(path: &str) -> String {
    let trimmed = path.trim_matches('/');
    format!("/{trimmed}")
}

/// The directory portion of a path (parent), normalized.
pub fn parent(path: &str) -> String {
    let norm = normalize(path);
    match norm.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => norm[..i].to_string(),
    }
}

/// True when `path` sits directly inside `dir`.
pub fn is_direct_child(dir: &str, path: &str) -> bool {
    parent(path) == normalize(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_helpers() {
        assert_eq!(normalize("warehouse/trips/"), "/warehouse/trips");
        assert_eq!(normalize("/a"), "/a");
        assert_eq!(parent("/a/b/c.parquet"), "/a/b");
        assert_eq!(parent("/a"), "/");
        assert!(is_direct_child("/a/b", "/a/b/file"));
        assert!(!is_direct_child("/a", "/a/b/file"));
    }
}
