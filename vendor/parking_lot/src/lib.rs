//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container cannot reach a crates.io mirror, so the workspace
//! patches `parking_lot` to this std-backed shim (see `[patch.crates-io]`
//! in the root manifest). It implements the subset of the API the
//! workspace uses — `Mutex`, `RwLock`, `Condvar` — with parking_lot's
//! signatures (no poisoning, `wait` takes `&mut MutexGuard`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex that ignores poisoning, like `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(v) => f.debug_tuple("Mutex").field(&&*v).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A readers-writer lock that ignores poisoning, like `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(v) => f.debug_tuple("RwLock").field(&&*v).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut guard` signatures.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
