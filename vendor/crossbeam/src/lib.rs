//! Offline stand-in for the `crossbeam` crate (see `[patch.crates-io]` in
//! the root manifest). The workspace currently declares the dependency but
//! only uses std primitives; `thread::scope` is re-exported for parity.

/// Scoped threads, backed by `std::thread::scope`.
pub mod thread {
    /// Spawn scoped threads (std-backed).
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}
