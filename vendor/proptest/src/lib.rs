//! Offline stand-in for the `proptest` crate (see `[patch.crates-io]` in
//! the root manifest). Implements the subset of the API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`/`boxed`,
//! range / tuple / `Just` / weighted-union / collection / string-pattern
//! strategies, `any::<T>()`, `sample::Index`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`] macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed and failures are **not shrunk** — a failing case panics
//! with the generated inputs visible via `assert!` formatting only.

pub mod test_runner {
    //! Deterministic random source for case generation.

    /// SplitMix64-based test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG seeded from a test identifier.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the fully qualified test name
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for [`Arbitrary`] types; build with [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // mix of unit-interval, large, and special-ish values
            match rng.below(8) {
                0 => 0.0,
                1 => -1.0,
                2 => rng.unit_f64() * 1e18 - 5e17,
                _ => rng.unit_f64() * 2000.0 - 1000.0,
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Weighted union of boxed strategies; build with [`prop_oneof!`].
    pub struct OneOf<V> {
        entries: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    /// Build a weighted union.
    pub fn one_of<V>(entries: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        let total = entries.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        OneOf { entries, total }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.entries {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    /// String-pattern strategy: `&str` generates strings matching a small
    /// regex subset (`[class]`, `\PC`, literals, `{m,n}` quantifiers).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    struct Atom {
        choices: Vec<char>,
        min: u32,
        max: u32,
    }

    /// Characters for `\PC` (any printable): ASCII plus a few multibyte
    /// codepoints so UTF-8 handling gets exercised.
    fn printable_chars() -> Vec<char> {
        let mut chars: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
        chars.extend(['é', 'λ', '中', '∑', '🦀']);
        chars
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            set.extend((lo..=hi).collect::<Vec<char>>());
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated [class] in {pattern:?}");
                    i += 1; // past ']'
                    set
                }
                '\\' => {
                    // only \PC (printable) is supported
                    assert!(
                        chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                        "unsupported escape in pattern {pattern:?}"
                    );
                    i += 3;
                    printable_chars()
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {m,n}")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (m, n) = match body.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let v: u32 = body.parse().unwrap();
                        (v, v)
                    }
                };
                i = close + 1;
                (m, n)
            } else {
                (1, 1)
            };
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(pattern) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with `size.start..size.end` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range in collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::strategy::Arbitrary;
    use super::test_runner::TestRng;

    /// An index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Per-invocation configuration for [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property test (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Define property tests: each `name(arg in strategy, ...)` block runs for
/// the configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum V {
        Int(i64),
        Null,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_and_ranges(
            data in crate::collection::vec(any::<u8>(), 0..64),
            pick in 0u8..3,
            x in 1.5f64..4.0,
        ) {
            prop_assert!(data.len() < 64);
            prop_assert!(pick < 3);
            prop_assert!((1.5..4.0).contains(&x));
        }

        /// Doc comments are allowed on proptest functions.
        #[test]
        fn oneof_map_and_strings(
            v in prop_oneof![3 => any::<i64>().prop_map(V::Int), 1 => Just(V::Null)],
            s in "[a-z0-9]{0,12}",
            t in "\\PC{0,20}",
            pair in ("[a-c]", any::<bool>()),
            idx in any::<crate::sample::Index>(),
        ) {
            match v {
                V::Int(_) | V::Null => {}
            }
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            prop_assert!(t.chars().count() <= 20);
            prop_assert_eq!(pair.0.len(), 1);
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |name: &str| {
            let mut rng = crate::test_runner::TestRng::deterministic(name);
            crate::strategy::Strategy::generate(&(0i64..1000), &mut rng)
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }
}
