//! Offline stand-in for the `criterion` crate (see `[patch.crates-io]` in
//! the root manifest). Benches compile and run: each `bench_function`
//! closure is timed over a handful of iterations and the mean is printed.
//! No statistics, plots, or baselines — just enough to keep `cargo bench`
//! targets working offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), throughput: None, sample_size: 10 }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of samples (iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        for _ in 0..self.sample_size.min(5) {
            f(&mut bencher);
        }
        let mean = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        let rate = match (self.throughput, mean.as_secs_f64()) {
            (Some(Throughput::Bytes(b)), s) if s > 0.0 => {
                format!("  {:8.1} MiB/s", b as f64 / s / (1024.0 * 1024.0))
            }
            (Some(Throughput::Elements(e)), s) if s > 0.0 => {
                format!("  {:8.0} elem/s", e as f64 / s)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean:?}{rate}", self.name);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Time one call of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Collect bench functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
