//! Offline stand-in for the `rand` crate (see `[patch.crates-io]` in the
//! root manifest). Implements the subset the workspace uses: `StdRng`
//! seeded via `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen_range` / `gen` / `gen_bool` over integer and float ranges.
//!
//! The generator is SplitMix64 — deterministic, well distributed, and
//! plenty for simulation workloads; it does **not** reproduce upstream
//! rand's exact streams, so seeded data differs numerically from a build
//! against crates.io rand (all workspace tests assert invariants, not
//! exact pseudo-random values).

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> u64 {
        rng()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> u32 {
        (rng() >> 32) as u32
    }
}

impl Standard for i64 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> i64 {
        rng() as i64
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn FnMut() -> u64) -> bool {
        rng() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> f32 {
        (rng() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly samplable from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: $t, hi: $t, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> $t {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range in gen_range");
                let offset = (rng() as u128) % span as u128;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: $t, hi: $t, _inclusive: bool, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`]. Single blanket impls so integer
/// and float literal inference works like upstream rand.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing generator API.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Draw a value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        let mut next = || self.next_u64();
        T::draw(&mut next)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// A thread-local-ish generator seeded from the system time.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos | 1)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = a.gen_range(1.5..4.0);
            assert!((1.5..4.0).contains(&f));
            let i = a.gen_range(1..=50);
            assert!((1..=50).contains(&i));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "{buckets:?}");
        }
    }
}
