//! Shared demo data platform used by examples and integration tests.
//!
//! It mirrors the paper's heterogeneous-storage picture (§IV): trips in a
//! nested-Parquet Hive warehouse on HDFS, reference data in MySQL, real-time
//! events in Druid, and geospatial city boundaries — all queryable through
//! one engine with `catalog.schema.table` names.

use std::sync::Arc;

use presto_common::metrics::CounterSet;
use presto_common::{Block, DataType, Field, Page, Schema, Value};
use presto_connectors::druid::druid_connector;
use presto_connectors::hive::HiveConnector;
use presto_connectors::memory::MemoryConnector;
use presto_connectors::mysql::MySqlConnector;
use presto_connectors::realtime::RealtimeConnector;
use presto_connectors::tpch::TpchConnector;
use presto_core::PrestoEngine;
use presto_geo::generator::GeoWorkload;
use presto_geo::wkt::to_wkt;
use presto_parquet::{WriterMode, WriterProperties};
use presto_storage::HdfsFileSystem;

/// The demo platform: one engine, many storage systems.
pub struct DemoPlatform {
    /// The engine with all catalogs registered.
    pub engine: PrestoEngine,
    /// The Hive connector (reader-config switchboard, metrics).
    pub hive: HiveConnector,
    /// The simulated HDFS beneath the warehouse.
    pub hdfs: HdfsFileSystem,
    /// The MySQL store.
    pub mysql: MySqlConnector,
    /// The Druid store + connector.
    pub druid: RealtimeConnector,
}

/// Trip file schema: the §V.C nested shape (a `base` struct).
pub fn trips_file_schema() -> Schema {
    Schema::new(vec![Field::new(
        "base",
        DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("client_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
            Field::new("vehicle_id", DataType::Bigint),
            Field::new("status", DataType::Varchar),
            Field::new("fare", DataType::Double),
            Field::new("dest_lng", DataType::Double),
            Field::new("dest_lat", DataType::Double),
        ]),
    )])
    .unwrap()
}

/// Build the full demo platform. `trips_per_day` rows are written into each
/// of three `datestr` partitions (two sealed, one open).
pub fn demo_platform(trips_per_day: usize) -> DemoPlatform {
    let engine = PrestoEngine::new();

    // ---- geospatial reference data: cities with polygon geofences
    let geo = GeoWorkload::generate(25, trips_per_day, 40, 20260706);
    let city_rows: Vec<Vec<Value>> = geo
        .cities
        .iter()
        .map(|(id, g)| vec![Value::Bigint(*id), Value::Varchar(to_wkt(g))])
        .collect();

    // ---- hive: partitioned nested trips on HDFS
    let hdfs = HdfsFileSystem::with_defaults();
    let hive = HiveConnector::new(Arc::new(hdfs.clone()), CounterSet::new());
    hive.register_table(
        "rawdata",
        "trips",
        trips_file_schema(),
        "/warehouse/rawdata/trips",
        Some("datestr"),
    );
    let base_type = trips_file_schema().field_at(0).data_type.clone();
    let statuses = ["completed", "canceled", "arrived"];
    for (d, (day, sealed)) in
        [("2017-03-01", true), ("2017-03-02", true), ("2017-03-03", false)].into_iter().enumerate()
    {
        hive.add_partition("rawdata", "trips", day, sealed).unwrap();
        let rows: Vec<Value> = (0..trips_per_day)
            .map(|i| {
                let city = (i * 7 + d) % 25;
                let p = &geo.trips[i % geo.trips.len()];
                Value::Row(vec![
                    Value::Varchar(format!("driver-{day}-{i}")),
                    Value::Varchar(format!("client-{}", i % 97)),
                    Value::Bigint(city as i64),
                    Value::Bigint((i % 1000) as i64),
                    Value::Varchar(statuses[i % 3].into()),
                    Value::Double(5.0 + (i % 50) as f64),
                    Value::Double(p.lng),
                    Value::Double(p.lat),
                ])
            })
            .collect();
        let page = Page::new(vec![Block::from_values(&base_type, &rows).unwrap()]).unwrap();
        hive.write_data_file(
            "rawdata",
            "trips",
            Some(day),
            "part-0.upq",
            &[page],
            WriterMode::Native,
            WriterProperties { row_group_rows: 1000, ..WriterProperties::default() },
        )
        .unwrap();
    }
    engine.register_catalog("hive", Arc::new(hive.clone()));

    // ---- mysql: city reference table (id, name, geofence WKT)
    let mysql = MySqlConnector::new();
    mysql
        .create_table(
            "ops",
            "cities",
            Schema::new(vec![
                Field::new("city_id", DataType::Bigint),
                Field::new("geo_shape", DataType::Varchar),
            ])
            .unwrap(),
        )
        .unwrap();
    mysql.insert("ops", "cities", city_rows).unwrap();
    engine.register_catalog("mysql", Arc::new(mysql.clone()));

    // ---- druid: real-time order events
    let druid = druid_connector();
    druid
        .store()
        .create_table(
            "realtime",
            "orders",
            Schema::new(vec![
                Field::new("ts", DataType::Timestamp),
                Field::new("city", DataType::Varchar),
                Field::new("status", DataType::Varchar),
                Field::new("amount", DataType::Double),
            ])
            .unwrap(),
        )
        .unwrap();
    let events: Vec<Vec<Value>> = (0..trips_per_day * 4)
        .map(|i| {
            vec![
                Value::Timestamp(i as i64 * 500),
                Value::Varchar(format!("city{}", i % 25)),
                Value::Varchar(statuses[i % 3].into()),
                Value::Double((i % 40) as f64 + 3.5),
            ]
        })
        .collect();
    druid.store().ingest("realtime", "orders", events).unwrap();
    engine.register_catalog("druid", Arc::new(druid.clone()));

    // ---- memory + tpch for quick experiments
    engine.register_catalog("memory", Arc::new(MemoryConnector::new()));
    engine.register_catalog("tpch", Arc::new(TpchConnector::new()));

    DemoPlatform { engine, hive, hdfs, mysql, druid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_core::Session;

    #[test]
    fn platform_builds_and_answers_queries() {
        let platform = demo_platform(300);
        let session = Session::new("hive", "rawdata");
        let result =
            platform.engine.execute_with_session("SELECT count(*) FROM trips", &session).unwrap();
        assert_eq!(result.rows(), vec![vec![Value::Bigint(900)]]);
    }
}
