#![warn(missing_docs)]

//! Root package of the *Running Presto at Scale* reproduction.
//!
//! The library crates live under `crates/`; this package hosts the runnable
//! examples (`examples/`), the cross-crate integration tests (`tests/`), and
//! the shared [`fixtures`] they build on — a small "company data platform"
//! with a Hive warehouse on simulated HDFS, a MySQL store, a Druid cluster,
//! and geospatial reference data, mirroring the heterogeneous-storage story
//! of §II/§IV.

pub mod fixtures;
