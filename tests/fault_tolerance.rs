//! §XII integration suite: end-to-end query fault tolerance under
//! deterministic fault injection — worker crash recovery via split
//! reassignment, recovery-off counterfactuals on the same fault schedule,
//! same-seed reproducibility, cancellation of doomed queries, and gateway
//! failover after a cluster-level failure.

use std::sync::Arc;
use std::time::Duration;

use presto_cluster::{ClusterConfig, PrestoCluster, PrestoGateway, WorkerState};
use presto_common::{
    Block, DataType, FaultInjector, FaultPlan, Field, Page, Schema, SimClock, Value,
};
use presto_connectors::memory::MemoryConnector;
use presto_connectors::mysql::MySqlConnector;
use presto_core::{PrestoEngine, Session};

/// 12-page table → 12 splits per scan, spread across the workers.
fn engine_with_table() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
    let pages: Vec<Page> = (0..12)
        .map(|p| Page::new(vec![Block::bigint((p * 50..p * 50 + 50).collect())]).unwrap())
        .collect();
    memory.create_table("default", "t", schema, pages).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

fn cluster(config: ClusterConfig) -> Arc<PrestoCluster> {
    PrestoCluster::new("chaos", engine_with_table(), config, SimClock::new())
}

const COUNT_SQL: &str = "SELECT count(*) FROM t";

#[test]
fn worker_crash_mid_query_recovers_via_split_reassignment() {
    // worker 2 dies when it picks up its second split; the coordinator
    // reassigns its unfinished splits to the three survivors and the query
    // still answers correctly.
    let c = cluster(ClusterConfig {
        initial_workers: 4,
        fault_injector: FaultInjector::new(11, FaultPlan::new().crash_on_task(2, 2)),
        ..ClusterConfig::default()
    });
    let result = c.execute(COUNT_SQL, &Session::default()).unwrap();
    assert_eq!(result.rows(), vec![vec![Value::Bigint(600)]]);
    assert!(c.metrics().get("cluster.split_retries") > 0, "splits were reassigned");
    assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
    assert_eq!(c.metrics().get("cluster.worker_failures"), 1);
    let crashed: Vec<u32> =
        c.workers().iter().filter(|w| w.state() == WorkerState::Crashed).map(|w| w.id).collect();
    assert_eq!(crashed, vec![2]);
    // the shrunken fleet keeps serving later queries without the dead node
    let again = c.execute(COUNT_SQL, &Session::default()).unwrap();
    assert_eq!(again.rows(), vec![vec![Value::Bigint(600)]]);
}

#[test]
fn recovery_disabled_fails_on_the_same_fault_schedule() {
    // identical seed and plan as the recovery test: with recovery off the
    // very same injected crash fails the query instead.
    let c = cluster(ClusterConfig {
        initial_workers: 4,
        fault_injector: FaultInjector::new(11, FaultPlan::new().crash_on_task(2, 2)),
        fault_recovery: false,
        ..ClusterConfig::default()
    });
    let err = c.execute(COUNT_SQL, &Session::default()).unwrap_err();
    assert_eq!(err.code(), "WORKER_FAILED");
    assert_eq!(c.metrics().get("cluster.split_retries"), 0);
    assert_eq!(c.metrics().get("cluster.queries_failed"), 1);
}

#[test]
fn same_seed_twice_replays_byte_identical_results_and_counters() {
    let run = || {
        let c = cluster(ClusterConfig {
            initial_workers: 4,
            fault_injector: FaultInjector::new(
                42,
                FaultPlan::new().fail_rate(0.2).crash_on_task(1, 3),
            ),
            max_split_attempts: 6,
            blacklist_after: 0, // keep every surviving worker schedulable
            ..ClusterConfig::default()
        });
        let session = Session::default();
        let mut transcript = Vec::new();
        for _ in 0..10 {
            let r = c.execute("SELECT sum(x), count(*) FROM t", &session).unwrap();
            transcript.push(format!("{:?}", r.rows()));
        }
        (
            transcript,
            c.metrics().get("cluster.split_retries"),
            c.metrics().get("cluster.worker_failures"),
            c.metrics().get("cluster.queries_failed"),
            c.clock().now(),
        )
    };
    let a = run();
    let b = run();
    assert!(a.1 > 0, "the schedule must contain retries for this to mean anything");
    assert_eq!(a, b, "same seed ⇒ same rows, same counters, same virtual time");
}

#[test]
fn timed_crash_fires_at_virtual_time() {
    let c = cluster(ClusterConfig {
        initial_workers: 3,
        fault_injector: FaultInjector::new(
            2,
            FaultPlan::new().crash_at(0, Duration::from_secs(60)),
        ),
        ..ClusterConfig::default()
    });
    let session = Session::default();
    c.execute(COUNT_SQL, &session).unwrap();
    assert_eq!(c.workers()[0].state(), WorkerState::Active, "before T nothing happens");
    c.clock().advance(Duration::from_secs(60));
    let result = c.execute(COUNT_SQL, &session).unwrap();
    assert_eq!(result.rows(), vec![vec![Value::Bigint(600)]]);
    assert_eq!(c.workers()[0].state(), WorkerState::Crashed);
    assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
}

#[test]
fn terminal_failure_cancels_remaining_scans() {
    // recovery off: the injected fault on the very first task dooms the
    // query; the shared cancel flag stops the worker from scanning any of
    // the remaining 11 splits.
    let c = cluster(ClusterConfig {
        initial_workers: 1,
        fault_injector: FaultInjector::new(1, FaultPlan::new().fail_task(0, 1)),
        fault_recovery: false,
        ..ClusterConfig::default()
    });
    let err = c.execute(COUNT_SQL, &Session::default()).unwrap_err();
    assert!(err.is_retryable(), "{err}");
    assert_eq!(c.metrics().get("cluster.queries_failed"), 1);
    assert_eq!(
        c.workers()[0].completed_tasks(),
        0,
        "cancellation stopped the doomed query's remaining splits"
    );
}

#[test]
fn gateway_fails_over_after_the_cluster_gives_up() {
    // the primary's only workers drop every task, so the per-split attempt
    // budget runs out and the cluster fails the query with a *retryable*
    // error — which the gateway turns into one failover to the default
    // route's cluster.
    let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
    let primary = PrestoCluster::new(
        "primary",
        engine_with_table(),
        ClusterConfig {
            initial_workers: 2,
            fault_injector: FaultInjector::new(5, FaultPlan::new().fail_rate(1.0)),
            max_split_attempts: 2,
            blacklist_after: 0,
            ..ClusterConfig::default()
        },
        SimClock::new(),
    );
    let fallback = PrestoCluster::new(
        "standby",
        engine_with_table(),
        ClusterConfig { initial_workers: 2, ..ClusterConfig::default() },
        SimClock::new(),
    );
    gateway.add_cluster(primary.clone());
    gateway.add_cluster(fallback.clone());
    gateway.set_route("*", "standby").unwrap();
    gateway.set_route("ads", "primary").unwrap();

    let result = gateway.submit("ads", COUNT_SQL, &Session::default()).unwrap();
    assert_eq!(result.rows(), vec![vec![Value::Bigint(600)]]);
    assert_eq!(gateway.metrics().get("gateway.retried_queries"), 1);
    assert_eq!(primary.metrics().get("cluster.queries_failed"), 1);
    assert_eq!(fallback.metrics().get("cluster.queries_failed"), 0);
    assert_eq!(fallback.queries_started(), 1);
}
