//! Property-based tests over the core invariants:
//! - codec round trip on arbitrary bytes;
//! - Parquet write→read round trip on arbitrary nested values (both writer
//!   generations, both reader generations);
//! - old-reader ≡ new-reader result equivalence under arbitrary predicates;
//! - QuadTree query ≡ brute-force scan;
//! - RowExpression serialization round trip;
//! - vectorized expression evaluation ≡ the scalar oracle.

use proptest::prelude::*;

use presto_common::{Block, DataType, Field, Page, Schema, Value};
use presto_geo::geometry::{BoundingBox, Point};
use presto_geo::QuadTree;
use presto_parquet::reader::BytesSource;
use presto_parquet::reader_new::{ProjectedColumn, ReadOptions};
use presto_parquet::{
    reader_old, Codec, FilePredicate, FileWriter, ScalarPredicate, WriterMode, WriterProperties,
};

// ------------------------------------------------------------------ codecs

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for codec in [Codec::None, Codec::Fast, Codec::Deep] {
            let compressed = codec.compress(&data);
            let back = codec.decompress(&compressed).unwrap();
            prop_assert_eq!(&back, &data);
        }
    }

    #[test]
    fn codec_round_trips_compressible_bytes(
        pattern in proptest::collection::vec(any::<u8>(), 1..32),
        repeats in 1usize..200,
    ) {
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * repeats).copied().collect();
        for codec in [Codec::Fast, Codec::Deep] {
            let compressed = codec.compress(&data);
            prop_assert_eq!(codec.decompress(&compressed).unwrap(), data.clone());
        }
    }
}

// ------------------------------------------------- nested value generation

fn arb_scalar(dt: &DataType) -> BoxedStrategy<Value> {
    match dt {
        DataType::Bigint => prop_oneof![
            3 => any::<i64>().prop_map(Value::Bigint),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Double => prop_oneof![
            3 => (-1e9f64..1e9).prop_map(Value::Double),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Varchar => prop_oneof![
            3 => "[a-z0-9]{0,12}".prop_map(Value::Varchar),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Boolean => prop_oneof![
            3 => any::<bool>().prop_map(Value::Boolean),
            1 => Just(Value::Null),
        ]
        .boxed(),
        other => panic!("no generator for {other}"),
    }
}

fn nested_test_type() -> DataType {
    DataType::row(vec![
        Field::new("id", DataType::Bigint),
        Field::new("name", DataType::Varchar),
        Field::new("tags", DataType::array(DataType::Varchar)),
        Field::new(
            "inner",
            DataType::row(vec![
                Field::new("score", DataType::Double),
                Field::new("flags", DataType::array(DataType::Bigint)),
            ]),
        ),
        Field::new("props", DataType::map(DataType::Varchar, DataType::Double)),
    ])
}

fn arb_nested_value() -> BoxedStrategy<Value> {
    let inner = (
        arb_scalar(&DataType::Double),
        proptest::collection::vec(arb_scalar(&DataType::Bigint), 0..4),
    )
        .prop_map(|(score, flags)| Value::Row(vec![score, Value::Array(flags)]));
    let row = (
        arb_scalar(&DataType::Bigint),
        arb_scalar(&DataType::Varchar),
        proptest::collection::vec(arb_scalar(&DataType::Varchar), 0..4),
        inner,
        proptest::collection::vec(("[a-c]", arb_scalar(&DataType::Double)), 0..3),
    )
        .prop_map(|(id, name, tags, inner, props)| {
            Value::Row(vec![
                id,
                name,
                Value::Array(tags),
                inner,
                Value::Map(props.into_iter().map(|(k, v)| (Value::Varchar(k), v)).collect()),
            ])
        });
    prop_oneof![9 => row, 1 => Just(Value::Null)].boxed()
}

fn file_for(values: &[Value], mode: WriterMode, codec: Codec) -> Vec<u8> {
    let schema = Schema::new(vec![Field::new("base", nested_test_type())]).unwrap();
    let block = Block::from_values(&nested_test_type(), values).unwrap();
    let mut writer = FileWriter::new(
        schema,
        WriterProperties { codec, row_group_rows: 7, ..WriterProperties::default() },
        mode,
    )
    .unwrap();
    writer.write_page(&Page::new(vec![block]).unwrap()).unwrap();
    writer.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parquet_round_trips_arbitrary_nested_values(
        values in proptest::collection::vec(arb_nested_value(), 1..30),
        native in any::<bool>(),
        codec_pick in 0u8..3,
    ) {
        let codec = match codec_pick { 0 => Codec::None, 1 => Codec::Fast, _ => Codec::Deep };
        let mode = if native { WriterMode::Native } else { WriterMode::Legacy };
        let schema = Schema::new(vec![Field::new("base", nested_test_type())]).unwrap();
        let bytes = file_for(&values, mode, codec);
        let source = BytesSource::new(bytes);

        // legacy reader
        let (old_pages, _) = reader_old::read(&source, &schema, &["base".into()]).unwrap();
        let old_values: Vec<Value> =
            old_pages.iter().flat_map(|p| p.rows()).map(|mut r| r.remove(0)).collect();
        prop_assert_eq!(&old_values, &values);

        // new reader
        let options = ReadOptions::new(vec![ProjectedColumn::whole("base")]);
        let (new_pages, _) = presto_parquet::reader_new::read(&source, &schema, &options).unwrap();
        let new_values: Vec<Value> =
            new_pages.iter().flat_map(|p| p.rows()).map(|mut r| r.remove(0)).collect();
        prop_assert_eq!(&new_values, &values);
    }

    #[test]
    fn readers_agree_under_arbitrary_predicates(
        values in proptest::collection::vec(arb_nested_value(), 1..40),
        threshold in any::<i64>(),
    ) {
        let schema = Schema::new(vec![Field::new("base", nested_test_type())]).unwrap();
        let bytes = file_for(&values, WriterMode::Native, Codec::Fast);
        let source = BytesSource::new(bytes);

        // new reader with pushed predicate base.id >= threshold
        let options = ReadOptions::new(vec![ProjectedColumn::path("base", &["id"])])
            .with_predicate(FilePredicate::single(
                "base.id",
                ScalarPredicate::Range { min: Some(Value::Bigint(threshold)), max: None },
            ));
        let (pages, _) = presto_parquet::reader_new::read(&source, &schema, &options).unwrap();
        let got: Vec<Value> =
            pages.iter().flat_map(|p| p.rows()).map(|mut r| r.remove(0)).collect();

        // oracle: filter the original values
        let expected: Vec<Value> = values
            .iter()
            .filter_map(|v| match v {
                Value::Row(fields) => match &fields[0] {
                    Value::Bigint(id) if *id >= threshold => Some(Value::Bigint(*id)),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        prop_assert_eq!(got, expected);
    }
}

// ---------------------------------------------------------------- quadtree

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quadtree_equals_brute_force(
        boxes in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.1f64..20.0, 0.1f64..20.0),
            1..60,
        ),
        queries in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..20),
    ) {
        let mut tree = QuadTree::new(BoundingBox::new(0.0, 0.0, 120.0, 120.0));
        let built: Vec<BoundingBox> = boxes
            .iter()
            .map(|&(x, y, w, h)| BoundingBox::new(x, y, x + w, y + h))
            .collect();
        for (i, b) in built.iter().enumerate() {
            tree.insert(i as u32, *b);
        }
        for (qx, qy) in queries {
            let p = Point::new(qx, qy);
            let mut got = tree.query_point(&p);
            got.sort_unstable();
            let expected: Vec<u32> = built
                .iter()
                .enumerate()
                .filter(|(_, b)| b.contains_point(&p))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}

// ------------------------------------------------------------- expressions

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn row_expression_serialization_round_trips(
        value in arb_nested_value(),
    ) {
        use presto_expr::RowExpression;
        let expr = RowExpression::Constant { value, data_type: nested_test_type() };
        let text = expr.serialize();
        prop_assert_eq!(RowExpression::deserialize(&text).unwrap(), expr);
    }

    #[test]
    fn vectorized_eval_matches_scalar_oracle(
        lhs in proptest::collection::vec(arb_scalar(&DataType::Bigint), 1..50),
        constant in any::<i64>(),
    ) {
        use presto_expr::{Evaluator, FunctionHandle, FunctionRegistry, RowExpression};
        let evaluator = Evaluator::new(FunctionRegistry::new());
        let block = Block::from_values(&DataType::Bigint, &lhs).unwrap();
        let page = Page::new(vec![block]).unwrap();
        for fn_name in ["eq", "lt", "gte", "add", "mul"] {
            let ret = if matches!(fn_name, "add" | "mul") {
                DataType::Bigint
            } else {
                DataType::Boolean
            };
            let expr = RowExpression::Call {
                handle: FunctionHandle::new(
                    fn_name,
                    vec![DataType::Bigint, DataType::Bigint],
                    ret,
                ),
                args: vec![
                    RowExpression::column("x", 0, DataType::Bigint),
                    RowExpression::bigint(constant),
                ],
            };
            let vectorized = evaluator.evaluate(&expr, &page).unwrap();
            for i in 0..page.positions() {
                let row = page.row(i);
                let scalar = evaluator.evaluate_scalar(&expr, &row).unwrap();
                prop_assert_eq!(vectorized.value(i), scalar, "{} at {}", fn_name, i);
            }
        }
    }
}

// ------------------------------------------------------------------ parser

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The SQL frontend must never panic, whatever bytes arrive (§II: 2M+
    /// queries/day of arbitrary user input).
    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = presto_sql::parse_sql(&input);
    }

    /// ... including inputs that start out looking like real queries.
    #[test]
    fn parser_never_panics_on_query_like_input(
        tail in "[a-z0-9_ .,'()=<>*]{0,80}",
    ) {
        let _ = presto_sql::parse_sql(&format!("SELECT {tail}"));
        let _ = presto_sql::parse_sql(&format!("SELECT a FROM t WHERE {tail}"));
    }
}

// ------------------------------------------------------------------ blocks

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Columnar gather must agree with the scalar oracle for any nested
    /// values and any index set (the reshaping primitive under every join,
    /// sort and filter).
    #[test]
    fn block_take_matches_value_gather(
        values in proptest::collection::vec(arb_nested_value(), 1..20),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 0..40),
    ) {
        let block = Block::from_values(&nested_test_type(), &values).unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(values.len())).collect();
        let taken = block.take(&indices);
        let expected: Vec<Value> = indices.iter().map(|&i| values[i].clone()).collect();
        prop_assert_eq!(taken.to_values(), expected);
    }

    /// Filter ≡ take-of-selected-indices ≡ scalar filtering.
    #[test]
    fn block_filter_matches_oracle(
        values in proptest::collection::vec(arb_nested_value(), 1..20),
        mask_seed in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        let mask: Vec<bool> =
            (0..values.len()).map(|i| mask_seed[i % mask_seed.len()]).collect();
        let block = Block::from_values(&nested_test_type(), &values).unwrap();
        let filtered = block.filter(&mask);
        let expected: Vec<Value> = values
            .iter()
            .zip(&mask)
            .filter(|(_, &keep)| keep)
            .map(|(v, _)| v.clone())
            .collect();
        prop_assert_eq!(filtered.to_values(), expected);
    }
}
