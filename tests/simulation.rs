//! Property suite for the cluster-wide workload simulation: same-seed
//! runs are bit-identical down to every per-tenant histogram and trace
//! digest, the WFQ virtual-time invariant holds under arbitrary
//! push/pop interleavings, and every workload draw is a pure function of
//! `(seed, stream, index)`.

use proptest::prelude::*;

use presto_resource::{QueryPriority, WfqScheduler};
use presto_sim::workload::tenant_weight;
use presto_sim::{run_simulation, ArrivalProcess, SchedulerMode, SimConfig, ZipfSampler};

/// A small-but-contended configuration so each proptest case stays cheap:
/// a diurnal rush over few slots forces real queueing in every run.
fn config(seed: u64, mode: SchedulerMode) -> SimConfig {
    SimConfig {
        seed,
        tenants: 40,
        queries: 250,
        zipf_exponent: 0.9,
        arrival: ArrivalProcess::Diurnal {
            mean_interarrival_us: 120.0,
            amplitude: 0.5,
            cycle_us: 20_000,
        },
        workers: 4,
        slots: 6,
        mode,
        slos: presto_sim::SloPolicy::default(),
        elastic: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed ⇒ the two runs agree on *everything*: completion digest,
    /// trace digest, makespan, and every tenant's full latency histogram,
    /// bucket for bucket — under both queue disciplines.
    #[test]
    fn same_seed_runs_are_bit_identical_per_tenant(seed in 0u64..1_000) {
        for mode in [SchedulerMode::Wfq, SchedulerMode::Fifo] {
            let a = run_simulation(&config(seed, mode)).unwrap();
            let b = run_simulation(&config(seed, mode)).unwrap();
            prop_assert_eq!(a.digest, b.digest);
            prop_assert_eq!(a.trace_digest, b.trace_digest);
            prop_assert_eq!(a.makespan_us, b.makespan_us);
            prop_assert_eq!(a.completed, b.completed);
            prop_assert_eq!(&a.tenant_latency_us, &b.tenant_latency_us);
            prop_assert_eq!(&a.tenants, &b.tenants);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Start-time fair queuing invariant: right after a tenant is served,
    /// its finish tag may lead the global virtual time by at most one of
    /// its weighted quanta — no tenant gets more than a quantum of service
    /// ahead of its entitlement, regardless of interleaving or weights.
    #[test]
    fn wfq_finish_tag_lead_is_bounded_by_one_quantum(
        pushes in proptest::collection::vec(
            (0u32..8, 1u64..40, 10u64..2_000, 0u8..3),
            1..120,
        ),
    ) {
        let mut q = WfqScheduler::new();
        for (i, &(tenant, weight, cost_us, lane)) in pushes.iter().enumerate() {
            let lane = match lane {
                0 => QueryPriority::High,
                1 => QueryPriority::Normal,
                _ => QueryPriority::Low,
            };
            q.push(tenant, weight, lane, cost_us, i as u64);
        }
        while let Some(served) = q.pop() {
            let lead = q.served_finish(served.tenant).saturating_sub(q.vtime());
            prop_assert!(
                lead <= q.quantum(served.tenant),
                "tenant {} finish tag leads virtual time by {} > quantum {}",
                served.tenant,
                lead,
                q.quantum(served.tenant)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arrival gaps are pure in `(seed, index, at)`: two process values
    /// built from the same parameters agree on every draw, re-asking never
    /// changes an answer, and the Poisson gap ignores the current time.
    #[test]
    fn arrival_draws_are_pure_functions_of_seed_and_index(
        seed in any::<u64>(),
        mean in 10.0f64..5_000.0,
        amplitude in 0.0f64..0.9,
        index in 0u64..10_000,
        at in 0u64..10_000_000,
    ) {
        let poisson = ArrivalProcess::Poisson { mean_interarrival_us: mean };
        let diurnal = ArrivalProcess::Diurnal {
            mean_interarrival_us: mean,
            amplitude,
            cycle_us: 200_000,
        };
        // purity: same (seed, index, at) → same gap, every time
        prop_assert_eq!(
            poisson.gap_us(seed, index, at).to_bits(),
            poisson.gap_us(seed, index, at).to_bits()
        );
        prop_assert_eq!(
            diurnal.gap_us(seed, index, at).to_bits(),
            diurnal.gap_us(seed, index, at).to_bits()
        );
        // a memoryless process cannot care what time it is
        prop_assert_eq!(
            poisson.gap_us(seed, index, at).to_bits(),
            poisson.gap_us(seed, index, at.wrapping_add(12_345)).to_bits()
        );
        // the tenant pick and the weight it implies are equally pure
        let zipf = ZipfSampler::new(40, 0.9);
        let t = zipf.tenant_for(seed, index);
        prop_assert_eq!(t, zipf.tenant_for(seed, index));
        let class = presto_sim::tenant_class(t, 40);
        prop_assert_eq!(
            tenant_weight(t, 0.9, class),
            tenant_weight(t, 0.9, class)
        );
        // gaps are strictly positive: the event loop always advances
        prop_assert!(poisson.gap_us(seed, index, at) >= 0.0);
        prop_assert!(diurnal.gap_us(seed, index, at) >= 0.0);
    }
}
