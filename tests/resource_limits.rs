//! Integration tests for the resource-management subsystem (§XII.C):
//! admission control under concurrency, spill-to-disk result equality,
//! and the OOM arbiter.

use std::sync::Arc;
use std::time::Duration;

use presto_common::metrics::CounterSet;
use presto_common::{Block, DataType, Field, Page, Schema, SimClock, Value};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};
use presto_resource::{
    AdmissionConfig, MemoryPool, QueryPriority, ReservationKind, ResourceConfig, ResourceManager,
    SpillManager,
};
use proptest::prelude::*;

/// An engine over a 64-row trips table (8 cities, 8 trips each).
fn engine_with_trips() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![
        Field::new("id", DataType::Bigint),
        Field::new("city", DataType::Varchar),
        Field::new("fare", DataType::Double),
    ])
    .unwrap();
    let cities: Vec<String> = (0..64).map(|i| format!("city{}", i % 8)).collect();
    let city_refs: Vec<&str> = cities.iter().map(String::as_str).collect();
    let page = Page::new(vec![
        Block::bigint((0..64).collect()),
        Block::varchar(&city_refs),
        Block::double((0..64).map(|i| i as f64).collect()),
    ])
    .unwrap();
    memory.create_table("default", "trips", schema, vec![page]).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

const JOIN_SQL: &str = "SELECT count(*) FROM trips a JOIN trips b ON a.city = b.city";

/// N concurrent queries against an admission pool of N/2 slots: every query
/// completes (spilling under its memory budget instead of failing) and the
/// latecomers record nonzero queue-wait counters.
#[test]
fn concurrent_queries_all_complete_under_bounded_admission() {
    const N: usize = 4;
    let engine = engine_with_trips().with_resources(ResourceManager::new(
        ResourceConfig {
            cluster_memory_bytes: None,
            admission: AdmissionConfig {
                max_concurrent: Some(N / 2),
                ..AdmissionConfig::default()
            },
        },
        SimClock::new(),
    ));

    // Self-calibrate the budget: half the unconstrained peak forces spilling.
    let unconstrained = engine.execute_with_session(JOIN_SQL, &Session::default()).unwrap();
    let expected = unconstrained.rows();
    let peak = unconstrained.metrics.get("memory.reserved_peak") as usize;
    assert!(peak > 0, "join should have reserved memory");
    let budget = peak / 2;

    // Plug BOTH run slots so every query in the fleet demonstrably queues
    // before any of them can start.
    let plug_metrics = CounterSet::new();
    let plugs: Vec<_> = (0..N / 2)
        .map(|_| {
            engine
                .resources()
                .admission()
                .admit("plug", QueryPriority::Normal, &plug_metrics)
                .unwrap()
        })
        .collect();

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let engine = engine.clone();
                scope.spawn(move || {
                    let session = Session::default()
                        .with_user(format!("user{i}"))
                        .with_memory_budget(budget)
                        .with_spill(true);
                    engine.execute_with_session(JOIN_SQL, &session)
                })
            })
            .collect();
        // no free slot: all N queries must be waiting in the queue
        while engine.resources().admission().queued() < N {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(plugs);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut queued_total = 0;
    let mut wait_ms_total = 0;
    let mut spilled_total = 0;
    for result in results {
        let result = result.expect("every admitted query completes");
        assert_eq!(result.rows(), expected);
        queued_total += result.metrics.get("admission.queued");
        wait_ms_total += result.metrics.get("admission.wait_virtual_ms");
        spilled_total += result.metrics.get("spill.bytes_written");
    }
    assert!(queued_total >= N as u64, "queued {queued_total}");
    assert!(wait_ms_total > 0, "queue wait must be accounted in virtual time");
    assert!(spilled_total > 0, "budgeted queries should have spilled");
    assert_eq!(engine.resources().pool().used(), 0, "pool drained after the burst");
}

/// Spilling must not change results: aggregation, join, and sort all return
/// exactly what the unconstrained run returns.
#[test]
fn spilled_queries_match_unconstrained_results() {
    let engine = engine_with_trips();
    let queries = [
        "SELECT city, count(*), sum(fare) FROM trips GROUP BY city",
        "SELECT count(*) FROM trips a JOIN trips b ON a.city = b.city",
        "SELECT id, fare FROM trips ORDER BY fare DESC, id",
    ];
    for sql in queries {
        let unconstrained = engine.execute_with_session(sql, &Session::default()).unwrap();
        let peak = unconstrained.metrics.get("memory.reserved_peak") as usize;
        assert!(peak > 0, "{sql}: expected a blocking operator");
        let session = Session::default().with_memory_budget(peak / 2).with_spill(true);
        let spilled = engine.execute_with_session(sql, &session).unwrap();
        assert_eq!(spilled.rows(), unconstrained.rows(), "{sql}");
        assert!(spilled.metrics.get("spill.files") > 0, "{sql}: expected the query to spill");
    }
}

/// With spill disabled and the cluster pool exhausted, the OOM arbiter kills
/// the largest query — here the requester itself is the only (and largest)
/// query, and its error is the dedicated `EXCEEDED_MEMORY_LIMIT` code, not
/// the per-query budget message.
#[test]
fn oom_arbiter_kills_the_requester_when_it_is_largest() {
    let engine = engine_with_trips().with_resources(ResourceManager::new(
        ResourceConfig {
            cluster_memory_bytes: Some(512), // far below the join's build side
            ..ResourceConfig::default()
        },
        SimClock::new(),
    ));
    let err = engine.execute_with_session(JOIN_SQL, &Session::default()).unwrap_err();
    assert_eq!(err.code(), "EXCEEDED_MEMORY_LIMIT", "{err}");
    assert_eq!(engine.resources().pool().used(), 0, "killed query released everything");
    // the pool recovered: small queries still run
    let small = engine.execute("SELECT count(*) FROM trips").unwrap();
    assert_eq!(small.rows(), vec![vec![Value::Bigint(64)]]);
}

/// Two queries on one bounded pool: when the pool runs dry the arbiter kills
/// the LARGEST query, and the smaller requester then proceeds.
#[test]
fn oom_arbiter_spares_the_smaller_query() {
    let cluster = MemoryPool::new(Some(1000));
    let big = cluster.register_query(None);
    let small = cluster.register_query(None);

    let (big_result, small_result) = std::thread::scope(|scope| {
        let big_handle = scope.spawn(|| -> Result<(), presto_common::PrestoError> {
            let _guard = big.reserve(800, ReservationKind::User)?;
            // simulate an executing operator hitting page boundaries until
            // the arbiter's verdict arrives
            loop {
                big.check_killed()?;
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // wait until the big query holds its memory
        while cluster.used() < 800 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let small_handle = scope.spawn(|| {
            let guard = small.reserve(400, ReservationKind::User)?;
            drop(guard);
            Ok::<(), presto_common::PrestoError>(())
        });
        (big_handle.join().unwrap(), small_handle.join().unwrap())
    });

    let err = big_result.unwrap_err();
    assert_eq!(err.code(), "EXCEEDED_MEMORY_LIMIT", "{err}");
    small_result.expect("the smaller query survives and gets its memory");
    assert!(!small.is_killed());
    assert_eq!(cluster.used(), 0);
}

// ------------------------------------------------ spill round-trip property

fn arb_value(dt: &DataType) -> BoxedStrategy<Value> {
    match dt {
        DataType::Bigint => prop_oneof![
            4 => any::<i64>().prop_map(Value::Bigint),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Double => prop_oneof![
            4 => (-1e12f64..1e12).prop_map(Value::Double),
            1 => Just(Value::Null),
        ]
        .boxed(),
        DataType::Varchar => prop_oneof![
            4 => "[a-z]{0,12}".prop_map(Value::Varchar),
            1 => Just(Value::Null),
        ]
        .boxed(),
        _ => unreachable!("unused in this test"),
    }
}

fn arb_pages() -> impl Strategy<Value = (Schema, Vec<Page>)> {
    let types = [DataType::Bigint, DataType::Double, DataType::Varchar];
    let schema = Schema::new(
        types.iter().enumerate().map(|(i, dt)| Field::new(format!("col{i}"), dt.clone())).collect(),
    )
    .unwrap();
    let row =
        (arb_value(&DataType::Bigint), arb_value(&DataType::Double), arb_value(&DataType::Varchar))
            .prop_map(|(a, b, c)| vec![a, b, c]);
    let page = proptest::collection::vec(row, 1..40).prop_map({
        let schema = schema.clone();
        move |rows| {
            let blocks = schema
                .fields()
                .iter()
                .enumerate()
                .map(|(c, field)| {
                    let column: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
                    Block::from_values(&field.data_type, &column).unwrap()
                })
                .collect();
            Page::new(blocks).unwrap()
        }
    });
    proptest::collection::vec(page, 1..4).prop_map(move |pages| (schema.clone(), pages))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary pages survive a spill → read-back cycle row for row.
    #[test]
    fn spill_round_trips_arbitrary_pages(input in arb_pages()) {
        let (schema, pages) = input;
        let spill = SpillManager::in_memory(CounterSet::new());
        let file = spill.spill_pages(&schema, &pages).unwrap();
        let back = spill.read(&file).unwrap();
        let original: Vec<Vec<Value>> = pages.iter().flat_map(|p| p.rows()).collect();
        let restored: Vec<Vec<Value>> = back.iter().flat_map(|p| p.rows()).collect();
        prop_assert_eq!(restored, original);
        prop_assert!(spill.metrics().get("spill.bytes_written") > 0);
        spill.remove(file).unwrap();
    }
}
