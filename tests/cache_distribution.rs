//! Property tests for the cluster-wide tiered cache (PR 10):
//!
//! 1. **Minimal remap** — removing one worker from a fleet of `n` remaps
//!    only the keys that worker owned, about `keys/n` and never more than
//!    `keys/n` plus vnode-variance slack.
//! 2. **Placement/ownership agreement** — the scheduler's affinity hash
//!    (`affinity_worker`), the shared [`HashRing`], and the
//!    [`DistributedCache`]'s idea of ownership all agree for arbitrary
//!    `(seed, fleet, key set)`, regardless of membership order.
//! 3. **Shadow accuracy** — the key-only [`ShadowCache`]'s predicted hit
//!    count at capacity `C` equals a real LRU of capacity `C` replaying the
//!    same trace (Mattson's stack-distance argument makes this *exact* for
//!    plain LRU, so no tolerance is needed).
//! 4. **Invalidation safety** — a footer cached before a schema bump is
//!    never served after it, and TTL expiry refuses old entries (reuses the
//!    `tests/schema_evolution.rs` v1→v2 fixtures).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use presto_cache::{
    affinity_worker, ChunkKey, DistributedCache, DistributedCacheConfig, LruCache, MetaKind,
    MetadataCache, ShadowCache,
};
use presto_common::metrics::{names, CounterSet};
use presto_common::ring::DEFAULT_VNODES;
use presto_common::rng::mix64;
use presto_common::{Block, DataType, Field, HashRing, Page, Schema, SimClock, Value};
use presto_connectors::hive::HiveConnector;
use presto_parquet::reader::FsSource;
use presto_parquet::{reader, WriterMode, WriterProperties};
use presto_storage::HdfsFileSystem;

// ------------------------------------------------------------- generators

fn arb_fleet() -> impl Strategy<Value = Vec<u32>> {
    // 2..=32 distinct worker ids drawn from a sparse space, so ids are not
    // simply 0..n (decommissioned ids leave holes in real fleets)
    proptest::collection::vec(0u32..500, 2..33).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        if ids.len() < 2 {
            ids = vec![7, 11];
        }
        ids
    })
}

fn keys_from_seed(seed: u64, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let table = mix64(seed ^ i as u64) % 12;
            format!("/warehouse/t{table}/part-{i}")
        })
        .collect()
}

// --------------------------------------------------------- 1. minimal remap

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn removing_one_worker_remaps_at_most_its_share(
        seed in any::<u64>(),
        fleet in arb_fleet(),
        victim_pick in any::<proptest::sample::Index>(),
        nkeys in 200usize..600,
    ) {
        let ring = HashRing::with_workers(seed, DEFAULT_VNODES, fleet.iter().copied());
        let victim = fleet[victim_pick.index(fleet.len())];
        let mut after = ring.clone();
        after.remove(victim);

        let keys = keys_from_seed(seed, nkeys);
        let mut moved = 0usize;
        for key in &keys {
            let before = ring.owner(key).unwrap();
            let now = after.owner(key).unwrap();
            if before != victim {
                // a surviving worker's keys must not move at all
                prop_assert_eq!(now, before, "{} moved without cause", key);
            } else {
                prop_assert!(now != victim);
                moved += 1;
            }
        }
        // expected share is nkeys / n; allow 3x for vnode placement variance
        let bound = nkeys * 3 / fleet.len();
        prop_assert!(
            moved <= bound,
            "remapped {} of {} keys, bound {} (fleet {})",
            moved, nkeys, bound, fleet.len()
        );
    }
}

// ------------------------------------------- 2. placement/ownership agree

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scheduler_and_cache_agree_on_every_key(
        seed in any::<u64>(),
        fleet in arb_fleet(),
        shuffle in any::<u64>(),
        nkeys in 100usize..300,
    ) {
        // the scheduler's view: a ring built over its worker snapshot
        let scheduler_ring = HashRing::with_workers_default(fleet.iter().copied());

        // the cache's view: same membership arriving in a different order
        // through worker_joined (membership is a set, order must not matter)
        let mut joined = fleet.clone();
        let rot = (mix64(shuffle) as usize) % joined.len();
        joined.rotate_left(rot);
        let dist = DistributedCache::standalone(
            DistributedCacheConfig::default(),
            HashRing::with_workers_default([]),
            SimClock::new(),
            CounterSet::new(),
        );
        for w in &joined {
            dist.ring().write().insert(*w);
        }

        for (i, key) in keys_from_seed(seed, nkeys).iter().enumerate() {
            let chunk = ChunkKey { file: key.clone(), row_group: i as u32 % 4, column: 0 };
            let owner = dist.owner(&chunk).unwrap();
            // the cache's owner is the scheduler ring's owner…
            prop_assert_eq!(Some(owner), scheduler_ring.owner(&chunk.ring_key()));
            // …and the fragment-cache affinity hash routes the split
            // identity to the same worker (one hash path, by construction)
            let slot = affinity_worker(&chunk.ring_key(), &fleet).unwrap();
            prop_assert_eq!(fleet[slot], owner);
        }
    }
}

// ------------------------------------------------------ 3. shadow accuracy

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shadow_predicts_a_real_lru_exactly(
        seed in any::<u64>(),
        trace in proptest::collection::vec(0u16..120, 50..800),
        capacity in 1usize..64,
    ) {
        let keys: Vec<String> =
            trace.iter().map(|k| format!("/t{}/part-{}", mix64(seed ^ u64::from(*k)) % 7, k)).collect();

        let shadow = ShadowCache::new(256, CounterSet::new());
        let lru: LruCache<String, ()> = LruCache::new(capacity);
        let mut real_hits = 0u64;
        for key in &keys {
            shadow.access(key);
            if lru.get(key).is_some() {
                real_hits += 1;
            } else {
                lru.put(key.clone(), Arc::new(()));
            }
        }
        // Mattson: an LRU of capacity C hits exactly the accesses whose
        // stack distance is < C — the ghost cache measured those distances
        prop_assert_eq!(shadow.predicted_hits(capacity), real_hits);
        // and the curve is monotone in capacity by construction
        prop_assert!(shadow.predicted_hits(capacity + 1) >= real_hits);
    }
}

// ----------------------------------- 4. invalidation never serves stale data

fn v1_schema() -> Schema {
    Schema::new(vec![Field::new(
        "base",
        DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
        ]),
    )])
    .unwrap()
}

fn v2_schema() -> Schema {
    // v2 adds base.surge, as in tests/schema_evolution.rs
    Schema::new(vec![Field::new(
        "base",
        DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
            Field::new("surge", DataType::Double),
        ]),
    )])
    .unwrap()
}

fn write_file(hive: &HiveConnector, partition: &str, file_schema: &Schema, rows: usize) {
    let base_type = file_schema.field_at(0).data_type.clone();
    let width = match &base_type {
        DataType::Row(fields) => fields.len(),
        _ => unreachable!(),
    };
    let values: Vec<Value> = (0..rows)
        .map(|i| {
            let mut fields = vec![
                Value::Varchar(format!("drv-{partition}-{i}")),
                Value::Bigint((i % 10) as i64),
            ];
            if width > 2 {
                fields.push(Value::Double(1.0 + i as f64 / 100.0));
            }
            Value::Row(fields)
        })
        .collect();
    let page = Page::new(vec![Block::from_values(&base_type, &values).unwrap()]).unwrap();
    hive.write_data_file(
        "rawdata",
        "trips",
        Some(partition),
        "part-0.upq",
        &[page],
        WriterMode::Native,
        WriterProperties::default(),
    )
    .unwrap();
}

/// The real footer's width of the `base` row — 2 under v1, 3 under v2.
fn footer_columns(fs: &Arc<HdfsFileSystem>, path: &str) -> usize {
    let source = FsSource::open(Arc::clone(fs) as Arc<_>, path).unwrap();
    let schema = reader::read_metadata(&source).unwrap().schema;
    match &schema.field_at(0).data_type {
        DataType::Row(fields) => fields.len(),
        other => panic!("expected a row footer, got {other}"),
    }
}

#[test]
fn schema_bump_invalidates_cached_footers() {
    let fs = Arc::new(HdfsFileSystem::with_defaults());
    let hive = HiveConnector::new(Arc::clone(&fs) as Arc<_>, CounterSet::new());
    hive.register_table("rawdata", "trips", v1_schema(), "/w/trips", Some("datestr"));
    hive.add_partition("rawdata", "trips", "old", true).unwrap();
    write_file(&hive, "old", &v1_schema(), 20);
    let path = "/w/trips/datestr=old/part-0.upq";

    let clock = SimClock::new();
    let cache: MetadataCache<usize> =
        MetadataCache::new(64, Duration::from_secs(60), clock.clone(), CounterSet::new());

    // cache the v1 footer under the current table version
    cache.put("rawdata.trips", MetaKind::Footer, path, footer_columns(&fs, path));
    assert_eq!(*cache.get("rawdata.trips", MetaKind::Footer, path).unwrap(), 2);

    // schema service bumps the table to v2 and the file is rewritten
    hive.register_table("rawdata", "trips", v2_schema(), "/w/trips", Some("datestr"));
    hive.add_partition("rawdata", "trips", "old", true).unwrap();
    write_file(&hive, "old", &v2_schema(), 20);
    cache.bump_table_version("rawdata.trips");

    // the stale v1 footer must never come back — the miss forces a re-read
    // that sees the v2 file
    assert!(cache.get("rawdata.trips", MetaKind::Footer, path).is_none());
    assert!(cache.metrics().get(names::DIST_META_STALE) > 0);
    cache.put("rawdata.trips", MetaKind::Footer, path, footer_columns(&fs, path));
    assert_eq!(*cache.get("rawdata.trips", MetaKind::Footer, path).unwrap(), 3);
}

#[test]
fn ttl_expiry_refuses_old_footers() {
    let clock = SimClock::new();
    let cache: MetadataCache<usize> =
        MetadataCache::new(64, Duration::from_secs(60), clock.clone(), CounterSet::new());
    cache.put("rawdata.trips", MetaKind::Footer, "/w/trips/datestr=old/part-0.upq", 2);

    clock.advance(Duration::from_secs(60));
    assert!(
        cache.get("rawdata.trips", MetaKind::Footer, "/w/trips/datestr=old/part-0.upq").is_some(),
        "at exactly ttl the entry still serves"
    );
    clock.advance(Duration::from_secs(1));
    assert!(cache
        .get("rawdata.trips", MetaKind::Footer, "/w/trips/datestr=old/part-0.upq")
        .is_none());
    assert!(cache.metrics().get(names::DIST_META_EXPIRED) > 0);
}
