//! §IX integration test: graceful expansion and shrink under a live query
//! stream — "The worker will block until all active tasks are complete."

use std::sync::Arc;
use std::time::Duration;

use presto_cluster::{ClusterConfig, PrestoCluster, WorkerState};
use presto_common::{Block, DataType, Field, Page, Schema, SimClock, Value};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};

fn cluster(workers: u32) -> Arc<PrestoCluster> {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
    let pages: Vec<Page> = (0..12)
        .map(|p| Page::new(vec![Block::bigint((p * 50..p * 50 + 50).collect())]).unwrap())
        .collect();
    memory.create_table("default", "t", schema, pages).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    PrestoCluster::new(
        "elastic",
        engine,
        ClusterConfig {
            initial_workers: workers,
            grace_period: Duration::from_secs(120),
            ..ClusterConfig::default()
        },
        SimClock::new(),
    )
}

#[test]
fn expansion_takes_effect_without_restart() {
    let c = cluster(1);
    let session = Session::default();
    c.execute("SELECT count(*) FROM t", &session).unwrap();
    let before: usize = c.workers().iter().map(|w| w.completed_tasks()).sum();
    assert_eq!(before, 12);
    c.expand(3);
    c.execute("SELECT count(*) FROM t", &session).unwrap();
    // new workers picked up splits on the very next query
    let newcomers: usize =
        c.workers().iter().filter(|w| w.id > 0).map(|w| w.completed_tasks()).sum();
    assert!(newcomers > 0);
}

#[test]
fn shrink_follows_the_paper_state_machine() {
    let c = cluster(4);
    let session = Session::default();
    c.request_worker_shutdown(3).unwrap();
    let worker = c.workers().into_iter().find(|w| w.id == 3).unwrap();
    assert_eq!(worker.state(), WorkerState::ShuttingDownGrace1);

    // first grace period: 2 minutes
    c.clock().advance(Duration::from_secs(120));
    c.tick();
    assert_eq!(worker.state(), WorkerState::ShuttingDownGrace2); // no tasks → drained immediately

    // second grace period
    c.clock().advance(Duration::from_secs(120));
    let live = c.tick();
    assert_eq!(worker.state(), WorkerState::Terminated);
    assert_eq!(live, 3);

    // cluster still answers correctly
    let result = c.execute("SELECT count(*) FROM t", &session).unwrap();
    assert_eq!(result.rows(), vec![vec![Value::Bigint(600)]]);
    assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
}

#[test]
fn queries_running_during_shrink_never_fail() {
    let c = cluster(4);
    let session = Session::default();
    // drain half the fleet while querying
    c.request_worker_shutdown(2).unwrap();
    c.request_worker_shutdown(3).unwrap();
    for _ in 0..20 {
        let result = c.execute("SELECT sum(x) FROM t", &session).unwrap();
        assert_eq!(result.rows()[0][0], Value::Bigint((0..600).sum::<i64>()));
        c.clock().advance(Duration::from_secs(30));
        c.tick();
    }
    assert_eq!(c.metrics().get("cluster.queries_failed"), 0);
    assert_eq!(c.active_workers().len(), 2);
}

#[test]
fn distributed_results_match_single_node_engine() {
    let c = cluster(3);
    let session = Session::default();
    let distributed =
        c.execute("SELECT count(*), sum(x), min(x), max(x) FROM t", &session).unwrap();
    let local = c
        .engine()
        .execute_with_session("SELECT count(*), sum(x), min(x), max(x) FROM t", &session)
        .unwrap();
    assert_eq!(distributed.rows(), local.rows());
}
