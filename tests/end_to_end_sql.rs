//! End-to-end SQL over the demo platform: every connector, nested data,
//! pushdowns, and result correctness against hand-computed oracles.

use presto_at_scale::fixtures::{demo_platform, DemoPlatform};
use presto_common::Value;
use presto_core::Session;
use presto_plan::OptimizerConfig;

fn platform() -> DemoPlatform {
    demo_platform(400)
}

#[test]
fn nested_predicate_and_projection() {
    let p = platform();
    let session = Session::new("hive", "rawdata");
    let result = p
        .engine
        .execute_with_session(
            "SELECT base.driver_uuid, base.fare FROM trips \
             WHERE datestr = '2017-03-01' AND base.city_id = 12 AND base.fare >= 10.0",
            &session,
        )
        .unwrap();
    // oracle: day index d=0, city = (i*7+0)%25 == 12 → i ≡ 16 (mod 25)... walk it
    let expected: Vec<usize> =
        (0..400).filter(|i| (i * 7) % 25 == 12 && 5.0 + (i % 50) as f64 >= 10.0).collect();
    assert_eq!(result.row_count(), expected.len());
    for (row, i) in result.rows().iter().zip(expected.iter()) {
        assert_eq!(row[0], Value::Varchar(format!("driver-2017-03-01-{i}")));
    }
}

#[test]
fn cross_connector_join_and_aggregation() {
    let p = platform();
    let session = Session::new("hive", "rawdata");
    let result = p
        .engine
        .execute_with_session(
            "SELECT count(*) FROM hive.rawdata.trips t \
             JOIN mysql.ops.cities c ON t.base.city_id = c.city_id \
             WHERE t.datestr = '2017-03-02'",
            &session,
        )
        .unwrap();
    // every trip's city_id ∈ [0, 25) and cities has all 25 ids
    assert_eq!(result.rows(), vec![vec![Value::Bigint(400)]]);
}

#[test]
fn druid_aggregation_pushdown_matches_engine_aggregation() {
    let p = platform();
    let session = Session::new("druid", "realtime");
    let sql = "SELECT city, count(*) AS orders, sum(amount) AS gmv FROM orders \
               WHERE status = 'completed' GROUP BY city ORDER BY city";
    let pushed = p.engine.execute_with_session(sql, &session).unwrap();
    let no_push = session.clone().with_optimizer(OptimizerConfig {
        aggregation_pushdown: false,
        ..OptimizerConfig::default()
    });
    let unpushed = p.engine.execute_with_session(sql, &no_push).unwrap();
    assert_eq!(pushed.rows(), unpushed.rows());
    assert!(pushed.row_count() > 0);
}

#[test]
fn optimizer_on_and_off_agree_across_query_battery() {
    let p = platform();
    let session = Session::new("hive", "rawdata");
    let unoptimized = session.clone().with_optimizer(OptimizerConfig {
        constant_folding: false,
        topn_fusion: false,
        geo_rewrite: false,
        predicate_pushdown: false,
        projection_pushdown: false,
        aggregation_pushdown: false,
        limit_pushdown: false,
    });
    let battery = [
        "SELECT base.city_id, count(*) FROM trips GROUP BY 1 ORDER BY 1",
        "SELECT base.status, sum(base.fare) FROM trips WHERE datestr = '2017-03-01' GROUP BY 1 ORDER BY 1",
        "SELECT base.driver_uuid FROM trips WHERE base.city_id IN (1, 2, 3) AND datestr = '2017-03-02' ORDER BY 1 LIMIT 25",
        "SELECT c.city_id, count(*) FROM hive.rawdata.trips t JOIN mysql.ops.cities c \
         ON t.base.city_id = c.city_id GROUP BY 1 ORDER BY 1",
        "SELECT base.vehicle_id, max(base.fare), min(base.fare) FROM trips \
         WHERE base.fare BETWEEN 10.0 AND 30.0 GROUP BY 1 ORDER BY 1 LIMIT 10",
        "SELECT count(*) FROM trips WHERE base.status <> 'completed'",
        "SELECT DISTINCT base.status FROM trips ORDER BY 1",
    ];
    for sql in battery {
        let on = p.engine.execute_with_session(sql, &session).unwrap();
        let off = p.engine.execute_with_session(sql, &unoptimized).unwrap();
        assert_eq!(on.rows(), off.rows(), "optimizer changed results for: {sql}");
    }
}

#[test]
fn geospatial_rewrite_agrees_with_naive_st_contains() {
    let p = platform();
    let session = Session::new("hive", "rawdata");
    let sql = "SELECT c.city_id, count(*) FROM hive.rawdata.trips t \
               JOIN mysql.ops.cities c \
               ON st_contains(c.geo_shape, st_point(t.base.dest_lng, t.base.dest_lat)) \
               WHERE t.datestr = '2017-03-01' GROUP BY 1 ORDER BY 1";
    let rewritten = p.engine.execute_with_session(sql, &session).unwrap();
    let naive_session = session
        .clone()
        .with_optimizer(OptimizerConfig { geo_rewrite: false, ..OptimizerConfig::default() });
    let naive = p.engine.execute_with_session(sql, &naive_session).unwrap();
    assert_eq!(rewritten.rows(), naive.rows());
    assert!(rewritten.row_count() > 0, "some trips must land in geofences");
    // and the rewrite actually fired
    let plan = p.engine.explain(sql, &session).unwrap();
    assert!(plan.contains("GeoJoin"), "{plan}");
}

#[test]
fn tpch_lineitem_pricing_summary() {
    // the shape of TPC-H Q1 over the generated lineitem
    let p = platform();
    let session = Session::new("tpch", "tiny");
    let result = p
        .engine
        .execute_with_session(
            "SELECT returnflag, linestatus, count(*) AS cnt, sum(quantity) AS qty \
             FROM lineitem GROUP BY returnflag, linestatus ORDER BY 1, 2",
            &session,
        )
        .unwrap();
    assert_eq!(result.row_count(), 6); // 3 flags × 2 statuses
    let total: i64 = result.rows().iter().map(|r| r[2].as_i64().unwrap()).sum();
    assert_eq!(total, 20_000);
}

#[test]
fn insufficient_resources_on_big_join() {
    let p = platform();
    let session = Session::new("hive", "rawdata").with_memory_budget(1024);
    let err = p
        .engine
        .execute_with_session(
            "SELECT count(*) FROM trips a JOIN trips b ON a.base.city_id = b.base.city_id",
            &session,
        )
        .unwrap_err();
    assert_eq!(err.code(), "INSUFFICIENT_RESOURCES");
    assert!(err.message().contains("Insufficient Resource"));
}

#[test]
fn explain_surfaces_every_pushdown() {
    let p = platform();
    let session = Session::new("hive", "rawdata");
    let plan = p
        .engine
        .explain(
            "SELECT base.driver_uuid FROM trips WHERE datestr = '2017-03-02' \
             AND base.city_id = 3 LIMIT 10",
            &session,
        )
        .unwrap();
    assert!(plan.contains("predicate"), "{plan}");
    assert!(plan.contains("nested pruning"), "{plan}");
    assert!(plan.contains("limit 10"), "{plan}");
}

#[test]
fn left_join_on_residual_null_extends_instead_of_dropping() {
    // A LEFT JOIN's ON residual decides matching, not row survival: rows
    // whose residual fails must appear null-extended.
    let p = platform();
    let session = Session::new("mysql", "ops");
    // cities: 25 rows with ids 0..25; self left-join with an ON conjunct
    // that can never hold keeps every left row exactly once, null-extended.
    let result = p
        .engine
        .execute_with_session(
            "SELECT count(*) FROM cities a LEFT JOIN cities b \
             ON a.city_id = b.city_id AND a.city_id > 100",
            &session,
        )
        .unwrap();
    assert_eq!(result.rows(), vec![vec![Value::Bigint(25)]]);

    // and a residual that holds for some: matched rows joined, others kept
    let result = p
        .engine
        .execute_with_session(
            "SELECT a.city_id, b.city_id FROM cities a LEFT JOIN cities b \
             ON a.city_id = b.city_id AND a.city_id < 3 ORDER BY 1",
            &session,
        )
        .unwrap();
    let rows = result.rows();
    assert_eq!(rows.len(), 25);
    for row in &rows {
        let a = row[0].as_i64().unwrap();
        if a < 3 {
            assert_eq!(row[1], Value::Bigint(a));
        } else {
            assert!(row[1].is_null(), "city {a} must be null-extended");
        }
    }
}

#[test]
fn case_when_end_to_end_over_warehouse() {
    let p = platform();
    let session = Session::new("hive", "rawdata");
    let result = p
        .engine
        .execute_with_session(
            "SELECT CASE WHEN base.fare >= 30.0 THEN 'premium' \
                         WHEN base.fare >= 15.0 THEN 'standard' \
                         ELSE 'budget' END AS tier, count(*) \
             FROM trips GROUP BY 1 ORDER BY 1",
            &session,
        )
        .unwrap();
    let total: i64 = result.rows().iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(total, 1200); // 3 partitions x 400 rows
    assert_eq!(result.rows().len(), 3);
}

#[test]
fn system_runtime_tables_answer_sql_on_a_live_cluster() {
    use presto_cluster::{ClusterConfig, PrestoCluster};
    use presto_common::SimClock;
    use std::time::Duration;

    // the whole demo platform, lifted onto a cluster: the system catalog
    // rides along and exposes the cluster's own runtime state through SQL
    let p = platform();
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "e2e-system",
        p.engine,
        ClusterConfig { initial_workers: 3, ..ClusterConfig::default() },
        clock.clone(),
    );
    let session = Session::new("hive", "rawdata");
    cluster.execute("SELECT count(*) FROM trips WHERE datestr = '2017-03-01'", &session).unwrap();
    cluster.tick();
    clock.advance(Duration::from_millis(1));
    cluster.tick();

    let workers = cluster
        .execute("SELECT worker_id, lifecycle FROM system.runtime.workers", &session)
        .unwrap();
    assert_eq!(workers.rows().len(), 3);
    let queries = cluster
        .execute(
            "SELECT query_id, state FROM system.runtime.queries WHERE state = 'finished'",
            &session,
        )
        .unwrap();
    assert!(!queries.rows().is_empty(), "the trips query must appear as finished");
    let tasks = cluster.execute("SELECT count(*) FROM system.runtime.tasks", &session).unwrap();
    assert!(tasks.rows()[0][0].as_i64().unwrap() > 0, "scan tasks must be recorded");
    let metrics =
        cluster.execute("SELECT name, value FROM system.metrics ORDER BY name", &session).unwrap();
    assert!(
        metrics.rows().iter().any(|r| r[0] == Value::Varchar("telemetry.active_workers".into())),
        "system.metrics must list the sampler's gauges"
    );
}
