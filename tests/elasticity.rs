//! Elastic-lifecycle suite: the half-open probation contract under spot
//! revocation (a revoked worker that rejoins enters probation, never full
//! health, and one probation failure re-quarantines it), the revocation
//! storm end to end (half the fleet dies mid-query, every answer still
//! lands via retry on the survivors), and a property test that graceful
//! decommission of *any* single worker mid-run is invisible to queries.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use presto_cache::{ChunkKey, DistributedCacheConfig};
use presto_cluster::{ClusterConfig, PrestoCluster, WorkerHealth, WorkerLifecycle};
use presto_common::metrics::names;
use presto_common::{
    Block, DataType, FaultInjector, FaultPlan, Field, Page, Schema, SimClock, Value,
};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};
use presto_resource::QueryPriority;

/// 12-page table → 12 splits per scan, spread across the workers.
fn engine_with_table() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
    let pages: Vec<Page> = (0..12)
        .map(|p| Page::new(vec![Block::bigint((p * 50..p * 50 + 50).collect())]).unwrap())
        .collect();
    memory.create_table("default", "t", schema, pages).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

fn cluster(config: ClusterConfig) -> Arc<PrestoCluster> {
    PrestoCluster::new("elastic", engine_with_table(), config, SimClock::new())
}

const SUM_SQL: &str = "SELECT sum(x), count(*) FROM t";

/// sum(0..600) = 179700 over 600 rows — the answer every scenario must agree on.
fn expected_rows() -> Vec<Vec<Value>> {
    vec![vec![Value::Bigint(179_700), Value::Bigint(600)]]
}

// --------------------------------------------- rejoin lands in probation

#[test]
fn revoked_worker_rejoins_on_probation_not_at_full_health() {
    let probation = Duration::from_secs(60);
    let c = cluster(ClusterConfig { probation_window: probation, ..ClusterConfig::default() });
    let session = Session::default();

    // spot revocation takes worker 0 out abruptly; the query rides the
    // survivors and the fleet sees the loss as `Revoked`, not a drain
    let w0 = c.workers()[0].clone();
    w0.crash();
    assert_eq!(w0.lifecycle(), WorkerLifecycle::Revoked);
    assert_eq!(c.execute(SUM_SQL, &session).unwrap().rows(), expected_rows());
    assert_eq!(c.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);

    // the instance is re-granted: back to Active, but only half-open —
    // its in-flight work died with it, so trust is earned back first
    w0.rejoin();
    assert_eq!(w0.lifecycle(), WorkerLifecycle::Active);
    assert!(matches!(w0.health(), WorkerHealth::Probation { .. }), "{:?}", w0.health());
    assert!(!w0.accepts_tasks_for(QueryPriority::Normal));
    assert!(w0.accepts_tasks_for(QueryPriority::Low));

    // normal-priority traffic keeps avoiding it while on probation
    let before = w0.completed_tasks();
    assert_eq!(c.execute(SUM_SQL, &session).unwrap().rows(), expected_rows());
    assert_eq!(w0.completed_tasks(), before, "normal splits on a probation worker");

    // a clean probation window restores full health
    c.clock().advance(probation);
    assert_eq!(w0.health(), WorkerHealth::Healthy);
    assert!(w0.accepts_tasks_for(QueryPriority::Normal));
}

#[test]
fn probation_failure_after_rejoin_requarantines_immediately() {
    // the rejoined worker's very first task fails: one strike must send it
    // straight back to quarantine even though blacklist_after = 2
    let c = cluster(ClusterConfig {
        fault_injector: FaultInjector::new(11, FaultPlan::new().fail_task(0, 1)),
        blacklist_after: 2,
        quarantine_period: Duration::from_secs(300),
        probation_window: Duration::from_secs(60),
        ..ClusterConfig::default()
    });
    let w0 = c.workers()[0].clone();
    w0.crash();
    w0.rejoin();
    assert!(matches!(w0.health(), WorkerHealth::Probation { .. }));

    // the low-priority probe hits the injected failure: the query still
    // answers (split retried elsewhere) and the worker is re-quarantined
    let low = Session::default().with_priority(QueryPriority::Low);
    assert_eq!(c.execute(SUM_SQL, &low).unwrap().rows(), expected_rows());
    assert!(w0.is_blacklisted(), "probation failure must re-quarantine immediately");
    assert_eq!(c.metrics().get(names::CLUSTER_BLACKLISTED_WORKERS), 1);
    assert_eq!(c.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);

    // and the relapsed worker absorbs no normal-priority splits
    let before = w0.completed_tasks();
    assert_eq!(c.execute(SUM_SQL, &Session::default()).unwrap().rows(), expected_rows());
    assert_eq!(w0.completed_tasks(), before);
}

// ------------------------------------------------ storm hits mid-query

#[test]
fn revocation_storm_mid_query_answers_on_the_survivors() {
    // 4 on-demand + 4 spot; the whole spot class is revoked 50 virtual µs
    // in — while their first-wave splits are still in flight
    let c = cluster(ClusterConfig {
        fault_injector: FaultInjector::new(
            13,
            FaultPlan::new().revoke_class("spot", Duration::from_micros(50)),
        ),
        ..ClusterConfig::default()
    });
    c.expand_class(4, "spot");
    assert_eq!(c.workers().len(), 8);

    let result = c.execute(SUM_SQL, &Session::default()).unwrap();
    assert_eq!(result.rows(), expected_rows());
    assert_eq!(c.metrics().get(names::CLUSTER_WORKERS_REVOKED), 4);
    assert_eq!(c.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);
    let revoked = c.workers().iter().filter(|w| w.lifecycle() == WorkerLifecycle::Revoked).count();
    assert_eq!(revoked, 4, "every spot worker must be revoked, no on-demand ones");

    // the survivors keep answering after the storm
    assert_eq!(c.execute(SUM_SQL, &Session::default()).unwrap().rows(), expected_rows());
    assert_eq!(c.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);
}

// ----------------------------------- decommission is invisible to queries

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Gracefully decommissioning any single worker mid-run never changes
    /// a query answer and never increments `cluster.queries_failed` — the
    /// drain hands queued splits to survivors and the state machine runs
    /// to the reaper without a query ever noticing.
    #[test]
    fn graceful_decommission_of_any_worker_is_invisible(
        seed in 0u64..1_000,
        victim in 0u32..4,
        drain_after_us in 50u64..400,
    ) {
        // the seed varies the (deterministic) fault-injector stream both
        // clusters carry; no faults are planned, so both runs stay clean
        let grace = Duration::from_micros(100);
        let baseline = cluster(ClusterConfig {
            grace_period: grace,
            fault_injector: FaultInjector::new(seed, FaultPlan::new()),
            ..ClusterConfig::default()
        });
        let subject = cluster(ClusterConfig {
            grace_period: grace,
            fault_injector: FaultInjector::new(seed, FaultPlan::new()),
            ..ClusterConfig::default()
        });

        let session = Session::default();
        subject.schedule_decommission(
            victim,
            subject.clock().now() + Duration::from_micros(drain_after_us),
        );
        for _ in 0..3 {
            let a = baseline.execute(SUM_SQL, &session).unwrap();
            let b = subject.execute(SUM_SQL, &session).unwrap();
            prop_assert_eq!(a.rows(), b.rows());
        }
        prop_assert_eq!(subject.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);

        // the drain runs to the reaper; each grace phase restarts its
        // timer, so two advance+tick cycles are needed
        for _ in 0..2 {
            subject.clock().advance(Duration::from_millis(1));
            subject.tick();
        }
        prop_assert_eq!(subject.metrics().get(names::CLUSTER_WORKERS_DECOMMISSIONED), 1);
        prop_assert_eq!(subject.workers().len(), 3);

        // and the shrunken fleet still answers correctly
        prop_assert_eq!(
            subject.execute(SUM_SQL, &session).unwrap().rows(),
            expected_rows()
        );
        prop_assert_eq!(subject.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);
    }
}

// --------------------------- the distributed cache rides the lifecycle

/// A deterministic working set spread across the fleet: every entry is
/// stored at its ring owner, as the scheduler would place it.
fn fill_distributed(c: &PrestoCluster, entries: u32) -> Vec<ChunkKey> {
    let dist = c.distributed_cache().expect("distributed cache configured");
    (0..entries)
        .map(|i| {
            let key = ChunkKey {
                file: format!("/warehouse/t{}/part-{}", i % 5, i % 16),
                row_group: i % 4,
                column: i % 3,
            };
            let owner = dist.owner(&key).expect("non-empty ring");
            dist.put(owner, key.clone(), vec![i as u8; 4]);
            key
        })
        .collect()
}

#[test]
fn graceful_decommission_migrates_entries_to_ring_successors() {
    let c = cluster(ClusterConfig {
        grace_period: Duration::from_micros(100),
        distributed_cache: Some(DistributedCacheConfig {
            chunk_capacity: 4096,
            ..DistributedCacheConfig::default()
        }),
        ..ClusterConfig::default()
    });
    let dist = c.distributed_cache().unwrap().clone();
    let keys = fill_distributed(&c, 96);

    // for every key worker 0 owns, its ring successor is the worker that
    // must hold it after the drain
    let expected: Vec<(ChunkKey, u32)> = {
        let ring = c.ring().read().clone();
        keys.iter()
            .filter(|k| ring.owner(&k.ring_key()) == Some(0))
            .map(|k| (k.clone(), ring.successors(&k.ring_key(), 2)[1]))
            .collect()
    };
    assert!(!expected.is_empty(), "worker 0 must own some of 96 keys");
    let before = dist.len();

    c.decommission_worker(0).unwrap();

    assert_eq!(dist.len(), before, "graceful migration loses nothing");
    assert!(dist.shard_keys(0).is_empty(), "the drained shard is empty");
    for (key, successor) in &expected {
        assert_eq!(dist.owner(key), Some(*successor), "{key:?} must land on its ring successor");
        assert!(
            dist.shard_keys(*successor).contains(key),
            "{key:?} migrated somewhere other than worker {successor}"
        );
    }
    assert!(c.metrics().get(names::DIST_REMAPPED) >= expected.len() as u64);
}

/// One same-seed storm run: 4 on-demand + 4 spot workers, the spot class
/// revoked mid-query, distributed + fragment caches live throughout.
fn storm_run(seed: u64) -> (u64, Vec<Vec<Value>>) {
    let c = cluster(ClusterConfig {
        affinity_scheduling: true,
        fragment_cache_entries: 64,
        distributed_cache: Some(DistributedCacheConfig::default()),
        fault_injector: FaultInjector::new(
            seed,
            FaultPlan::new().revoke_class("spot", Duration::from_micros(50)),
        ),
        ..ClusterConfig::default()
    });
    c.expand_class(4, "spot");
    fill_distributed(&c, 200);

    let mut rows = Vec::new();
    for _ in 0..3 {
        rows.extend(c.execute(SUM_SQL, &Session::default()).unwrap().rows());
    }
    assert_eq!(c.metrics().get(names::CLUSTER_WORKERS_REVOKED), 4);
    (c.cache_digest(), rows)
}

#[test]
fn same_seed_storms_tear_caches_down_identically() {
    let (digest_a, rows_a) = storm_run(29);
    let (digest_b, rows_b) = storm_run(29);
    assert_eq!(rows_a, rows_b);
    assert_eq!(
        digest_a, digest_b,
        "same-seed revocation storms must leave bit-identical cache state"
    );

    // a different seed revokes at the same instant but shuffles retry
    // draws; answers agree, and the digest is at least well-defined
    let (digest_c, rows_c) = storm_run(31);
    assert_eq!(rows_a, rows_c);
    let _ = digest_c;
}
