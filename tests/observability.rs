//! Observability layer end-to-end: histogram invariants (property-based),
//! EXPLAIN ANALYZE over a join+aggregation, and bit-identical trace digests
//! for same-seed fault-injected cluster runs.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use presto_cluster::{ClusterConfig, PrestoCluster};
use presto_common::metrics::{names, CounterSet, Histogram};
use presto_common::trace::SpanKind;
use presto_common::{
    Block, DataType, FaultInjector, FaultPlan, Field, Page, Schema, SimClock, Value,
};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};

// ------------------------------------------------------ histogram invariants

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        qs in proptest::collection::vec(0.0f64..1.0, 2..8),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        // p(0) is the upper bound of min's log2 bucket: within [min, 2·min]
        let p0 = h.quantile(0.0);
        prop_assert!(p0 >= lo && p0 <= lo.saturating_mul(2).min(hi).max(lo), "p(0) = {p0}");
        prop_assert_eq!(h.quantile(1.0), hi, "p(1) is exactly the max");
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        for pair in qs.windows(2) {
            // monotone in q, and always inside the observed range
            prop_assert!(h.quantile(pair[0]) <= h.quantile(pair[1]));
        }
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= lo && v <= hi, "p({q}) = {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn quantile_stays_within_its_bucket(value in any::<u64>(), extra in any::<u64>()) {
        // log2 buckets: an estimate may round up, but never past twice the
        // true value (bucket i covers [2^(i-1), 2^i - 1]) nor past the max.
        let mut h = Histogram::new();
        h.record(value);
        h.record(extra);
        let p50 = h.quantile(0.5);
        let floor = value.min(extra);
        prop_assert!(p50 >= floor);
        prop_assert!(p50 <= floor.saturating_mul(2).max(1).min(h.max()));
    }

    #[test]
    fn merge_is_associative_and_matches_bulk_recording(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
        c in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let hist = |values: &[u64]| {
            let mut h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = hist(&a);
        left.merge(&hist(&b));
        left.merge(&hist(&c));
        let mut bc = hist(&b);
        bc.merge(&hist(&c));
        let mut right = hist(&a);
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // and both equal recording everything into one histogram
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hist(&all));
    }
}

#[test]
fn counter_clear_drops_stale_keys_between_phases() {
    let metrics = CounterSet::new();
    metrics.incr("warmup.only");
    metrics.reset();
    assert!(metrics.snapshot().contains_key("warmup.only"), "reset keeps stale keys");
    metrics.clear();
    assert!(metrics.snapshot().is_empty(), "clear drops them");
    metrics.incr("measured.only");
    assert_eq!(metrics.snapshot().len(), 1);
}

// ------------------------------------------------------------- e2e fixtures

fn engine_with_orders() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let cities = ["sf", "nyc", "la"];
    let orders = Schema::new(vec![
        Field::new("id", DataType::Bigint),
        Field::new("city", DataType::Varchar),
        Field::new("amount", DataType::Double),
    ])
    .unwrap();
    let pages: Vec<Page> = (0..6)
        .map(|p| {
            let ids: Vec<i64> = (p * 20..p * 20 + 20).collect();
            let names: Vec<&str> = ids.iter().map(|&i| cities[i as usize % 3]).collect();
            let amounts: Vec<f64> = ids.iter().map(|&i| i as f64).collect();
            Page::new(vec![Block::bigint(ids), Block::varchar(&names), Block::double(amounts)])
                .unwrap()
        })
        .collect();
    memory.create_table("default", "orders", orders, pages).unwrap();
    let rates = Schema::new(vec![
        Field::new("city", DataType::Varchar),
        Field::new("fee", DataType::Double),
    ])
    .unwrap();
    let page =
        Page::new(vec![Block::varchar(&cities), Block::double(vec![1.0, 2.0, 3.0])]).unwrap();
    memory.create_table("default", "rates", rates, vec![page]).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

const JOIN_AGG: &str = "SELECT o.city, count(*), sum(o.amount) \
                        FROM orders o JOIN rates r ON o.city = r.city \
                        GROUP BY 1 ORDER BY 1";

#[test]
fn explain_analyze_annotates_every_operator_of_a_join_agg() {
    let engine = engine_with_orders();
    let result = engine.execute(&format!("EXPLAIN ANALYZE {JOIN_AGG}")).unwrap();
    let text = result.rows()[0][0].to_string();
    for operator in ["TableScan", "InnerJoin", "Aggregate", "Sort"] {
        assert!(text.contains(operator), "missing {operator} in:\n{text}");
    }
    // every line is either an annotated operator or the telemetry footer
    let (footer, operators): (Vec<&str>, Vec<&str>) = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .partition(|l| l.trim_start().starts_with("Telemetry"));
    for line in operators {
        for stat in ["rows:", "busy:", "peak:", "spilled:"] {
            assert!(line.contains(stat), "operator missing {stat}: {line}");
        }
    }
    assert_eq!(footer.len(), 1, "exactly one telemetry footer:\n{text}");
    assert!(footer[0].contains("snapshots:") && footer[0].contains("peak busy:"), "{}", footer[0]);
    // EXPLAIN ANALYZE really ran the query: the scans saw the table's rows
    assert!(text.contains("120 in"), "orders scan should read 120 rows:\n{text}");
}

#[test]
fn explain_analyze_matches_the_plain_query_answer() {
    let engine = engine_with_orders();
    let plain = engine.execute(JOIN_AGG).unwrap();
    assert_eq!(plain.rows()[0][0], Value::Varchar("la".into()));
    // the analyzed run reports the same cardinalities the plain run returned
    let analyzed = engine.execute(&format!("EXPLAIN ANALYZE {JOIN_AGG}")).unwrap();
    let text = analyzed.rows()[0][0].to_string();
    assert!(text.contains(&format!("{} out", plain.rows().len())), "{text}");
}

#[test]
fn cluster_trace_covers_query_stage_task_operator() {
    let cluster = PrestoCluster::new(
        "obs-e2e",
        engine_with_orders(),
        ClusterConfig { initial_workers: 3, ..ClusterConfig::default() },
        SimClock::new(),
    );
    let result = cluster.execute(JOIN_AGG, &Session::default()).unwrap();
    let spans = result.info.trace.spans();
    for kind in [SpanKind::Query, SpanKind::Stage, SpanKind::Task, SpanKind::Operator] {
        assert!(spans.iter().any(|s| s.kind == kind), "no {kind:?} span");
    }
    assert!(result.info.latency > Duration::ZERO);
    let h = cluster.histograms().get(names::HIST_CLUSTER_QUERY_LATENCY_US);
    assert_eq!(h.count(), 1);
}

#[test]
fn explain_analyze_footer_reports_cluster_telemetry_after_ticks() {
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "obs-telemetry",
        engine_with_orders(),
        ClusterConfig { initial_workers: 3, ..ClusterConfig::default() },
        clock.clone(),
    );
    // before any lifecycle tick: the footer exists but shows zero snapshots
    let cold = cluster.engine().execute(&format!("EXPLAIN ANALYZE {JOIN_AGG}")).unwrap().rows()[0]
        [0]
    .to_string();
    assert!(cold.contains("snapshots: 0"), "{cold}");

    // run load, then take two telemetry snapshots on the cluster clock
    for _ in 0..3 {
        cluster.execute(JOIN_AGG, &Session::default()).unwrap();
    }
    cluster.tick();
    clock.advance(Duration::from_millis(2));
    cluster.tick();

    let text = cluster.engine().execute(&format!("EXPLAIN ANALYZE {JOIN_AGG}")).unwrap().rows()[0]
        [0]
    .to_string();
    let footer = text
        .lines()
        .find(|l| l.trim_start().starts_with("Telemetry"))
        .expect("EXPLAIN ANALYZE must end with a telemetry footer");
    assert!(footer.contains("snapshots: 2"), "{footer}");
    // the fleet ran real (virtual-time) work before the first snapshot, so
    // the sampled peak busy-fraction is a live nonzero percentage
    assert!(!footer.contains("peak busy: 0%"), "{footer}");
    assert_eq!(
        cluster.telemetry().snapshots(),
        2,
        "footer and registry must agree on the snapshot count"
    );
}

#[test]
fn same_seed_chaos_streams_replay_identical_trace_digests() {
    let run = || {
        let cluster = PrestoCluster::new(
            "chaos-e2e",
            engine_with_orders(),
            ClusterConfig {
                initial_workers: 3,
                fault_injector: FaultInjector::new(
                    11,
                    FaultPlan::new().fail_rate(0.15).crash_on_task(1, 9),
                ),
                ..ClusterConfig::default()
            },
            SimClock::new(),
        );
        let session = Session::default();
        let mut digests = Vec::new();
        for _ in 0..10 {
            if let Ok(result) = cluster.execute(JOIN_AGG, &session) {
                digests.push(result.info.trace.digest());
            }
        }
        assert!(!digests.is_empty(), "some queries must survive the chaos");
        digests
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed must replay the exact same span trees");
}
