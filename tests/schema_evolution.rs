//! §V.A integration test: schema evolution through the whole stack — files
//! written under old schemas queried under evolved table schemas.

use std::sync::Arc;

use presto_common::metrics::CounterSet;
use presto_common::{Block, DataType, Field, Page, Schema, Value};
use presto_connectors::hive::HiveConnector;
use presto_core::{PrestoEngine, Session};
use presto_parquet::{WriterMode, WriterProperties};
use presto_storage::HdfsFileSystem;

fn v1_schema() -> Schema {
    Schema::new(vec![Field::new(
        "base",
        DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
        ]),
    )])
    .unwrap()
}

fn v2_schema() -> Schema {
    // v2 adds base.surge and drops nothing
    Schema::new(vec![Field::new(
        "base",
        DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Bigint),
            Field::new("surge", DataType::Double),
        ]),
    )])
    .unwrap()
}

/// Write one file under `file_schema` with `rows` trips.
fn write_file(hive: &HiveConnector, partition: &str, file_schema: &Schema, rows: usize) {
    let base_type = file_schema.field_at(0).data_type.clone();
    let width = match &base_type {
        DataType::Row(fields) => fields.len(),
        _ => unreachable!(),
    };
    let values: Vec<Value> = (0..rows)
        .map(|i| {
            let mut fields = vec![
                Value::Varchar(format!("drv-{partition}-{i}")),
                Value::Bigint((i % 10) as i64),
            ];
            if width > 2 {
                fields.push(Value::Double(1.0 + i as f64 / 100.0));
            }
            Value::Row(fields)
        })
        .collect();
    let page = Page::new(vec![Block::from_values(&base_type, &values).unwrap()]).unwrap();
    hive.write_data_file(
        "rawdata",
        "trips",
        Some(partition),
        "part-0.upq",
        &[page],
        WriterMode::Native,
        WriterProperties::default(),
    )
    .unwrap();
}

/// Two partitions: old files (v1) and new files (v2); the *table* schema in
/// the metastore is v2.
fn evolved_platform() -> PrestoEngine {
    let hdfs = HdfsFileSystem::with_defaults();
    let hive = HiveConnector::new(Arc::new(hdfs), CounterSet::new());
    // register with v1 first so the old partition's files carry v1
    hive.register_table("rawdata", "trips", v1_schema(), "/w/trips", Some("datestr"));
    hive.add_partition("rawdata", "trips", "old", true).unwrap();
    write_file(&hive, "old", &v1_schema(), 50);
    // schema service upgrades the table to v2; new files carry v2
    hive.register_table("rawdata", "trips", v2_schema(), "/w/trips", Some("datestr"));
    hive.add_partition("rawdata", "trips", "old", true).unwrap();
    hive.add_partition("rawdata", "trips", "new", true).unwrap();
    write_file(&hive, "new", &v2_schema(), 50);
    let engine = PrestoEngine::new();
    engine.register_catalog("hive", Arc::new(hive));
    engine
}

#[test]
fn added_field_reads_null_in_old_files_and_values_in_new() {
    let engine = evolved_platform();
    let session = Session::new("hive", "rawdata");
    let result = engine
        .execute_with_session(
            "SELECT datestr, base.surge FROM trips ORDER BY 1 LIMIT 100",
            &session,
        )
        .unwrap();
    let rows = result.rows();
    assert_eq!(rows.len(), 100);
    for row in &rows {
        match row[0].as_str().unwrap() {
            // §V.A: "When querying newly added fields in old data ... Presto
            // will return null"
            "old" => assert!(row[1].is_null(), "old files must read NULL surge"),
            "new" => assert!(!row[1].is_null(), "new files carry surge"),
            other => panic!("unexpected partition {other}"),
        }
    }
}

#[test]
fn old_fields_still_read_everywhere() {
    let engine = evolved_platform();
    let session = Session::new("hive", "rawdata");
    let result = engine
        .execute_with_session(
            "SELECT datestr, count(*), sum(base.city_id) FROM trips GROUP BY 1 ORDER BY 1",
            &session,
        )
        .unwrap();
    let rows = result.rows();
    assert_eq!(rows.len(), 2);
    // both partitions have 50 rows, city_id sum identical
    assert_eq!(rows[0][1], rows[1][1]);
    assert_eq!(rows[0][2], rows[1][2]);
}

#[test]
fn removed_field_is_ignored_when_reading_old_files() {
    // table schema drops city_id; old files still contain it
    let hdfs = HdfsFileSystem::with_defaults();
    let hive = HiveConnector::new(Arc::new(hdfs), CounterSet::new());
    hive.register_table("rawdata", "trips", v1_schema(), "/w/trips", Some("datestr"));
    hive.add_partition("rawdata", "trips", "old", true).unwrap();
    write_file(&hive, "old", &v1_schema(), 20);
    let reduced = Schema::new(vec![Field::new(
        "base",
        DataType::row(vec![Field::new("driver_uuid", DataType::Varchar)]),
    )])
    .unwrap();
    hive.register_table("rawdata", "trips", reduced, "/w/trips", Some("datestr"));
    hive.add_partition("rawdata", "trips", "old", true).unwrap();

    let engine = PrestoEngine::new();
    engine.register_catalog("hive", Arc::new(hive));
    let session = Session::new("hive", "rawdata");
    // §V.A: "When data is continuously ingested into the already removed
    // field, Presto just ignores them."
    let result = engine.execute_with_session("SELECT base FROM trips LIMIT 3", &session).unwrap();
    for row in result.rows() {
        match &row[0] {
            Value::Row(fields) => assert_eq!(fields.len(), 1, "only driver_uuid remains"),
            other => panic!("unexpected {other}"),
        }
    }
}

#[test]
fn type_change_is_rejected() {
    let hdfs = HdfsFileSystem::with_defaults();
    let hive = HiveConnector::new(Arc::new(hdfs), CounterSet::new());
    hive.register_table("rawdata", "trips", v1_schema(), "/w/trips", Some("datestr"));
    hive.add_partition("rawdata", "trips", "old", true).unwrap();
    write_file(&hive, "old", &v1_schema(), 10);
    // retype city_id bigint → varchar
    let retyped = Schema::new(vec![Field::new(
        "base",
        DataType::row(vec![
            Field::new("driver_uuid", DataType::Varchar),
            Field::new("city_id", DataType::Varchar),
        ]),
    )])
    .unwrap();
    hive.register_table("rawdata", "trips", retyped, "/w/trips", Some("datestr"));
    hive.add_partition("rawdata", "trips", "old", true).unwrap();

    let engine = PrestoEngine::new();
    engine.register_catalog("hive", Arc::new(hive));
    let session = Session::new("hive", "rawdata");
    let err = engine.execute_with_session("SELECT base.city_id FROM trips", &session).unwrap_err();
    // §V.A: "Field rename and type change are not allowed ... we do not
    // allow automatic type coercion"
    assert_eq!(err.code(), "SCHEMA_EVOLUTION_ERROR");
}
