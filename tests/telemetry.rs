//! Telemetry layer end-to-end: property-based invariants for the
//! fixed-interval [`TimeSeries`] ring buffer (wraparound, merge
//! associativity, sample-count bounds, digest stability under thread
//! interleaving) plus bit-identical `system.*` table scans across
//! same-seed cluster runs.
//!
//! [`TimeSeries`]: presto_common::TimeSeries

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use presto_cluster::{ClusterConfig, PrestoCluster};
use presto_common::metrics::names;
use presto_common::{
    Block, DataType, Field, Page, Schema, SimClock, TimeSeries, TimeSeriesSet, Value,
};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};

// ------------------------------------------------------ ring-buffer invariants

fn series_from(interval_us: u64, capacity: usize, samples: &[(u64, u64)]) -> TimeSeries {
    let mut ts = TimeSeries::new(interval_us, capacity);
    for &(at_us, v) in samples {
        ts.record(Duration::from_micros(at_us), v);
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wraparound_retains_exactly_the_newest_buckets(
        interval_us in 1u64..1_000,
        capacity in 1usize..32,
        buckets in 2usize..200,
        value in 1u64..1_000,
    ) {
        // one sample per consecutive bucket: the window must slide, keeping
        // the last `capacity` buckets with their values intact
        let samples: Vec<(u64, u64)> =
            (0..buckets).map(|b| (b as u64 * interval_us, value)).collect();
        let ts = series_from(interval_us, capacity, &samples);
        prop_assert_eq!(ts.len(), buckets.min(capacity));
        prop_assert_eq!(ts.samples(), buckets as u64, "in-order samples are never dropped");
        let points = ts.points();
        let first_kept = buckets.saturating_sub(capacity) as u64;
        prop_assert_eq!(points[0].0, first_kept * interval_us, "window starts at the slide point");
        prop_assert!(points.iter().all(|&(_, v)| v == value), "values survive the wrap");
        prop_assert_eq!(ts.peak(), value);
    }

    #[test]
    fn same_bucket_samples_accumulate_and_len_is_bounded(
        interval_us in 1u64..500,
        capacity in 1usize..16,
        offsets in proptest::collection::vec((0u64..10_000, 1u64..100), 1..64),
    ) {
        let ts = series_from(interval_us, capacity, &offsets);
        prop_assert!(ts.len() <= ts.capacity(), "never more than capacity buckets");
        prop_assert!(ts.samples() <= offsets.len() as u64, "accepted ≤ offered");
        prop_assert!(ts.samples() >= 1, "the first sample is always accepted");
        // recorded in time order, nothing is ever too old to accept
        let mut sorted = offsets.clone();
        sorted.sort();
        let ordered = series_from(interval_us, capacity, &sorted);
        prop_assert_eq!(ordered.samples(), offsets.len() as u64);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        interval_us in 1u64..200,
        capacity in 1usize..16,
        a in proptest::collection::vec((0u64..5_000, 0u64..50), 0..24),
        b in proptest::collection::vec((0u64..5_000, 0u64..50), 0..24),
        c in proptest::collection::vec((0u64..5_000, 0u64..50), 0..24),
    ) {
        let build = |samples: &[(u64, u64)]| {
            let mut sorted = samples.to_vec();
            sorted.sort();
            series_from(interval_us, capacity, &sorted)
        };
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        let mut bc = build(&b);
        bc.merge(&build(&c));
        let mut right = build(&a);
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.digest(), right.digest());
        // a ⊕ b == b ⊕ a
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(&ab, &ba);
    }

    #[test]
    fn set_digest_is_stable_under_worker_thread_interleaving(
        seed in any::<u64>(),
        workers in 2u32..6,
        ticks in 1u64..40,
    ) {
        // every worker thread samples its own keyed series; however the OS
        // interleaves them, the BTree-keyed registry digests identically
        let run = || {
            let set = TimeSeriesSet::new(100, 64);
            let handles: Vec<_> = (0..workers)
                .map(|id| {
                    let set = set.clone();
                    std::thread::spawn(move || {
                        for t in 0..ticks {
                            let v = (seed ^ u64::from(id)).wrapping_mul(t + 1) % 100;
                            set.sample_for(
                                names::TS_WORKER_BUSY_PCT,
                                id,
                                Duration::from_micros(t * 100),
                                v,
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("sampler thread panicked");
            }
            set.digest()
        };
        prop_assert_eq!(run(), run());
    }
}

// ------------------------------------------------- system tables end-to-end

fn engine_with_orders() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let orders = Schema::new(vec![
        Field::new("id", DataType::Bigint),
        Field::new("city", DataType::Varchar),
    ])
    .unwrap();
    let cities = ["sf", "nyc", "la"];
    let pages: Vec<Page> = (0..4)
        .map(|p| {
            let ids: Vec<i64> = (p * 25..p * 25 + 25).collect();
            let names: Vec<&str> = ids.iter().map(|&i| cities[i as usize % 3]).collect();
            Page::new(vec![Block::bigint(ids), Block::varchar(&names)]).unwrap()
        })
        .collect();
    memory.create_table("default", "orders", orders, pages).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

const SYSTEM_TABLES: [&str; 4] =
    ["system.runtime.queries", "system.runtime.tasks", "system.runtime.workers", "system.metrics"];

fn run_and_scan_system_tables() -> Vec<Vec<Vec<Value>>> {
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "sys-e2e",
        engine_with_orders(),
        ClusterConfig { initial_workers: 3, ..ClusterConfig::default() },
        clock.clone(),
    );
    let session = Session::default();
    for _ in 0..4 {
        cluster
            .execute("SELECT city, count(*) FROM orders GROUP BY 1 ORDER BY 1", &session)
            .unwrap();
    }
    cluster.tick();
    clock.advance(Duration::from_millis(1));
    cluster.tick();
    SYSTEM_TABLES
        .iter()
        .map(|table| {
            let result = cluster.execute(&format!("SELECT * FROM {table}"), &session).unwrap();
            result.rows()
        })
        .collect()
}

#[test]
fn system_tables_reflect_live_cluster_state() {
    let tables = run_and_scan_system_tables();
    let (queries, tasks, workers, metrics) = (&tables[0], &tables[1], &tables[2], &tables[3]);

    // 4 user queries plus the system scans issued before each table read
    assert!(queries.len() >= 4, "system.runtime.queries rows: {}", queries.len());
    assert!(
        queries.iter().all(|r| r[1] == Value::Varchar("finished".into())),
        "all queries finished"
    );
    assert!(!tasks.is_empty(), "system.runtime.tasks must list completed scan tasks");
    assert_eq!(workers.len(), 3, "one row per worker");
    assert!(
        workers.iter().all(|r| r[2] == Value::Varchar("active".into())),
        "all workers active: {workers:?}"
    );
    // metrics table lists the sampler's series (worker busy, fleet busy,
    // queue depth, memory, cache) plus the gauges
    let metric_names: Vec<String> = metrics.iter().map(|r| r[0].to_string()).collect();
    for expect in [names::TS_FLEET_BUSY_PCT, names::TS_QUEUE_DEPTH, names::GAUGE_ACTIVE_WORKERS] {
        assert!(
            metric_names.iter().any(|n| n.contains(expect)),
            "system.metrics missing {expect}: {metric_names:?}"
        );
    }
}

#[test]
fn system_table_scans_are_bit_identical_across_same_seed_runs() {
    let (a, b) = (run_and_scan_system_tables(), run_and_scan_system_tables());
    assert_eq!(a, b, "same-seed system.* scans must return identical rows");
}

#[test]
fn projection_and_predicate_push_into_system_tables() {
    let clock = SimClock::new();
    let cluster = PrestoCluster::new(
        "sys-pushdown",
        engine_with_orders(),
        ClusterConfig { initial_workers: 2, ..ClusterConfig::default() },
        clock.clone(),
    );
    let session = Session::default();
    cluster.execute("SELECT count(*) FROM orders", &session).unwrap();
    cluster.tick();
    let result = cluster
        .execute(
            "SELECT worker_id FROM system.runtime.workers WHERE lifecycle = 'active' \
             ORDER BY worker_id",
            &session,
        )
        .unwrap();
    let rows = result.rows();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec![Value::Bigint(0)]);
    assert_eq!(rows[1], vec![Value::Bigint(1)]);
}
