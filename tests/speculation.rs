//! Speculative execution + mid-stream fault suite: straggler splits get a
//! duplicate attempt once they cross the p99 of their completed siblings,
//! first result wins, and everything replays bit-for-bit on the same seed.
//! Also covers the exchange-tear retry path and the blacklist probation
//! (half-open) state, plus property tests over the scheduler invariants
//! and the purity of mid-stream fault decisions.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use presto_cluster::{ClusterConfig, PrestoCluster, SpeculationConfig, WorkerHealth};
use presto_common::fault::PageFault;
use presto_common::metrics::names;
use presto_common::trace::{Span, SpanKind};
use presto_common::{
    Block, DataType, FaultInjector, FaultPlan, Field, Page, Schema, SimClock, Value,
};
use presto_connectors::memory::MemoryConnector;
use presto_core::{PrestoEngine, Session};
use presto_resource::QueryPriority;

/// 12-page table → 12 splits per scan, spread across the workers.
fn engine_with_table() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
    let pages: Vec<Page> = (0..12)
        .map(|p| Page::new(vec![Block::bigint((p * 50..p * 50 + 50).collect())]).unwrap())
        .collect();
    memory.create_table("default", "t", schema, pages).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

fn cluster(config: ClusterConfig) -> Arc<PrestoCluster> {
    PrestoCluster::new("spec", engine_with_table(), config, SimClock::new())
}

const SUM_SQL: &str = "SELECT sum(x), count(*) FROM t";

/// sum(0..600) = 179700 over 600 rows — the answer every mode must agree on.
fn expected_rows() -> Vec<Vec<Value>> {
    vec![vec![Value::Bigint(179_700), Value::Bigint(600)]]
}

/// One split on worker 0 stalls 50 ms mid-stream — a ~500× straggler next
/// to its ~100 µs siblings.
fn one_straggler() -> Arc<FaultInjector> {
    FaultInjector::new(7, FaultPlan::new().stall_scan_page(0, 1, 1, Duration::from_millis(50)))
}

// ------------------------------------------------------------- end to end

#[test]
fn straggler_is_speculated_and_the_duplicate_wins() {
    let c = cluster(ClusterConfig { fault_injector: one_straggler(), ..ClusterConfig::default() });
    let result = c.execute(SUM_SQL, &Session::default()).unwrap();
    assert_eq!(result.rows(), expected_rows());
    assert_eq!(c.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);
    assert!(c.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES) >= 1, "straggler not speculated");
    assert!(c.metrics().get(names::CLUSTER_SPECULATIVE_WINS) >= 1, "duplicate should win its race");
    // the race ends well before the 50 ms stall would have
    assert!(c.clock().now() < Duration::from_millis(50), "query waited out the straggler anyway");
}

#[test]
fn speculation_off_counterfactual_is_strictly_slower_on_the_same_schedule() {
    let on = cluster(ClusterConfig { fault_injector: one_straggler(), ..ClusterConfig::default() });
    let off = cluster(ClusterConfig {
        fault_injector: one_straggler(),
        speculation: SpeculationConfig { enabled: false, ..SpeculationConfig::default() },
        ..ClusterConfig::default()
    });
    assert_eq!(on.execute(SUM_SQL, &Session::default()).unwrap().rows(), expected_rows());
    assert_eq!(off.execute(SUM_SQL, &Session::default()).unwrap().rows(), expected_rows());
    assert_eq!(off.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES), 0);
    assert!(
        on.clock().now() < off.clock().now(),
        "speculation on ({:?}) must beat speculation off ({:?}) on the identical fault schedule",
        on.clock().now(),
        off.clock().now()
    );
    // off waits out the full injected stall
    assert!(off.clock().now() >= Duration::from_millis(50));
}

#[test]
fn speculated_answers_match_the_fault_free_run() {
    let clean = cluster(ClusterConfig::default());
    let stalled = cluster(ClusterConfig {
        fault_injector: FaultInjector::new(
            9,
            FaultPlan::new().scan_stall_rate(0.20, Duration::from_millis(5)),
        ),
        ..ClusterConfig::default()
    });
    let session = Session::default();
    for _ in 0..5 {
        let a = clean.execute(SUM_SQL, &session).unwrap();
        let b = stalled.execute(SUM_SQL, &session).unwrap();
        assert_eq!(a.rows(), b.rows(), "speculation must never change an answer");
    }
    assert!(stalled.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES) > 0);
    assert_eq!(stalled.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);
}

#[test]
fn fault_free_runs_never_speculate() {
    // uniform virtual task durations: no split ever crosses the sibling
    // quantile, so a healthy cluster must not burn duplicate work
    let c = cluster(ClusterConfig::default());
    let session = Session::default();
    for _ in 0..5 {
        assert_eq!(c.execute(SUM_SQL, &session).unwrap().rows(), expected_rows());
    }
    assert_eq!(c.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES), 0);
    assert_eq!(c.metrics().get(names::CLUSTER_SPECULATIVE_WINS), 0);
    assert_eq!(c.metrics().get(names::CLUSTER_SPECULATIVE_WASTED), 0);
}

#[test]
fn speculate_span_records_the_race() {
    let c = cluster(ClusterConfig { fault_injector: one_straggler(), ..ClusterConfig::default() });
    let result = c.execute(SUM_SQL, &Session::default()).unwrap();
    let spans = result.info.trace.spans();
    let spec: Vec<&Span> = spans.iter().filter(|s| s.kind == SpanKind::Speculate).collect();
    assert!(!spec.is_empty(), "no Speculate span in the trace");
    for s in &spec {
        assert!(s.attrs.contains_key("from_worker"), "{:?}", s.attrs);
        assert!(s.attrs.contains_key("to_worker"));
        assert!(s.attrs.contains_key("elapsed_us"));
        assert!(s.attrs.contains_key("threshold_us"));
        assert!(s.attrs["elapsed_us"] > s.attrs["threshold_us"]);
        assert_ne!(s.attrs["from_worker"], s.attrs["to_worker"]);
    }
    // the winning duplicate is a Task span marked speculative with rows out
    assert!(
        spans.iter().any(|s| s.kind == SpanKind::Task
            && s.attrs.get("speculative") == Some(&1)
            && s.attrs.contains_key("rows_out")),
        "no winning speculative task span"
    );
}

#[test]
fn same_seed_replays_identical_digests_and_launch_counts() {
    let run = || {
        let c = cluster(ClusterConfig {
            fault_injector: FaultInjector::new(
                42,
                FaultPlan::new().scan_stall_rate(0.15, Duration::from_millis(8)),
            ),
            ..ClusterConfig::default()
        });
        let session = Session::default();
        let mut digests = Vec::new();
        for _ in 0..8 {
            digests.push(c.execute(SUM_SQL, &session).unwrap().info.trace.digest());
        }
        (
            digests,
            c.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES),
            c.metrics().get(names::CLUSTER_SPECULATIVE_WINS),
            c.metrics().get(names::CLUSTER_SPECULATIVE_WASTED),
            c.clock().now(),
        )
    };
    let a = run();
    let b = run();
    assert!(a.1 > 0, "the schedule must speculate for this test to mean anything");
    assert_eq!(a, b, "same seed ⇒ same span trees, same speculation, same virtual time");
}

// --------------------------------------------------------- exchange faults

#[test]
fn exchange_tear_is_retried_to_success_on_the_virtual_clock() {
    // one-shot tears fire on delivery attempt 1 only, so the retry succeeds
    let c = cluster(ClusterConfig {
        fault_injector: FaultInjector::new(
            3,
            FaultPlan::new().tear_exchange_page(0, 1).tear_exchange_page(1, 1),
        ),
        ..ClusterConfig::default()
    });
    let result = c.execute(SUM_SQL, &Session::default()).unwrap();
    assert_eq!(result.rows(), expected_rows());
    assert!(c.metrics().get(names::CLUSTER_EXCHANGE_RETRIES) >= 1, "tear did not force a retry");
    assert_eq!(c.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);
    // the retry backoff landed on the virtual clock
    assert!(c.clock().now() >= Duration::from_millis(50));
}

#[test]
fn exchange_tears_exhaust_the_attempt_budget_when_recovery_is_off() {
    let c = cluster(ClusterConfig {
        fault_injector: FaultInjector::new(3, FaultPlan::new().tear_exchange_page(1, 1)),
        fault_recovery: false,
        ..ClusterConfig::default()
    });
    let err = c.execute(SUM_SQL, &Session::default()).unwrap_err();
    assert!(err.is_retryable(), "{err}");
    assert_eq!(c.metrics().get(names::CLUSTER_EXCHANGE_RETRIES), 0);
    assert_eq!(c.metrics().get(names::CLUSTER_QUERIES_FAILED), 1);
}

// ------------------------------------------------------ probation half-open

#[test]
fn probation_worker_serves_only_low_priority_until_the_window_closes() {
    let quarantine = Duration::from_secs(60);
    let probation = Duration::from_secs(60);
    let c = cluster(ClusterConfig {
        fault_injector: FaultInjector::new(5, FaultPlan::new().fail_task(0, 1)),
        blacklist_after: 1,
        quarantine_period: quarantine,
        probation_window: probation,
        ..ClusterConfig::default()
    });
    let session = Session::default();
    assert_eq!(c.execute(SUM_SQL, &session).unwrap().rows(), expected_rows());
    let w0 = c.workers()[0].clone();
    assert!(w0.is_blacklisted(), "one failure at blacklist_after=1 must quarantine");
    assert_eq!(c.metrics().get(names::CLUSTER_BLACKLISTED_WORKERS), 1);

    // quarantine elapses → half-open probation: low-priority traffic only
    c.clock().advance(quarantine);
    assert!(matches!(w0.health(), WorkerHealth::Probation { .. }), "{:?}", w0.health());
    assert!(!w0.accepts_tasks_for(QueryPriority::Normal));
    assert!(w0.accepts_tasks_for(QueryPriority::Low));

    let before = w0.completed_tasks();
    assert_eq!(c.execute(SUM_SQL, &session).unwrap().rows(), expected_rows());
    assert_eq!(w0.completed_tasks(), before, "normal-priority splits on a probation worker");

    let low = Session::default().with_priority(QueryPriority::Low);
    assert_eq!(c.execute(SUM_SQL, &low).unwrap().rows(), expected_rows());
    assert!(w0.completed_tasks() > before, "probation worker should serve low-priority splits");

    // a clean probation window restores full health
    c.clock().advance(probation);
    assert_eq!(w0.health(), WorkerHealth::Healthy);
    assert!(w0.accepts_tasks_for(QueryPriority::Normal));
}

#[test]
fn refailing_probation_worker_requarantines_without_absorbing_normal_splits() {
    // regression: a re-admitted worker that fails again must go straight
    // back to quarantine — one strike, not a fresh `blacklist_after` budget
    let quarantine = Duration::from_secs(60);
    let c = cluster(ClusterConfig {
        // tasks 1+2 trip the threshold (→ quarantine); task 3 is the first
        // probation task and must re-quarantine on its own
        fault_injector: FaultInjector::new(
            5,
            FaultPlan::new().fail_task(0, 1).fail_task(0, 2).fail_task(0, 3),
        ),
        blacklist_after: 2,
        quarantine_period: quarantine,
        probation_window: Duration::from_secs(60),
        max_split_attempts: 6,
        ..ClusterConfig::default()
    });
    let session = Session::default();
    // worker 0 fails both its first tasks mid-query and trips the threshold
    assert_eq!(c.execute(SUM_SQL, &session).unwrap().rows(), expected_rows());
    let w0 = c.workers()[0].clone();
    assert!(w0.is_blacklisted());
    assert_eq!(c.metrics().get(names::CLUSTER_BLACKLISTED_WORKERS), 1);

    c.clock().advance(quarantine);
    assert!(matches!(w0.health(), WorkerHealth::Probation { .. }));

    // the low-priority probe hits worker 0's injected third failure: the
    // query still answers (split retried elsewhere) and the worker is
    // re-quarantined after ONE failure despite blacklist_after = 2
    let low = Session::default().with_priority(QueryPriority::Low);
    assert_eq!(c.execute(SUM_SQL, &low).unwrap().rows(), expected_rows());
    assert!(w0.is_blacklisted(), "probation failure must re-quarantine immediately");
    assert_eq!(c.metrics().get(names::CLUSTER_BLACKLISTED_WORKERS), 2);

    // the hot normal-priority query never lands on the relapsed worker
    let before = w0.completed_tasks();
    assert_eq!(c.execute(SUM_SQL, &session).unwrap().rows(), expected_rows());
    assert_eq!(w0.completed_tasks(), before);
    assert_eq!(c.metrics().get(names::CLUSTER_QUERIES_FAILED), 0);
}

// --------------------------------------------- history-seeded yardstick

/// 2-page table → 2 splits: fewer siblings than `min_completed = 3`, so an
/// unseeded fragment can never judge a straggler within one run.
fn narrow_engine() -> PrestoEngine {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("x", DataType::Bigint)]).unwrap();
    let pages: Vec<Page> = (0..2)
        .map(|p| Page::new(vec![Block::bigint((p * 50..p * 50 + 50).collect())]).unwrap())
        .collect();
    memory.create_table("default", "narrow", schema, pages).unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    engine
}

const NARROW_SQL: &str = "SELECT sum(x), count(*) FROM narrow";

/// sum(0..100) = 4950 over 100 rows.
fn narrow_rows() -> Vec<Vec<Value>> {
    vec![vec![Value::Bigint(4_950), Value::Bigint(100)]]
}

/// One worker's split stalls 50 ms on the first *and* second query (task
/// ordinals count per worker across queries, so both runs hit the stall).
fn narrow_cluster(stalled_worker: u32, seed_from_history: bool) -> Arc<PrestoCluster> {
    PrestoCluster::new(
        "seeded",
        narrow_engine(),
        ClusterConfig {
            initial_workers: 2,
            fault_injector: FaultInjector::new(
                7,
                FaultPlan::new()
                    .stall_scan_page(stalled_worker, 1, 1, Duration::from_millis(50))
                    .stall_scan_page(stalled_worker, 2, 1, Duration::from_millis(50)),
            ),
            speculation: SpeculationConfig { seed_from_history, ..SpeculationConfig::default() },
            ..ClusterConfig::default()
        },
        SimClock::new(),
    )
}

/// The worker that affinity scheduling hands the stalled split to; the
/// fast split must land on the other worker or the test means nothing.
const NARROW_STALLED_WORKER: u32 = 0;

#[test]
fn runtime_history_seeds_speculation_for_single_wave_fragments() {
    // regression: before history seeding, a fragment with fewer splits
    // than `min_completed` could never speculate — the second identical
    // run waited out the full stall exactly like the first
    let c = narrow_cluster(NARROW_STALLED_WORKER, true);
    let session = Session::default();

    // run 1: no history yet → yardstick starts empty, 2 siblings < 3, so
    // the stall is waited out and nothing speculates
    assert_eq!(c.execute(NARROW_SQL, &session).unwrap().rows(), narrow_rows());
    let after_first = c.clock().now();
    assert!(after_first >= Duration::from_millis(50), "run 1 must wait out the stall");
    assert_eq!(c.metrics().get(names::CLUSTER_SPECULATION_SEEDED), 0);
    assert_eq!(c.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES), 0);

    // run 2: the yardstick is seeded from run 1's observed runtimes, so
    // the returning straggler is judged and duplicated away
    let result = c.execute(NARROW_SQL, &session).unwrap();
    assert_eq!(result.rows(), narrow_rows());
    let second = c.clock().now() - after_first;
    assert!(c.metrics().get(names::CLUSTER_SPECULATION_SEEDED) >= 1, "yardstick never seeded");
    assert!(c.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES) >= 1, "straggler not speculated");
    assert!(c.metrics().get(names::CLUSTER_SPECULATIVE_WINS) >= 1, "duplicate should win");
    assert!(second < Duration::from_millis(50), "seeded run must dodge the stall, took {second:?}");
}

#[test]
fn seeding_off_counterfactual_waits_out_the_stall_every_run() {
    let c = narrow_cluster(NARROW_STALLED_WORKER, false);
    let session = Session::default();
    assert_eq!(c.execute(NARROW_SQL, &session).unwrap().rows(), narrow_rows());
    let after_first = c.clock().now();
    assert_eq!(c.execute(NARROW_SQL, &session).unwrap().rows(), narrow_rows());
    let second = c.clock().now() - after_first;
    assert!(second >= Duration::from_millis(50), "unseeded run 2 must stall again: {second:?}");
    assert_eq!(c.metrics().get(names::CLUSTER_SPECULATION_SEEDED), 0);
    assert_eq!(c.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES), 0);
}

// ------------------------------------------------------------- properties

/// Group the Task spans of one query trace by (stage, split name).
fn split_attempts(spans: &[Span]) -> Vec<Vec<&Span>> {
    let mut groups: std::collections::BTreeMap<(u64, &str), Vec<&Span>> =
        std::collections::BTreeMap::new();
    for s in spans.iter().filter(|s| s.kind == SpanKind::Task) {
        let parent = s.parent.map(|p| p.index() as u64).unwrap_or(u64::MAX);
        groups.entry((parent, s.name.as_str())).or_default().push(s);
    }
    groups.into_values().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scheduler invariants, read off the span tree: a completed split is
    /// never duplicated (no attempt starts at or after the first win), at
    /// most one speculative duplicate is live at a time, and at most two
    /// attempts of a split ever overlap (original + one duplicate).
    #[test]
    fn no_completed_split_is_duplicated_and_at_most_one_live_duplicate(seed in any::<u64>()) {
        let c = cluster(ClusterConfig {
            fault_injector: FaultInjector::new(
                seed,
                FaultPlan::new().scan_stall_rate(0.25, Duration::from_millis(4)),
            ),
            ..ClusterConfig::default()
        });
        let result = c.execute(SUM_SQL, &Session::default()).unwrap();
        prop_assert_eq!(result.rows(), expected_rows());
        let spans = result.info.trace.spans();
        for attempts in split_attempts(&spans) {
            // completion = first winning attempt's end
            let won = attempts
                .iter()
                .filter(|s| s.attrs.contains_key("rows_out") && !s.attrs.contains_key("cancelled"))
                .filter_map(|s| s.end)
                .min();
            let won = won.expect("every split must complete");
            for s in &attempts {
                prop_assert!(s.start < won, "attempt launched at/after the split completed");
            }
            // sweep: ≤ 2 concurrent attempts, ≤ 1 of them speculative
            for s in &attempts {
                let live = attempts
                    .iter()
                    .filter(|o| o.start <= s.start && o.end.is_none_or(|e| e > s.start));
                let (mut total, mut speculative) = (0, 0);
                for o in live {
                    total += 1;
                    if o.attrs.get("speculative") == Some(&1) {
                        speculative += 1;
                    }
                }
                prop_assert!(total <= 2, "more than one duplicate live for a split");
                prop_assert!(speculative <= 1, "two speculative attempts live at once");
            }
        }
    }

    /// The full speculation schedule is pure in (seed, plan, config):
    /// three fresh clusters replay identical traces and counters.
    #[test]
    fn speculation_decisions_are_pure_in_seed_plan_and_config(seed in any::<u64>()) {
        let run = || {
            let c = cluster(ClusterConfig {
                fault_injector: FaultInjector::new(
                    seed,
                    FaultPlan::new().scan_stall_rate(0.15, Duration::from_millis(6)),
                ),
                ..ClusterConfig::default()
            });
            let session = Session::default();
            let mut digests = Vec::new();
            for _ in 0..3 {
                digests.push(c.execute(SUM_SQL, &session).unwrap().info.trace.digest());
            }
            (
                digests,
                c.metrics().get(names::CLUSTER_SPECULATIVE_LAUNCHES),
                c.metrics().get(names::CLUSTER_SPECULATIVE_WINS),
                c.clock().now(),
            )
        };
        let (a, b, c) = (run(), run(), run());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mid-stream scan faults are pure in (seed, worker, task ordinal,
    /// page ordinal): independent injectors with the same seed and plan
    /// agree on every draw.
    #[test]
    fn scan_page_faults_are_pure_in_worker_task_and_page(
        seed in any::<u64>(),
        stall_rate in 0.0f64..0.6,
        tear_rate in 0.0f64..0.6,
    ) {
        let plan = || {
            FaultPlan::new()
                .scan_stall_rate(stall_rate, Duration::from_millis(2))
                .scan_tear_rate(tear_rate)
        };
        let a = FaultInjector::new(seed, plan());
        let b = FaultInjector::new(seed, plan());
        for worker in 0..4u32 {
            for task in 1..6u64 {
                for page in 1..8u64 {
                    let fa = a.on_scan_page(worker, task, page);
                    prop_assert_eq!(fa, b.on_scan_page(worker, task, page));
                    // asking again changes nothing: the draw is stateless
                    prop_assert_eq!(fa, a.on_scan_page(worker, task, page));
                }
            }
        }
    }

    /// Exchange faults are pure in (seed, fragment, page ordinal, attempt),
    /// and a different attempt re-draws — the retry path can succeed.
    #[test]
    fn exchange_page_faults_are_pure_in_fragment_page_and_attempt(
        seed in any::<u64>(),
        tear_rate in 0.0f64..0.6,
    ) {
        let a = FaultInjector::new(seed, FaultPlan::new().exchange_tear_rate(tear_rate));
        let b = FaultInjector::new(seed, FaultPlan::new().exchange_tear_rate(tear_rate));
        let mut varies = false;
        let mut any_fault = false;
        for fragment in 0..4u32 {
            for page in 1..8u64 {
                let first = a.on_exchange_page(fragment, page, 1);
                for attempt in 1..5u64 {
                    let fa = a.on_exchange_page(fragment, page, attempt);
                    prop_assert_eq!(fa, b.on_exchange_page(fragment, page, attempt));
                    prop_assert_eq!(fa, a.on_exchange_page(fragment, page, attempt));
                    varies |= fa != first;
                    any_fault |= fa != PageFault::None;
                }
            }
        }
        // the attempt is part of the draw: whenever the rate injects
        // anything at all, some retry must see a different decision
        if tear_rate > 0.05 && any_fault {
            prop_assert!(varies, "attempt number never changed a decision");
        }
    }
}
