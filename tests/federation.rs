//! §VIII integration test: federation gateway with MySQL-backed routing and
//! zero-downtime maintenance redirection over live clusters.

use std::sync::Arc;
use std::time::Duration;

use presto_cluster::{ClusterConfig, PrestoCluster, PrestoGateway};
use presto_common::{Block, DataType, Field, Page, Schema, SimClock, Value};
use presto_connectors::memory::MemoryConnector;
use presto_connectors::mysql::MySqlConnector;
use presto_core::{PrestoEngine, Session};

fn cluster_with_data(name: &str, marker: i64) -> Arc<PrestoCluster> {
    let engine = PrestoEngine::new();
    let memory = MemoryConnector::new();
    let schema = Schema::new(vec![Field::new("marker", DataType::Bigint)]).unwrap();
    memory
        .create_table(
            "default",
            "whoami",
            schema,
            vec![Page::new(vec![Block::bigint(vec![marker])]).unwrap()],
        )
        .unwrap();
    engine.register_catalog("memory", Arc::new(memory));
    PrestoCluster::new(
        name,
        engine,
        ClusterConfig {
            initial_workers: 2,
            grace_period: Duration::from_secs(5),
            ..ClusterConfig::default()
        },
        SimClock::new(),
    )
}

fn setup() -> (PrestoGateway, Vec<Arc<PrestoCluster>>) {
    let gateway = PrestoGateway::new(MySqlConnector::new()).unwrap();
    let clusters = vec![
        cluster_with_data("dedicated-ads", 1),
        cluster_with_data("dedicated-eats", 2),
        cluster_with_data("shared", 3),
    ];
    for c in &clusters {
        gateway.add_cluster(c.clone());
    }
    gateway.set_route("*", "shared").unwrap();
    gateway.set_route("ads", "dedicated-ads").unwrap();
    gateway.set_route("eats", "dedicated-eats").unwrap();
    (gateway, clusters)
}

fn marker(gateway: &PrestoGateway, group: &str) -> i64 {
    gateway.submit(group, "SELECT marker FROM whoami", &Session::default()).unwrap().rows()[0][0]
        .as_i64()
        .unwrap()
}

#[test]
fn groups_land_on_their_clusters() {
    let (gateway, _clusters) = setup();
    assert_eq!(marker(&gateway, "ads"), 1);
    assert_eq!(marker(&gateway, "eats"), 2);
    assert_eq!(marker(&gateway, "some-new-team"), 3); // default route
}

#[test]
fn admin_rerouting_via_mysql_is_immediate() {
    let (gateway, _clusters) = setup();
    assert_eq!(marker(&gateway, "ads"), 1);
    // "Presto administrators could play with MySQL to dynamically redirect
    // any traffic to any cluster" (§VIII)
    gateway.set_route("ads", "dedicated-eats").unwrap();
    assert_eq!(marker(&gateway, "ads"), 2);
    gateway.set_route("ads", "dedicated-ads").unwrap();
    assert_eq!(marker(&gateway, "ads"), 1);
}

#[test]
fn maintenance_has_zero_downtime() {
    let (gateway, clusters) = setup();
    // upgrade the ads cluster: drain + redirect
    clusters[0].set_maintenance(true);
    for _ in 0..10 {
        // traffic keeps flowing, served by the shared cluster
        assert_eq!(marker(&gateway, "ads"), 3);
    }
    clusters[0].set_maintenance(false);
    assert_eq!(marker(&gateway, "ads"), 1);
    let total_failed: u64 =
        clusters.iter().map(|c| c.metrics().get("cluster.queries_failed")).sum();
    assert_eq!(total_failed, 0, "no downtime means no failed queries");
}

#[test]
fn routing_table_is_real_mysql_state() {
    let mysql = MySqlConnector::new();
    let gateway = PrestoGateway::new(mysql.clone()).unwrap();
    gateway.add_cluster(cluster_with_data("shared", 3));
    gateway.set_route("*", "shared").unwrap();
    // the mapping is queryable like any MySQL table
    let row = mysql
        .lookup("presto", "routing", "user_group", &Value::Varchar("*".into()))
        .unwrap()
        .unwrap();
    assert_eq!(row[1], Value::Varchar("shared".into()));
}
