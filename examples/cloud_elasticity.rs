//! Presto on cloud (§IX): S3-backed storage through `PrestoS3FileSystem`
//! (lazy seek, exponential backoff, multipart upload) and graceful cluster
//! expansion/shrink.
//!
//! Run with: `cargo run --release --example cloud_elasticity`

use std::sync::Arc;
use std::time::Duration;

use presto_cluster::{ClusterConfig, PrestoCluster};
use presto_common::metrics::CounterSet;
use presto_common::{Block, DataType, Field, Page, Schema, SimClock};
use presto_connectors::hive::HiveConnector;
use presto_core::{PrestoEngine, Session};
use presto_parquet::{WriterMode, WriterProperties};
use presto_storage::s3::{S3Config, S3FsConfig};
use presto_storage::{PrestoS3FileSystem, S3ObjectStore};

fn main() -> presto_common::Result<()> {
    println!("== Presto on cloud: S3 + elasticity (§IX) ==\n");

    // ---- S3-backed warehouse (the Pinterest deployment shape, §II.D)
    let clock = SimClock::new();
    let store = S3ObjectStore::new(
        S3Config { fail_every: 97, ..S3Config::default() }, // occasional 503s
        clock.clone(),
        CounterSet::new(),
    );
    let s3fs = PrestoS3FileSystem::new(store.clone(), S3FsConfig::default());

    let engine = PrestoEngine::new();
    let hive = HiveConnector::new(Arc::new(s3fs), CounterSet::new());
    let schema = Schema::new(vec![
        Field::new("id", DataType::Bigint),
        Field::new("city", DataType::Varchar),
    ])
    .unwrap();
    hive.register_table("web", "pins", schema, "/bucket/warehouse/pins", Some("ds"));
    for day in ["d1", "d2"] {
        hive.add_partition("web", "pins", day, true)?;
        for file in 0..4 {
            let page = Page::new(vec![
                Block::bigint((0..5000).collect()),
                Block::varchar(&(0..5000).map(|i| format!("c{}", i % 20)).collect::<Vec<_>>()),
            ])?;
            hive.write_data_file(
                "web",
                "pins",
                Some(day),
                &format!("part-{file}.upq"),
                &[page],
                WriterMode::Native,
                WriterProperties::default(),
            )?;
        }
    }
    engine.register_catalog("hive", Arc::new(hive));
    println!(
        "wrote warehouse to S3: {} PUT, {} multipart parts, {} retries after 503s",
        store.metrics().get("s3.put"),
        store.metrics().get("s3.upload_part"),
        store.metrics().get("s3fs.retries"),
    );

    // ---- a cluster over it, expanding and shrinking with load
    let cluster = PrestoCluster::new(
        "cloud",
        engine,
        ClusterConfig {
            initial_workers: 2,
            grace_period: Duration::from_secs(120),
            ..ClusterConfig::default()
        },
        clock.clone(),
    );
    let session = Session::new("hive", "web");
    let sql = "SELECT city, count(*) AS pins FROM pins GROUP BY city ORDER BY 2 DESC LIMIT 5";

    println!("\nbusy hours: expanding 2 → 6 workers");
    cluster.expand(4);
    let result = cluster.execute(sql, &session)?;
    println!("{}", result.to_table());
    println!(
        "active workers: {}, tasks executed: {}",
        cluster.active_workers().len(),
        cluster.metrics().get("cluster.tasks"),
    );

    println!("\nnon-busy hours: gracefully shrinking 4 workers");
    for id in 2..6 {
        cluster.request_worker_shutdown(id)?;
    }
    // queries keep succeeding while workers drain (the §IX guarantee)
    for i in 0..4 {
        cluster.execute(sql, &session)?;
        clock.advance(Duration::from_secs(60));
        let live = cluster.tick();
        println!("  t+{}m: live workers = {live}", (i + 1));
    }
    clock.advance(Duration::from_secs(240));
    let live = cluster.tick();
    println!("after both grace periods: live workers = {live}");
    assert_eq!(live, 2);
    assert_eq!(cluster.metrics().get("cluster.queries_failed"), 0);
    println!(
        "\n{} queries ran during shrink, 0 failed — graceful shutdown preserved them all.",
        cluster.queries_started()
    );
    Ok(())
}
